//! Stride Prefetching by Dynamically Inspecting Objects — full reproduction.
//!
//! This crate re-exports the workspace's public API in one place:
//!
//! * [`ir`] — the typed register IR, builder, and compiler analyses.
//! * [`analysis`] — static analyses over the IR: definite initialization,
//!   speculation-safety linting, and SCEV-lite affine stride analysis.
//! * [`heap`] — object model, simulated heap, and compacting GC.
//! * [`memsim`] — L1/L2/DTLB simulator with the Pentium 4 and Athlon MP
//!   configurations of the paper's Table 2.
//! * [`vm`] — the mixed-mode execution engine ("the JVM").
//! * [`prefetch`] — the paper's contribution: object inspection, the load
//!   dependence graph, stride detection, and prefetch code generation.
//! * [`adapt`] — adaptive reprofiling policy: GC-staleness guards, deopt
//!   decisions, and recompile backoff.
//! * [`trace`] — structured event tracing and per-site attribution.
//! * [`lang`] — a miniature Java-like frontend that lowers to the IR.
//! * [`workloads`] — the twelve miniature benchmarks of Table 3.
//! * [`serve`] — multi-tenant serving simulation: a fleet of tenant VMs,
//!   a background compilation queue, and a bounded shared code cache.
//! * [`mod@bench`] — the experiment harness regenerating every table and figure.
//!
//! See the repository `README.md` for a tour and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use spf_adapt as adapt;
pub use spf_analysis as analysis;
pub use spf_bench as bench;
pub use spf_core as prefetch;
pub use spf_heap as heap;
pub use spf_ir as ir;
pub use spf_lang as lang;
pub use spf_memsim as memsim;
pub use spf_serve as serve;
pub use spf_trace as trace;
pub use spf_vm as vm;
pub use spf_workloads as workloads;
