#!/usr/bin/env bash
# Compare two BENCH_matrix.json sweeps (wall-clock speedup + simulated-drift
# check). Usage: scripts/bench_diff.sh OLD.json NEW.json
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --release -p spf-bench --bin bench_diff -- "$@"
