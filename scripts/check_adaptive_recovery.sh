#!/usr/bin/env bash
# Gate on adaptive recovery: the ADAPTIVE cell's simulated best_cycles
# must stay within MAX_RATIO x the BASELINE cell on every processor.
# Under whole-method deopt a single GC-epoch staleness verdict stranded
# db's hot walk in the interpreter (~7x BASELINE cycles); per-loop
# invalidation keeps the body compiled, so a blow-up past the ratio
# means the recovery path regressed.
#
# Usage: scripts/check_adaptive_recovery.sh BENCH_matrix.json [workload] [max_ratio]
set -euo pipefail

usage() {
  echo "usage: scripts/check_adaptive_recovery.sh BENCH_matrix.json [workload] [max_ratio]" >&2
  exit 2
}

matrix=${1-}
[[ -n "$matrix" ]] || usage
[[ -r "$matrix" ]] || { echo "check_adaptive_recovery: cannot read $matrix" >&2; exit 2; }
workload=${2-db}
ratio=${3-2}

# Extracts best_cycles for one (mode, processor) cell. The matrix file
# writes one cell object per line, so line-wise grep is a safe parse.
cycles() {
  grep "\"name\": \"$workload\"" "$matrix" \
    | grep "\"mode\": \"$1\"" \
    | grep "\"processor\": \"$2\"" \
    | sed -E 's/.*"best_cycles": ([0-9]+).*/\1/'
}

status=0
for proc in "Pentium 4" "Athlon MP"; do
  base=$(cycles BASELINE "$proc")
  adapt=$(cycles ADAPTIVE "$proc")
  if [[ -z "$base" || -z "$adapt" ]]; then
    echo "check_adaptive_recovery: $workload/$proc: missing BASELINE or ADAPTIVE cell in $matrix" >&2
    exit 2
  fi
  limit=$((base * ratio))
  if (( adapt > limit )); then
    echo "FAIL $workload/$proc: ADAPTIVE $adapt > ${ratio}x BASELINE $base"
    status=1
  else
    echo "ok   $workload/$proc: ADAPTIVE $adapt <= ${ratio}x BASELINE $base"
  fi
done
exit "$status"
