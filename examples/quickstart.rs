//! Quickstart: build a small pointer-chasing program, run it on the VM with
//! stride prefetching on and off, and compare the simulated memory
//! behaviour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stride_prefetch::ir::{CmpOp, ElemTy, ProgramBuilder, Ty};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};

fn build() -> (stride_prefetch::ir::Program, stride_prefetch::ir::MethodId) {
    let mut pb = ProgramBuilder::new();
    // class Particle { double x; ... } — 88 bytes, above half a cache line.
    let (particle, pf) = pb.add_class(
        "Particle",
        &[
            ("x", ElemTy::F64),
            ("y", ElemTy::F64),
            ("z", ElemTy::F64),
            ("m", ElemTy::F64),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
        ],
    );

    // setup(n): allocate particles back to back (the co-allocation stride
    // prefetching exploits) and store them in an array.
    let setup = {
        let mut b = pb.function("setup", &[Ty::I32], Some(Ty::Ref));
        let n = b.param(0);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let p = b.new_object(particle);
                let x = b.convert(stride_prefetch::ir::Conv::I32ToF64, i);
                b.putfield(p, pf[0], x);
                b.astore(arr, i, p, ElemTy::Ref);
            },
        );
        b.ret(Some(arr));
        b.finish()
    };

    // sum(arr): the hot loop — loads every particle's x field.
    let sum = {
        let mut b = pb.function("sum", &[Ty::Ref], Some(Ty::I32));
        let arr = b.param(0);
        let acc = b.new_reg(Ty::F64);
        let z = b.const_f64(0.0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let p = b.aload(arr, i, ElemTy::Ref);
                let x = b.getfield(p, pf[0]);
                let s = b.add(acc, x);
                b.move_(acc, s);
            },
        );
        let out = b.convert(stride_prefetch::ir::Conv::F64ToI32, acc);
        b.ret(Some(out));
        b.finish()
    };

    // main(): setup once, sum it a few times.
    let main = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(40_000);
        let arr = b.call(setup, &[n]);
        let total = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(total, z);
        let reps = b.const_i32(3);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let s = b.call(sum, &[arr]);
                let t = b.add(total, s);
                b.move_(total, t);
            },
        );
        b.ret(Some(total));
        b.finish()
    };
    (pb.finish(), main)
}

fn main() {
    println!("quickstart: 40k particles, sequential field loads (88-byte stride)\n");
    for options in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
        let (program, main) = build();
        let mut vm = Vm::new(
            program,
            VmConfig {
                heap_bytes: 16 << 20,
                prefetch: options.clone(),
                ..VmConfig::default()
            },
            ProcessorConfig::athlon_mp(),
        );
        // First call interprets and JIT-compiles; second call is steady
        // state — measure that one, like the paper's best-run protocol.
        let out = vm.call(main, &[]).expect("runs");
        vm.reset_measurement();
        let out2 = vm.call(main, &[]).expect("runs");
        assert_eq!(out, out2, "prefetching must not change results");
        let stats = vm.stats();
        let mem = vm.mem_stats();
        println!("mode {:<12}", options.mode.to_string());
        println!("  cycles            {:>12}", stats.cycles);
        println!("  retired instrs    {:>12}", stats.retired_instructions);
        println!("  L1 load misses    {:>12}", mem.l1_load_misses);
        println!("  prefetches issued {:>12}", mem.swpf_issued);
        for report in vm.reports() {
            if report.total_prefetches > 0 {
                println!("  JIT report:\n{}", report.render());
            }
        }
        println!();
    }
    println!("expected: INTER+INTRA cuts L1 misses and cycles on the Athlon MP,");
    println!("whose prefetch instruction fills the L1 (see DESIGN.md).");
    println!("result: Some(I32(..)) checksum identical in both configurations.");
}
