//! The paper's headline result: `_209_db` on both processors (§4.1).
//!
//! db sorts large records through a reference array; only *intra-iteration*
//! strides survive the shuffling, so INTER is ineffective while INTER+INTRA
//! wins big — and on the Pentium 4 the guarded-load mapping additionally
//! primes the DTLB (Figure 10).
//!
//! ```text
//! cargo run --release --example db_headline        # Size::Small
//! cargo run --release --example db_headline full   # paper-scale
//! ```

use stride_prefetch::bench::{run_workload, RunPlan};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::workloads::{self, Size};

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("full") => Size::Full,
        Some("tiny") => Size::Tiny,
        _ => Size::Small,
    };
    let plan = RunPlan {
        size,
        ..RunPlan::default()
    };
    let spec = workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .expect("db workload");

    for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        println!("== {} ==", proc.name);
        let base = run_workload(&spec, &PrefetchOptions::off(), &proc, &plan);
        for options in [PrefetchOptions::inter(), PrefetchOptions::inter_intra()] {
            let m = run_workload(&spec, &options, &proc, &plan);
            assert_eq!(m.checksum, base.checksum, "same sort result");
            println!(
                "{:<12} speedup {:>+7.2}%  | L1 MPI {:.4} -> {:.4} | DTLB MPI {:.5} -> {:.5} | {} prefetches",
                m.mode.to_string(),
                (m.speedup_vs(&base) - 1.0) * 100.0,
                base.mem.l1_load_mpi(base.retired),
                m.mem.l1_load_mpi(m.retired),
                base.mem.dtlb_load_mpi(base.retired),
                m.mem.dtlb_load_mpi(m.retired),
                m.prefetches_inserted,
            );
        }
        println!();
    }
    println!("paper shape: INTER ~0%, INTER+INTRA the largest win in the suite,");
    println!("with large L1 and DTLB miss-event reductions on the Pentium 4.");
}
