//! The paper's motivating example, end to end (paper §2, Figures 1–5).
//!
//! Runs the jess miniature, JIT-compiles `findInMemory` with live heap
//! data, and prints:
//!
//! * the load dependence graph (Table 1 / Figure 5);
//! * the generated prefetching code — the speculative load of
//!   `&tv.v[i] + c*d`, the dereference-based prefetch of the future token,
//!   and (on the Athlon, whose lines are smaller than a Token) the
//!   intra-iteration stride prefetch of its facts array (Figure 4);
//! * the measured effect of each configuration.
//!
//! ```text
//! cargo run --release --example jess_tokens
//! ```

use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};
use stride_prefetch::workloads::{self, Size};

fn main() {
    let spec = workloads::all()
        .into_iter()
        .find(|s| s.name == "jess")
        .expect("jess workload");

    println!("== Figure 4/5: what the JIT generates for findInMemory ==\n");
    let built = (spec.build)(Size::Tiny);
    let mut vm = Vm::new(
        built.program,
        VmConfig {
            heap_bytes: built.heap_bytes,
            ..VmConfig::default()
        },
        ProcessorConfig::athlon_mp(),
    );
    vm.call(built.entry, &[]).expect("warm-up");
    vm.call(built.entry, &[]).expect("compile with live data");
    let report = vm
        .reports()
        .iter()
        .find(|r| r.method == "findInMemory")
        .expect("findInMemory compiled");
    println!("{}", report.render());
    for lr in &report.loops {
        if lr.ldg_nodes > 0 {
            println!("load dependence graph of loop at {}:", lr.header);
            println!("{}", lr.ldg_text);
        }
    }

    println!("== speedups (Size::Small, steady state) ==\n");
    for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        let mut cycles = Vec::new();
        for options in [
            PrefetchOptions::off(),
            PrefetchOptions::inter(),
            PrefetchOptions::inter_intra(),
        ] {
            let built = (spec.build)(Size::Small);
            let mut vm = Vm::new(
                built.program,
                VmConfig {
                    heap_bytes: built.heap_bytes,
                    prefetch: options,
                    ..VmConfig::default()
                },
                proc.clone(),
            );
            vm.call(built.entry, &[]).expect("runs");
            vm.call(built.entry, &[]).expect("runs");
            vm.reset_measurement();
            vm.call(built.entry, &[]).expect("runs");
            cycles.push(vm.stats().cycles);
        }
        println!(
            "{:<10} BASELINE {:>12} | INTER {:>+6.2}% | INTER+INTRA {:>+6.2}%",
            proc.name,
            cycles[0],
            (cycles[0] as f64 / cycles[1] as f64 - 1.0) * 100.0,
            (cycles[0] as f64 / cycles[2] as f64 - 1.0) * 100.0,
        );
    }
    println!(
        "\nAs in the paper, INTER finds nothing to exploit (the token array is\n\
         churned), while INTER+INTRA prefetches through the speculative load."
    );
}
