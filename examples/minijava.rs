//! Compile a mini-Java source program with the `spf-lang` front end and
//! watch the JIT insert prefetches into it.
//!
//! ```text
//! cargo run --release --example minijava
//! ```

use stride_prefetch::lang;
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};

const SOURCE: &str = r#"
// A linked structure traversed through an index array, like the paper's
// motivating data layout: each Cell is co-allocated with its values array.
class Cell {
    int tag;
    int[] values;
    long pad0; long pad1; long pad2; long pad3;
    long pad4; long pad5; long pad6; long pad7;
}

Cell makeCell(int tag) {
    Cell c = new Cell();
    c.tag = tag;
    c.values = new int[12];
    for (int j = 0; j < 12; j = j + 1) {
        c.values[j] = tag * j;
    }
    return c;
}

int scan(Cell[] cells, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        Cell c = cells[i];
        acc = acc + c.tag + c.values[3];
    }
    return acc;
}

int run(int n, int reps) {
    Cell[] cells = new Cell[n];
    for (int i = 0; i < n; i = i + 1) {
        cells[i] = makeCell(i);
    }
    int acc = 0;
    for (int r = 0; r < reps; r = r + 1) {
        acc = acc + scan(cells, n);
    }
    return acc;
}

int main() {
    return run(30000, 3);
}
"#;

fn main() {
    let program = lang::compile(SOURCE).expect("source compiles");
    println!(
        "compiled {} functions, {} classes from mini-Java source\n",
        program.method_count(),
        program.class_count()
    );
    for options in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
        let main = program.method_by_name("main").expect("main");
        let mut vm = Vm::new(
            program.clone(),
            VmConfig {
                heap_bytes: 64 << 20,
                prefetch: options.clone(),
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let out = vm.call(main, &[]).expect("runs");
        vm.reset_measurement();
        let out2 = vm.call(main, &[]).expect("runs");
        assert_eq!(out, out2);
        println!(
            "mode {:<12} cycles {:>12}  L1 misses {:>9}  checksum {:?}",
            options.mode.to_string(),
            vm.stats().cycles,
            vm.mem_stats().l1_load_misses,
            out
        );
        for report in vm.reports() {
            if report.total_prefetches > 0 {
                println!("  prefetches in `{}`:", report.method);
                for lr in &report.loops {
                    for p in &lr.prefetches {
                        println!("    {} [{}]", p.kind, p.mapped);
                    }
                }
            }
        }
    }
}
