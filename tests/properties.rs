//! Property-based tests spanning crates.

use proptest::prelude::*;
use stride_prefetch::heap::Value;
use stride_prefetch::memsim::{MemorySystem, ProcessorConfig};
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};
use stride_prefetch::workloads::{self, Size};

// ---------------------------------------------------------------------
// Language/VM semantics: random integer expression trees evaluated by the
// whole stack (lexer -> parser -> lowering -> passes -> interpreter) must
// match a reference evaluation in Rust.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum E {
    Lit(i32),
    Var, // the single parameter x
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
}

impl E {
    fn to_src(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", v.unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            E::Var => "x".to_string(),
            E::Add(a, b) => format!("({} + {})", a.to_src(), b.to_src()),
            E::Sub(a, b) => format!("({} - {})", a.to_src(), b.to_src()),
            E::Mul(a, b) => format!("({} * {})", a.to_src(), b.to_src()),
            E::Lt(a, b) => format!("({} < {})", a.to_src(), b.to_src()),
        }
    }

    fn eval(&self, x: i32) -> i32 {
        match self {
            E::Lit(v) => *v,
            E::Var => x,
            E::Add(a, b) => a.eval(x).wrapping_add(b.eval(x)),
            E::Sub(a, b) => a.eval(x).wrapping_sub(b.eval(x)),
            E::Mul(a, b) => a.eval(x).wrapping_mul(b.eval(x)),
            E::Lt(a, b) => (a.eval(x) < b.eval(x)) as i32,
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(E::Lit),
        Just(E::Var),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lang_expressions_match_reference(e in arb_expr(), x in -1000i32..1000) {
        let src = format!("int f(int x) {{ return {}; }}", e.to_src());
        let program = stride_prefetch::lang::compile(&src)
            .unwrap_or_else(|err| panic!("compile error {err} in {src}"));
        let mid = program.method_by_name("f").unwrap();
        let mut vm = Vm::new(program, VmConfig::default(), ProcessorConfig::pentium4());
        // Run twice: once interpreted, once JIT-compiled (constant folding,
        // copy propagation, DCE all run) — both must match the reference.
        let a = vm.call(mid, &[Value::I32(x)]).unwrap();
        let b = vm.call(mid, &[Value::I32(x)]).unwrap();
        prop_assert_eq!(a, Some(Value::I32(e.eval(x))), "interpreted, src={}", src);
        prop_assert_eq!(b, Some(Value::I32(e.eval(x))), "compiled, src={}", src);
    }

    // -------------------------------------------------------------------
    // Memory-system invariants over random access streams.
    // -------------------------------------------------------------------

    #[test]
    fn memsim_counters_are_consistent(
        addrs in prop::collection::vec(0x10_0000u64..0x50_0000, 1..300),
        prefetch_every in 1usize..8,
    ) {
        let mut m = MemorySystem::new(ProcessorConfig::pentium4());
        let mut now = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            if i % prefetch_every == 0 {
                now += m.software_prefetch(a ^ 0x40, now);
            }
            now += m.load(a, now);
        }
        let s = m.stats();
        prop_assert_eq!(s.loads, addrs.len() as u64);
        prop_assert!(s.l1_load_misses <= s.loads);
        prop_assert!(s.l2_load_misses <= s.l1_load_misses,
            "an L2 miss event implies an L1 miss event");
        prop_assert!(s.dtlb_load_misses <= s.loads);
        prop_assert!(s.swpf_dropped_tlb <= s.swpf_issued);
        prop_assert!(s.swpf_fills <= s.swpf_issued);
    }

    #[test]
    fn memsim_second_access_hits(
        addr in 0x10_0000u64..0x40_0000,
        gap in 0u64..64,
    ) {
        let mut m = MemorySystem::new(ProcessorConfig::athlon_mp());
        let aligned = addr & !63;
        let lat1 = m.load(aligned, 0);
        let lat2 = m.load(aligned + gap, lat1);
        // Second access to the same line is an L1 hit.
        prop_assert_eq!(lat2, m.config().l1.hit_latency);
        prop_assert_eq!(m.stats().l1_load_misses, 1);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // -------------------------------------------------------------------
    // Optimizer fuzz: random configurations never change db's checksum.
    // -------------------------------------------------------------------

    #[test]
    fn random_options_preserve_semantics(
        iterations in 2u32..40,
        majority in 0.3f64..1.0,
        distance in 1u32..5,
        min_samples in 2usize..8,
        profitability in prop::bool::ANY,
    ) {
        let spec = workloads::all().into_iter().find(|s| s.name == "db").unwrap();
        let reference = {
            let built = (spec.build)(Size::Tiny);
            let mut vm = Vm::new(
                built.program,
                VmConfig {
                    heap_bytes: built.heap_bytes,
                    prefetch: PrefetchOptions::off(),
                    ..VmConfig::default()
                },
                ProcessorConfig::pentium4(),
            );
            vm.call(built.entry, &[]).unwrap()
        };
        let options = PrefetchOptions {
            inspect_iterations: iterations,
            majority,
            distance,
            min_samples,
            profitability,
            ..PrefetchOptions::inter_intra()
        };
        let built = (spec.build)(Size::Tiny);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                prefetch: options,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let out1 = vm.call(built.entry, &[]).unwrap();
        let out2 = vm.call(built.entry, &[]).unwrap();
        prop_assert_eq!(out1, reference.clone());
        prop_assert_eq!(out2, reference);
    }
}
