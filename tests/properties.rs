//! Property-based tests spanning crates (self-contained harness: the
//! build environment has no crates.io access, so `spf-testkit` replaces
//! proptest).

use spf_testkit::{cases, Rng};
use stride_prefetch::heap::Value;
use stride_prefetch::memsim::{MemorySystem, ProcessorConfig};
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};
use stride_prefetch::workloads::{self, Size};

// ---------------------------------------------------------------------
// Language/VM semantics: random integer expression trees evaluated by the
// whole stack (lexer -> parser -> lowering -> passes -> interpreter) must
// match a reference evaluation in Rust.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum E {
    Lit(i32),
    Var, // the single parameter x
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
}

impl E {
    fn to_src(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", v.unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            E::Var => "x".to_string(),
            E::Add(a, b) => format!("({} + {})", a.to_src(), b.to_src()),
            E::Sub(a, b) => format!("({} - {})", a.to_src(), b.to_src()),
            E::Mul(a, b) => format!("({} * {})", a.to_src(), b.to_src()),
            E::Lt(a, b) => format!("({} < {})", a.to_src(), b.to_src()),
        }
    }

    fn eval(&self, x: i32) -> i32 {
        match self {
            E::Lit(v) => *v,
            E::Var => x,
            E::Add(a, b) => a.eval(x).wrapping_add(b.eval(x)),
            E::Sub(a, b) => a.eval(x).wrapping_sub(b.eval(x)),
            E::Mul(a, b) => a.eval(x).wrapping_mul(b.eval(x)),
            E::Lt(a, b) => (a.eval(x) < b.eval(x)) as i32,
        }
    }
}

fn arb_expr(rng: &mut Rng, fuel: u32) -> E {
    if fuel == 0 || rng.chance(1, 3) {
        return if rng.bool() {
            E::Lit(rng.i32_in(-1000, 999))
        } else {
            E::Var
        };
    }
    let a = Box::new(arb_expr(rng, fuel - 1));
    let b = Box::new(arb_expr(rng, fuel - 1));
    match rng.index(4) {
        0 => E::Add(a, b),
        1 => E::Sub(a, b),
        2 => E::Mul(a, b),
        _ => E::Lt(a, b),
    }
}

#[test]
fn lang_expressions_match_reference() {
    cases(64, "lang expressions match reference", |rng| {
        let e = arb_expr(rng, 4);
        let x = rng.i32_in(-1000, 999);
        let src = format!("int f(int x) {{ return {}; }}", e.to_src());
        let program = stride_prefetch::lang::compile(&src)
            .unwrap_or_else(|err| panic!("compile error {err} in {src}"));
        let mid = program.method_by_name("f").unwrap();
        let mut vm = Vm::new(program, VmConfig::default(), ProcessorConfig::pentium4());
        // Run twice: once interpreted, once JIT-compiled (constant folding,
        // copy propagation, DCE all run) — both must match the reference.
        let a = vm.call(mid, &[Value::I32(x)]).unwrap();
        let b = vm.call(mid, &[Value::I32(x)]).unwrap();
        assert_eq!(a, Some(Value::I32(e.eval(x))), "interpreted, src={src}");
        assert_eq!(b, Some(Value::I32(e.eval(x))), "compiled, src={src}");
    });
}

// -------------------------------------------------------------------
// Memory-system invariants over random access streams.
// -------------------------------------------------------------------

#[test]
fn memsim_counters_are_consistent() {
    cases(64, "memsim counters are consistent", |rng| {
        let addrs = rng.vec(1, 299, |r| r.u64_in(0x10_0000, 0x50_0000 - 1));
        let prefetch_every = rng.usize_in(1, 7);
        let mut m = MemorySystem::new(ProcessorConfig::pentium4());
        let mut now = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            if i % prefetch_every == 0 {
                now += m.software_prefetch(a ^ 0x40, now);
            }
            now += m.load(a, now);
        }
        let s = m.stats();
        assert_eq!(s.loads, addrs.len() as u64);
        assert!(s.l1_load_misses <= s.loads);
        assert!(
            s.l2_load_misses <= s.l1_load_misses,
            "an L2 miss event implies an L1 miss event"
        );
        assert!(s.dtlb_load_misses <= s.loads);
        assert!(s.swpf_dropped_tlb <= s.swpf_issued);
        assert!(s.swpf_fills <= s.swpf_issued);
    });
}

#[test]
fn memsim_second_access_hits() {
    cases(64, "memsim second access hits", |rng| {
        let addr = rng.u64_in(0x10_0000, 0x40_0000 - 1);
        let gap = rng.u64_in(0, 63);
        let mut m = MemorySystem::new(ProcessorConfig::athlon_mp());
        let aligned = addr & !63;
        let lat1 = m.load(aligned, 0);
        let lat2 = m.load(aligned + gap, lat1);
        // Second access to the same line is an L1 hit.
        assert_eq!(lat2, m.config().l1.hit_latency);
        assert_eq!(m.stats().l1_load_misses, 1);
    });
}

// -------------------------------------------------------------------
// Optimizer fuzz: random configurations never change db's checksum.
// -------------------------------------------------------------------

#[test]
fn random_options_preserve_semantics() {
    let spec = workloads::all()
        .into_iter()
        .find(|s| s.name == "db")
        .unwrap();
    let reference = {
        let built = (spec.build)(Size::Tiny);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                prefetch: PrefetchOptions::off(),
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(built.entry, &[]).unwrap()
    };
    cases(8, "random options preserve semantics", |rng| {
        let options = PrefetchOptions {
            inspect_iterations: rng.u64_in(2, 39) as u32,
            majority: rng.f64_in(0.3, 1.0),
            distance: rng.u64_in(1, 4) as u32,
            min_samples: rng.usize_in(2, 7),
            profitability: rng.bool(),
            ..PrefetchOptions::inter_intra()
        };
        let built = (spec.build)(Size::Tiny);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                prefetch: options,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let out1 = vm.call(built.entry, &[]).unwrap();
        let out2 = vm.call(built.entry, &[]).unwrap();
        assert_eq!(out1, reference);
        assert_eq!(out2, reference);
    });
}
