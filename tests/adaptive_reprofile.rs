//! Adaptive reprofiling end to end: a workload whose strides change when
//! a GC slide compacts the heap must trigger guard-detected staleness
//! *per loop* — the stale loops' prefetch sites are patched to no-ops
//! while the rest of the compiled body keeps executing, and the stale
//! loops alone are re-inspected and repatched through the normal
//! pipeline — with every compilation generation passing the static lint
//! and the trace events reconciling exactly with the VM's counters.
//! Whole-method deopts never happen anymore: `stats.deopts` stays 0.

use stride_prefetch::analysis::{lint, LintConfig};
use stride_prefetch::heap::Value;
use stride_prefetch::ir::{CmpOp, ElemTy, FieldId, MethodId, Program, ProgramBuilder, Ty};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::trace::{RingSink, TraceEvent, TraceSink};
use stride_prefetch::vm::{Vm, VmConfig};

const ELEMS: i32 = 1500;
const WALKS_BEFORE_GC: i32 = 3;
const WALKS_AFTER_GC: i32 = 5;
const CHURN: i32 = 40_000;

/// Adds the `Node` class: a small payload plus padding so the GC slide
/// changes the inter-object stride by a full object size.
fn add_node_class(pb: &mut ProgramBuilder) -> (stride_prefetch::ir::ClassId, Vec<FieldId>) {
    let (node, nf) = pb.add_class(
        "Node",
        &[
            ("v", ElemTy::I32),
            ("data", ElemTy::Ref),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
            ("pad5", ElemTy::I64),
            ("pad6", ElemTy::I64),
        ],
    );
    (node, nf.to_vec())
}

/// The array walk whose compiled strides go stale when the heap slides:
/// an inter-object access (`n.v`), an indirection (`n.data[0]`), and the
/// loop the prefetch guards attach to.
fn add_walk(pb: &mut ProgramBuilder, nf: &[FieldId]) -> MethodId {
    let mut b = pb.function("walk", &[Ty::Ref], Some(Ty::I32));
    let arr = b.param(0);
    let acc = b.new_reg(Ty::I32);
    let z = b.const_i32(0);
    b.move_(acc, z);
    b.for_i32(
        0,
        1,
        CmpOp::Lt,
        |b| b.arraylen(arr),
        |b, i| {
            let n = b.aload(arr, i, ElemTy::Ref);
            let v = b.getfield(n, nf[0]);
            let d = b.getfield(n, nf[1]);
            let zero = b.const_i32(0);
            let d0 = b.aload(d, zero, ElemTy::I32);
            let s1 = b.add(acc, v);
            let s2 = b.add(s1, d0);
            b.move_(acc, s2);
        },
    );
    b.ret(Some(acc));
    b.finish()
}

/// Builds a program in three phases: construct an array of nodes with a
/// dead "garbage twin" allocated before each live node (so live nodes sit
/// two allocations apart), walk it enough times for the JIT to compile
/// `walk` against that gapped layout, churn allocations until GC slides
/// the survivors together (halving the stride), then walk again so the
/// stale loops are invalidated, patched to no-ops, and repatched.
fn build() -> (Program, MethodId, MethodId) {
    let mut pb = ProgramBuilder::new();
    let (node, nf) = add_node_class(&mut pb);
    let walk = add_walk(&mut pb, &nf);
    let main = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(ELEMS);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let _garbage = b.new_object(node);
                let keep = b.new_object(node);
                let four = b.const_i32(4);
                let data = b.new_array(ElemTy::I32, four);
                b.putfield(keep, nf[0], i);
                b.putfield(keep, nf[1], data);
                let zero = b.const_i32(0);
                b.astore(data, zero, i, ElemTy::I32);
                b.astore(arr, i, keep, ElemTy::Ref);
            },
        );
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        // Phase A: the JIT compiles `walk` against the gapped layout.
        let pre = b.const_i32(WALKS_BEFORE_GC);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| pre,
            |b, _| {
                let s = b.call(walk, &[arr]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        // Phase B: allocation churn forces collections; the first one
        // frees the garbage twins and slides the survivors together.
        let churn = b.const_i32(CHURN);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| churn,
            |b, _| {
                let _tmp = b.new_object(node);
            },
        );
        // Phase C: the compiled strides are stale; guards must notice.
        let post = b.const_i32(WALKS_AFTER_GC);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| post,
            |b, _| {
                let s = b.call(walk, &[arr]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };
    (pb.finish(), main, walk)
}

fn config() -> VmConfig {
    VmConfig {
        // Large enough that phase A runs without GC (the compiled strides
        // reflect the gapped layout), small enough that phase B collects.
        heap_bytes: 1200 << 10,
        prefetch: PrefetchOptions::adaptive(),
        ..VmConfig::default()
    }
}

fn expected_checksum() -> i32 {
    (WALKS_BEFORE_GC + WALKS_AFTER_GC) * 2 * (0..ELEMS).sum::<i32>()
}

#[test]
fn gc_slide_invalidates_loops_and_repatches_without_deopt() {
    let (program, main, walk) = build();
    let mut vm = Vm::new(program, config(), ProcessorConfig::athlon_mp());
    let out = vm.call(main, &[]).expect("adaptive run");
    assert_eq!(out, Some(Value::I32(expected_checksum())));

    assert!(vm.stats().gc_count > 0, "churn must force collections");
    assert!(vm.heap().gc_epoch() >= 1, "a collection must move objects");
    assert!(
        vm.stats().loop_deopts >= 1,
        "the GC slide must invalidate the stale walk loop"
    );
    assert!(
        vm.stats().loop_repatches >= 1,
        "the invalidated loop must re-enter through a repatch"
    );
    assert_eq!(
        vm.stats().deopts,
        0,
        "invalidation is per-loop; the method must never deopt whole"
    );
    assert_eq!(
        vm.stats().recompiles,
        0,
        "per-loop repatching must not force a full recompilation"
    );
    assert!(
        vm.stats().reagreed >= 1,
        "re-inspection must re-agree on the compacted strides"
    );
    assert!(
        vm.is_compiled(walk),
        "walk must still be compiled after invalidation and repatch"
    );

    // The repatched generation re-derived prefetchable strides.
    assert!(
        vm.reports()
            .iter()
            .any(|r| r.generation > 0 && r.total_prefetches > 0),
        "no generation > 0 report with prefetches: {:?}",
        vm.reports()
            .iter()
            .map(|r| (r.method.clone(), r.generation, r.total_prefetches))
            .collect::<Vec<_>>()
    );

    // Every compilation generation — including the patched (prefetches
    // stripped from stale loops) and repatched ones — passes the
    // structural verifier and the full static lint.
    let policy = vm
        .config()
        .prefetch
        .guarded_policy
        .lint_check(ProcessorConfig::athlon_mp().swpf_drops_on_tlb_miss);
    let lint_config = LintConfig { policy };
    let mut walk_generations = 0;
    for (_mid, generation, func) in vm.compiled_generations() {
        if func.name() == "walk" {
            walk_generations += 1;
        }
        let errors = stride_prefetch::ir::verify::verify_all(vm.program(), func);
        assert!(
            errors.is_empty(),
            "{} g{generation} fails verify: {errors:?}",
            func.name()
        );
        let findings = lint(func, &lint_config);
        assert!(
            findings.is_empty(),
            "{} g{generation} fails lint: {findings:?}",
            func.name()
        );
    }
    assert!(
        walk_generations >= 3,
        "walk must have a generation-0 body, a patched body, and a \
         repatched body, got {walk_generations}"
    );
}

#[test]
fn adaptive_counters_reconcile_with_trace_events() {
    let (program, main, _walk) = build();
    let mut vm = Vm::with_sink(
        program,
        config(),
        ProcessorConfig::athlon_mp(),
        RingSink::with_capacity(1 << 19),
    );
    let out = vm.call(main, &[]).expect("traced adaptive run");
    assert_eq!(out, Some(Value::I32(expected_checksum())));
    assert_eq!(vm.sink().lost(), 0, "ring must hold the complete trace");

    let events = vm.sink().snapshot();
    let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    let deopts = count(|e| matches!(e, TraceEvent::Deopt { .. }));
    let recompiles = count(|e| matches!(e, TraceEvent::Recompile { .. }));
    let invalidated = count(|e| matches!(e, TraceEvent::LoopInvalidated { .. }));
    let repatched = count(|e| matches!(e, TraceEvent::LoopRepatched { .. }));
    assert_eq!(
        deopts,
        vm.stats().deopts,
        "one Deopt event per counted deopt"
    );
    assert_eq!(deopts, 0, "whole-method deopts are gone");
    assert_eq!(
        recompiles,
        vm.stats().recompiles,
        "one Recompile event per counted recompile"
    );
    assert_eq!(
        invalidated,
        vm.stats().loop_deopts,
        "one LoopInvalidated event per counted loop invalidation"
    );
    assert_eq!(
        repatched,
        vm.stats().loop_repatches,
        "one LoopRepatched event per counted loop repatch"
    );
    assert!(invalidated >= 1 && repatched >= 1);

    // Patched and repatched generations register fresh sites tagged with
    // their generation, so later runtime events attribute to the newest
    // body.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::SiteRegistered { generation, .. } if *generation > 0)),
        "repatching must re-register its sites under the new generation"
    );
}

#[test]
fn adaptive_preserves_semantics_vs_baseline() {
    let (program, main, _walk) = build();
    let mut vm = Vm::new(
        program,
        VmConfig {
            prefetch: PrefetchOptions::off(),
            ..config()
        },
        ProcessorConfig::athlon_mp(),
    );
    let out = vm.call(main, &[]).expect("baseline run");
    assert_eq!(out, Some(Value::I32(expected_checksum())));
    assert_eq!(vm.stats().deopts, 0, "guards are inert outside Adaptive");
    assert_eq!(vm.stats().recompiles, 0);
    assert_eq!(vm.stats().loop_deopts, 0);
    assert_eq!(vm.stats().loop_repatches, 0);
}

/// How many times the no-churn fixture walks the array per `main` call.
/// Enough invocations that within one call the JIT compiles `walk`
/// (threshold 2), and after an injected epoch bump the stale loop is
/// patched and then — once the per-loop backoff (base 2 invocations) is
/// served — repatched.
const SIMPLE_WALKS: i32 = 8;

/// The stranded-interpreter regression fixture: the same node walk but
/// with no garbage twins and no churn, so nothing ever collects on its
/// own — staleness comes only from the injected GC-epoch advance.
fn build_simple() -> (Program, MethodId, MethodId) {
    let mut pb = ProgramBuilder::new();
    let (node, nf) = add_node_class(&mut pb);
    let walk = add_walk(&mut pb, &nf);
    let main = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(ELEMS);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let keep = b.new_object(node);
                let four = b.const_i32(4);
                let data = b.new_array(ElemTy::I32, four);
                b.putfield(keep, nf[0], i);
                b.putfield(keep, nf[1], data);
                let zero = b.const_i32(0);
                b.astore(data, zero, i, ElemTy::I32);
                b.astore(arr, i, keep, ElemTy::Ref);
            },
        );
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        let reps = b.const_i32(SIMPLE_WALKS);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let s = b.call(walk, &[arr]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };
    (pb.finish(), main, walk)
}

/// Regression for the db/ADAPTIVE stranded-interpreter cell: under
/// whole-method deopt, a single GC-epoch staleness verdict threw the
/// entire method back to the interpreter and the recompile backoff was
/// never served, so the hot walk ran interpreted (10x cost) to the end
/// of the run. Per-loop invalidation must instead patch only the stale
/// loop's prefetch sites, keep the body compiled and executing, and
/// repatch the loop — with zero whole-method deopts or recompiles.
#[test]
fn single_epoch_staleness_patches_loops_but_keeps_the_body_compiled() {
    let (program, main, walk) = build_simple();
    let mut vm = Vm::new(
        program,
        VmConfig {
            // Roomy: nothing may collect on its own, so the only epoch
            // advance is the injected one.
            heap_bytes: 64 << 20,
            prefetch: PrefetchOptions::adaptive(),
            ..VmConfig::default()
        },
        ProcessorConfig::athlon_mp(),
    );
    let per_call = Some(Value::I32(SIMPLE_WALKS * 2 * (0..ELEMS).sum::<i32>()));

    let out = vm.call(main, &[]).expect("warm run");
    assert_eq!(out, per_call);
    assert_eq!(
        vm.stats().gc_count,
        0,
        "fixture must not collect on its own"
    );
    assert!(vm.is_compiled(walk), "walk must be hot enough to compile");
    assert_eq!(
        vm.stats().loop_deopts,
        0,
        "no staleness before the epoch bump"
    );
    let interp_before = vm.stats().per_method[walk.index()].interpreted;

    // A single external GC-epoch advance — the exact trigger that used to
    // strand the whole method in the interpreter.
    vm.inject_heap_move();

    let out = vm.call(main, &[]).expect("post-move run");
    assert_eq!(out, per_call, "patched and repatched bodies stay correct");
    assert!(
        vm.stats().loop_deopts >= 1,
        "the epoch bump must invalidate the walk loop's guard"
    );
    assert_eq!(
        vm.stats().deopts,
        0,
        "single epoch bump, zero whole-method deopts"
    );
    assert_eq!(
        vm.stats().recompiles,
        0,
        "single epoch bump, zero full recompiles"
    );
    assert!(
        vm.is_compiled(walk),
        "the patched body must stay installed and live"
    );
    assert_eq!(
        vm.stats().per_method[walk.index()].interpreted,
        interp_before,
        "the patched body must keep executing compiled — not one \
         interpreted cycle after the invalidation"
    );
    assert!(
        vm.stats().loop_repatches >= 1,
        "the stale loop must re-enter through a tier-2 repatch once its \
         backoff is served"
    );
}
