//! Adaptive reprofiling end to end: a workload whose strides change when
//! a GC slide compacts the heap must trigger guard-detected staleness, a
//! deopt back to the interpreter, and a recompilation whose re-inspection
//! re-agrees on the (new) strides — with every compilation generation
//! passing the static lint and the trace events reconciling exactly with
//! the VM's counters.

use stride_prefetch::analysis::{lint, LintConfig};
use stride_prefetch::heap::Value;
use stride_prefetch::ir::{CmpOp, ElemTy, MethodId, Program, ProgramBuilder, Ty};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::trace::{RingSink, TraceEvent, TraceSink};
use stride_prefetch::vm::{Vm, VmConfig};

const ELEMS: i32 = 1500;
const WALKS_BEFORE_GC: i32 = 3;
const WALKS_AFTER_GC: i32 = 5;
const CHURN: i32 = 40_000;

/// Builds a program in three phases: construct an array of nodes with a
/// dead "garbage twin" allocated before each live node (so live nodes sit
/// two allocations apart), walk it enough times for the JIT to compile
/// `walk` against that gapped layout, churn allocations until GC slides
/// the survivors together (halving the stride), then walk again so the
/// stale compiled prefetches are detected, deoptimized, and recompiled.
fn build() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let (node, nf) = pb.add_class(
        "Node",
        &[
            ("v", ElemTy::I32),
            ("data", ElemTy::Ref),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
            ("pad5", ElemTy::I64),
            ("pad6", ElemTy::I64),
        ],
    );
    let walk = {
        let mut b = pb.function("walk", &[Ty::Ref], Some(Ty::I32));
        let arr = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let n = b.aload(arr, i, ElemTy::Ref);
                let v = b.getfield(n, nf[0]);
                let d = b.getfield(n, nf[1]);
                let zero = b.const_i32(0);
                let d0 = b.aload(d, zero, ElemTy::I32);
                let s1 = b.add(acc, v);
                let s2 = b.add(s1, d0);
                b.move_(acc, s2);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };
    let main = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(ELEMS);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let _garbage = b.new_object(node);
                let keep = b.new_object(node);
                let four = b.const_i32(4);
                let data = b.new_array(ElemTy::I32, four);
                b.putfield(keep, nf[0], i);
                b.putfield(keep, nf[1], data);
                let zero = b.const_i32(0);
                b.astore(data, zero, i, ElemTy::I32);
                b.astore(arr, i, keep, ElemTy::Ref);
            },
        );
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        // Phase A: the JIT compiles `walk` against the gapped layout.
        let pre = b.const_i32(WALKS_BEFORE_GC);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| pre,
            |b, _| {
                let s = b.call(walk, &[arr]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        // Phase B: allocation churn forces collections; the first one
        // frees the garbage twins and slides the survivors together.
        let churn = b.const_i32(CHURN);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| churn,
            |b, _| {
                let _tmp = b.new_object(node);
            },
        );
        // Phase C: the compiled strides are stale; guards must notice.
        let post = b.const_i32(WALKS_AFTER_GC);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| post,
            |b, _| {
                let s = b.call(walk, &[arr]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };
    (pb.finish(), main)
}

fn config() -> VmConfig {
    VmConfig {
        // Large enough that phase A runs without GC (the compiled strides
        // reflect the gapped layout), small enough that phase B collects.
        heap_bytes: 1200 << 10,
        prefetch: PrefetchOptions::adaptive(),
        ..VmConfig::default()
    }
}

fn expected_checksum() -> i32 {
    (WALKS_BEFORE_GC + WALKS_AFTER_GC) * 2 * (0..ELEMS).sum::<i32>()
}

#[test]
fn gc_slide_triggers_deopt_and_reagreeing_recompile() {
    let (program, main) = build();
    let mut vm = Vm::new(program, config(), ProcessorConfig::athlon_mp());
    let out = vm.call(main, &[]).expect("adaptive run");
    assert_eq!(out, Some(Value::I32(expected_checksum())));

    assert!(vm.stats().gc_count > 0, "churn must force collections");
    assert!(vm.heap().gc_epoch() >= 1, "a collection must move objects");
    assert!(
        vm.stats().deopts >= 1,
        "the GC slide must deoptimize the stale walk"
    );
    assert!(vm.stats().recompiles >= 1, "walk must be recompiled");
    assert!(
        vm.stats().reagreed >= 1,
        "re-inspection must re-agree on the compacted strides"
    );

    // The recompiled generation re-derived prefetchable strides.
    assert!(
        vm.reports()
            .iter()
            .any(|r| r.generation > 0 && r.total_prefetches > 0),
        "no generation > 0 report with prefetches: {:?}",
        vm.reports()
            .iter()
            .map(|r| (r.method.clone(), r.generation, r.total_prefetches))
            .collect::<Vec<_>>()
    );

    // Every compilation generation — including the deoptimized one —
    // passes the structural verifier and the full static lint.
    let policy = vm
        .config()
        .prefetch
        .guarded_policy
        .lint_check(ProcessorConfig::athlon_mp().swpf_drops_on_tlb_miss);
    let lint_config = LintConfig { policy };
    let mut walk_generations = 0;
    for (_mid, generation, func) in vm.compiled_generations() {
        if func.name() == "walk" {
            walk_generations += 1;
        }
        let errors = stride_prefetch::ir::verify::verify_all(vm.program(), func);
        assert!(
            errors.is_empty(),
            "{} g{generation} fails verify: {errors:?}",
            func.name()
        );
        let findings = lint(func, &lint_config);
        assert!(
            findings.is_empty(),
            "{} g{generation} fails lint: {findings:?}",
            func.name()
        );
    }
    assert!(
        walk_generations >= 2,
        "walk must have a generation-0 and a recompiled body, got {walk_generations}"
    );
}

#[test]
fn adaptive_counters_reconcile_with_trace_events() {
    let (program, main) = build();
    let mut vm = Vm::with_sink(
        program,
        config(),
        ProcessorConfig::athlon_mp(),
        RingSink::with_capacity(1 << 19),
    );
    let out = vm.call(main, &[]).expect("traced adaptive run");
    assert_eq!(out, Some(Value::I32(expected_checksum())));
    assert_eq!(vm.sink().lost(), 0, "ring must hold the complete trace");

    let events = vm.sink().snapshot();
    let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    let stales = count(|e| matches!(e, TraceEvent::SiteStale { .. }));
    let deopts = count(|e| matches!(e, TraceEvent::Deopt { .. }));
    let recompiles = count(|e| matches!(e, TraceEvent::Recompile { .. }));
    assert_eq!(
        deopts,
        vm.stats().deopts,
        "one Deopt event per counted deopt"
    );
    assert_eq!(
        recompiles,
        vm.stats().recompiles,
        "one Recompile event per counted recompile"
    );
    assert_eq!(
        stales, deopts,
        "every staleness verdict deopts exactly once"
    );
    assert!(deopts >= 1 && recompiles >= 1);

    // Recompiled generations register fresh sites tagged with their
    // generation, so later runtime events attribute to the newest body.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::SiteRegistered { generation, .. } if *generation > 0)),
        "recompilation must re-register its sites under the new generation"
    );
}

#[test]
fn adaptive_preserves_semantics_vs_baseline() {
    let (program, main) = build();
    let mut vm = Vm::new(
        program,
        VmConfig {
            prefetch: PrefetchOptions::off(),
            ..config()
        },
        ProcessorConfig::athlon_mp(),
    );
    let out = vm.call(main, &[]).expect("baseline run");
    assert_eq!(out, Some(Value::I32(expected_checksum())));
    assert_eq!(vm.stats().deopts, 0, "guards are inert outside Adaptive");
    assert_eq!(vm.stats().recompiles, 0);
}
