//! Cross-crate tests for the static-analysis layer (`spf-analysis`).
//!
//! Two directions: every method body the JIT produces — after lowering,
//! inlining, unrolling, DCE, and prefetch insertion — must pass the
//! structural verifier and the full lint under the policy discipline of the
//! simulated processor; and deliberately broken IR (use-before-def,
//! speculation leaking into a store) must be caught, including shapes the
//! structural verifier alone cannot see.

use spf_testkit::cases;
use stride_prefetch::analysis::{self, LintConfig, PolicyCheck};
use stride_prefetch::ir::verify::verify_all;
use stride_prefetch::ir::{
    BinOp, CmpOp, Const, ElemTy, Function, Instr, PrefetchAddr, ProgramBuilder, Terminator, Ty,
};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::{GuardedPolicy, PrefetchMode, PrefetchOptions};
use stride_prefetch::vm::{Vm, VmConfig};
use stride_prefetch::workloads::{self, Size};

/// Verifies and lints every compiled body in `vm`, returning how many
/// methods were compiled.
fn lint_compiled(vm: &Vm, policy: PolicyCheck, label: &str) -> usize {
    let config = LintConfig { policy };
    let mut compiled = 0;
    for mid in vm.program().method_ids() {
        let Some(func) = vm.compiled_body(mid) else {
            continue;
        };
        compiled += 1;
        let errors = verify_all(vm.program(), func);
        assert!(errors.is_empty(), "{label}: {}: {errors:?}", func.name());
        let findings = analysis::lint(func, &config);
        assert!(
            findings.is_empty(),
            "{label}: {}: {findings:?}",
            func.name()
        );
    }
    compiled
}

/// Builds, warms up (so the JIT runs), and checks one workload
/// configuration end to end.
fn run_and_lint(spec: &workloads::WorkloadSpec, options: PrefetchOptions, config: VmConfig) {
    for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
        let built = (spec.build)(Size::Tiny);
        let policy = options
            .guarded_policy
            .lint_check(proc.swpf_drops_on_tlb_miss);
        let label = format!("{}/{}/{}", spec.name, options.mode, proc.name);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                prefetch: options.clone(),
                compile_threshold: built.compile_threshold,
                ..config.clone()
            },
            proc,
        );
        let mut checksum = 0;
        for _ in 0..2 {
            checksum = vm
                .call(built.entry, &[])
                .unwrap_or_else(|e| panic!("{label} faulted: {e}"))
                .expect("entry returns a checksum")
                .as_i32();
        }
        if let Some(expected) = built.expected {
            assert_eq!(checksum, expected, "{label} checksum");
        }
        let compiled = lint_compiled(&vm, policy, &label);
        assert!(compiled > 0, "{label}: the JIT compiled no methods");
    }
}

// -------------------------------------------------------------------
// Every registry workload, with the whole optimizer enabled (inline +
// unroll + DCE + prefetch insertion), produces lint-clean compiled code.
// -------------------------------------------------------------------

#[test]
fn optimized_workloads_pass_lint_and_verifier() {
    for spec in workloads::all() {
        run_and_lint(
            &spec,
            PrefetchOptions::inter_intra(),
            VmConfig {
                inline_small_methods: true,
                unroll_factor: 2,
                ..VmConfig::default()
            },
        );
    }
}

// -------------------------------------------------------------------
// Randomized configurations: mode, guarded policy, inline, and unroll
// factor never produce a compiled body the lint rejects.
// -------------------------------------------------------------------

#[test]
fn random_jit_configs_pass_lint() {
    let specs = workloads::all();
    cases(10, "random jit configs pass lint", |rng| {
        let spec = &specs[rng.index(specs.len())];
        let options = PrefetchOptions {
            mode: if rng.bool() {
                PrefetchMode::Inter
            } else {
                PrefetchMode::InterIntra
            },
            guarded_policy: match rng.index(3) {
                0 => GuardedPolicy::AlwaysHardware,
                1 => GuardedPolicy::AlwaysGuarded,
                _ => GuardedPolicy::Auto,
            },
            inspect_iterations: rng.u64_in(4, 30) as u32,
            distance: rng.u64_in(1, 3) as u32,
            ..PrefetchOptions::default()
        };
        run_and_lint(
            spec,
            options,
            VmConfig {
                inline_small_methods: rng.bool(),
                unroll_factor: rng.u64_in(1, 3) as u32,
                ..VmConfig::default()
            },
        );
    });
}

// -------------------------------------------------------------------
// Mutation tests: IR broken in ways the VM would silently tolerate (it
// zero-initializes frames; stores through speculative null go through the
// heap's fault path only at runtime) must be rejected statically.
// -------------------------------------------------------------------

#[test]
fn mutation_one_armed_initialization_is_caught() {
    let mut pb = ProgramBuilder::new();
    let mut b = pb.function("mutant", &[Ty::I32], Some(Ty::I32));
    let x = b.param(0);
    let zero = b.const_i32(0);
    let c = b.gt(x, zero);
    let v = b.new_reg(Ty::I32);
    b.if_else(c, |b| b.move_(v, x), |_| {});
    let out = b.add(v, x); // v is unassigned when the else arm ran
    b.ret(Some(out));
    let m = b.finish();
    let p = pb.finish();
    let func = p.method(m).func();
    // Structurally valid — only the dataflow analysis sees the hole.
    assert!(verify_all(&p, func).is_empty());
    let findings = analysis::lint(func, &LintConfig::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("before definite assignment"));
}

#[test]
fn mutation_speculative_store_is_caught() {
    // A counted loop whose body spec-loads a link and then *stores* through
    // the speculative reference — the leak the codegen discipline forbids.
    let mut f = Function::with_signature("mutant", &[Ty::Ref, Ty::I32], None);
    let head = f.params().next().unwrap();
    let n = f.params().nth(1).unwrap();
    let i = f.new_reg(Ty::I32);
    let one = f.new_reg(Ty::I32);
    let cond = f.new_reg(Ty::I32);
    let spec = f.new_reg(Ty::Ref);
    let entry = f.entry();
    let header = f.add_block();
    let body = f.add_block();
    let exit = f.add_block();
    {
        let blk = f.block_mut(entry);
        blk.instrs.push(Instr::Const {
            dst: i,
            value: Const::I32(0),
        });
        blk.instrs.push(Instr::Const {
            dst: one,
            value: Const::I32(1),
        });
        blk.term = Terminator::Jump(header);
    }
    {
        let blk = f.block_mut(header);
        blk.instrs.push(Instr::Cmp {
            dst: cond,
            op: CmpOp::Lt,
            a: i,
            b: n,
        });
        blk.term = Terminator::Branch {
            cond,
            then_bb: body,
            else_bb: exit,
        };
    }
    {
        let blk = f.block_mut(body);
        blk.instrs.push(Instr::SpecLoad {
            dst: spec,
            addr: PrefetchAddr::FieldOf {
                base: head,
                delta: 8,
            },
        });
        blk.instrs.push(Instr::AStore {
            arr: spec,
            idx: i,
            src: one,
            elem: ElemTy::I32,
        });
        blk.instrs.push(Instr::Bin {
            dst: i,
            op: BinOp::Add,
            a: i,
            b: one,
        });
        blk.term = Terminator::Jump(header);
    }
    f.block_mut(exit).term = Terminator::Return(None);

    let findings = analysis::lint(&f, &LintConfig::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0]
        .message
        .contains("leaks into non-speculative use"));
}
