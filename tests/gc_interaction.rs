//! GC × prefetching interaction: collections move objects (sliding
//! compaction), which invalidates previously learned absolute addresses —
//! but never correctness, and the preserved allocation order keeps the
//! strides the prefetches rely on.

use stride_prefetch::heap::Value;
use stride_prefetch::ir::{CmpOp, ElemTy, ProgramBuilder, Ty};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};

/// Builds a program that allocates garbage between useful nodes, forcing
/// collections, then repeatedly walks the surviving structure.
fn build() -> (stride_prefetch::ir::Program, stride_prefetch::ir::MethodId) {
    let mut pb = ProgramBuilder::new();
    let (node, nf) = pb.add_class(
        "Node",
        &[
            ("v", ElemTy::I32),
            ("data", ElemTy::Ref),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
            ("pad5", ElemTy::I64),
            ("pad6", ElemTy::I64),
        ],
    );
    let walk = {
        let mut b = pb.function("walk", &[Ty::Ref], Some(Ty::I32));
        let arr = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let n = b.aload(arr, i, ElemTy::Ref);
                let v = b.getfield(n, nf[0]);
                let d = b.getfield(n, nf[1]);
                let zero = b.const_i32(0);
                let d0 = b.aload(d, zero, ElemTy::I32);
                let s1 = b.add(acc, v);
                let s2 = b.add(s1, d0);
                b.move_(acc, s2);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };
    let main = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(2000);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                // Garbage between live pairs: freed by GC, leaving uniform
                // gaps that sliding compaction closes.
                let _garbage = b.new_object(node);
                let keep = b.new_object(node);
                let one = b.const_i32(4);
                let data = b.new_array(ElemTy::I32, one);
                b.putfield(keep, nf[0], i);
                b.putfield(keep, nf[1], data);
                let zero = b.const_i32(0);
                b.astore(data, zero, i, ElemTy::I32);
                b.astore(arr, i, keep, ElemTy::Ref);
            },
        );
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        let reps = b.const_i32(6);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let s = b.call(walk, &[arr]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };
    (pb.finish(), main)
}

#[test]
fn gc_under_prefetching_is_correct_and_strides_survive() {
    let mut outs = Vec::new();
    for options in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
        let (program, main) = build();
        let mut vm = Vm::new(
            program,
            VmConfig {
                // Small heap: allocation churn forces several collections.
                heap_bytes: 600 << 10,
                prefetch: options,
                ..VmConfig::default()
            },
            ProcessorConfig::athlon_mp(),
        );
        let a = vm.call(main, &[]).expect("first run");
        let b = vm.call(main, &[]).expect("second run");
        assert_eq!(a, b, "deterministic across runs");
        assert!(vm.stats().gc_count > 0, "collections must have happened");
        outs.push(a);
    }
    assert_eq!(outs[0], outs[1], "GC + prefetching preserve semantics");
    assert_eq!(outs[0], Some(Value::I32(6 * 2 * (0..2000).sum::<i32>())));
}
