//! Differential tests for the direct-threaded interpreter: superinstruction
//! fusion must be a pure dispatch-count optimization (bit-identical
//! semantics and simulated numbers with fusion on or off), and the call-site
//! inline caches must degrade gracefully when a site sees too many code
//! revisions.

use spf_testkit::{cases, Rng};
use stride_prefetch::heap::Value;
use stride_prefetch::ir::{CmpOp, ProgramBuilder, Ty};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig, VmStats};

// ---------------------------------------------------------------------
// Fusion equivalence: random programs exercising every fusable pattern
// (const/bin/move chains, array stores and loads, field access, statics,
// compare-and-branch back edges) must produce the same values and the
// same simulated counters with `fuse_superinstructions` on and off.
// ---------------------------------------------------------------------

/// A random arithmetic expression over the in-scope `int` variables.
/// Division and remainder only ever see literal non-zero divisors, so no
/// random program traps.
fn arb_expr(rng: &mut Rng, vars: &[&str], fuel: u32) -> String {
    if fuel == 0 || rng.chance(1, 3) {
        return if rng.bool() {
            let v = rng.i32_in(-100, 100);
            if v < 0 {
                format!("(0 - {})", v.unsigned_abs())
            } else {
                format!("{v}")
            }
        } else {
            (*rng.pick(vars)).to_string()
        };
    }
    let a = arb_expr(rng, vars, fuel - 1);
    match rng.index(5) {
        0 => format!("({a} + {})", arb_expr(rng, vars, fuel - 1)),
        1 => format!("({a} - {})", arb_expr(rng, vars, fuel - 1)),
        2 => format!("({a} * {})", arb_expr(rng, vars, fuel - 1)),
        3 => format!("({a} / {})", rng.i32_in(1, 9)),
        _ => format!("({a} % {})", rng.i32_in(2, 9)),
    }
}

/// A random kernel touching arrays (astore/aload), object fields
/// (getfield/putfield), statics, and both loop shapes, parameterized on
/// `x` so the interpreted and compiled activations see live input.
fn arb_kernel(rng: &mut Rng) -> String {
    let n = rng.usize_in(4, 24);
    let body_stores = arb_expr(rng, &["i", "acc", "x"], 2);
    let body_acc = arb_expr(rng, &["acc", "x", "t"], 2);
    let body_field = arb_expr(rng, &["i", "acc"], 1);
    let body_static = arb_expr(rng, &["acc", "x"], 1);
    let tail_step = rng.usize_in(1, 3);
    let tail_bound = rng.usize_in(1, 30);
    format!(
        "static int g;
         class P {{ int a; int b; }}
         int f(int x) {{
             int[] arr = new int[{n}];
             P p = new P();
             p.a = x;
             p.b = {init_b};
             int acc = x;
             for (int i = 0; i < {n}; i = i + 1) {{
                 arr[i] = {body_stores};
                 acc = acc + arr[i] + p.a;
                 p.b = p.b + {body_field};
                 g = g + {body_static};
             }}
             int t = 0;
             while (t < {tail_bound}) {{
                 t = t + {tail_step};
                 acc = acc + arr[t % {n}];
             }}
             return acc + t + p.b + g + {body_acc};
         }}",
        init_b = rng.i32_in(-50, 50),
    )
}

/// Runs `src` under the steady-state protocol the benchmarks use: two
/// warmup calls (the second triggers the JIT at the default threshold),
/// `reset_measurement`, then two measured calls. Generation-0 JIT
/// compilation is charged from host wall-clock time, so counters are only
/// comparable across VMs after the reset.
fn run(
    src: &str,
    fuse: bool,
    prefetch: PrefetchOptions,
) -> (
    Vec<Option<Value>>,
    VmStats,
    stride_prefetch::memsim::MemStats,
) {
    let program = stride_prefetch::lang::compile(src)
        .unwrap_or_else(|err| panic!("compile error {err} in {src}"));
    let mid = program.method_by_name("f").unwrap();
    let mut vm = Vm::new(
        program,
        VmConfig {
            fuse_superinstructions: fuse,
            prefetch,
            ..VmConfig::default()
        },
        ProcessorConfig::pentium4(),
    );
    let mut outs: Vec<Option<Value>> = Vec::new();
    for i in 0..2 {
        outs.push(
            vm.call(mid, &[Value::I32(7 + i)])
                .unwrap_or_else(|e| panic!("warmup {i} trapped: {e} in {src}")),
        );
    }
    vm.reset_measurement();
    for i in 2..4 {
        outs.push(
            vm.call(mid, &[Value::I32(7 + i)])
                .unwrap_or_else(|e| panic!("measured run {i} trapped: {e} in {src}")),
        );
    }
    (outs, vm.stats().clone(), *vm.mem_stats())
}

/// Field-by-field equality on everything except the host wall-clock
/// counters (`jit_nanos`, `prefetch_pass_nanos`): fusion changes how long
/// the host takes, never what the simulation computes.
fn assert_simulated_match(fused: &VmStats, unfused: &VmStats, ctx: &str) {
    assert_eq!(fused.cycles, unfused.cycles, "cycles: {ctx}");
    assert_eq!(
        fused.retired_instructions, unfused.retired_instructions,
        "retired_instructions: {ctx}"
    );
    assert_eq!(
        fused.interpreted_instructions, unfused.interpreted_instructions,
        "interpreted_instructions: {ctx}"
    );
    assert_eq!(
        fused.compiled_instructions, unfused.compiled_instructions,
        "compiled_instructions: {ctx}"
    );
    assert_eq!(
        fused.methods_compiled, unfused.methods_compiled,
        "methods_compiled: {ctx}"
    );
    assert_eq!(fused.jit_cycles, unfused.jit_cycles, "jit_cycles: {ctx}");
    assert_eq!(fused.gc_count, unfused.gc_count, "gc_count: {ctx}");
    assert_eq!(fused.gc_cycles, unfused.gc_cycles, "gc_cycles: {ctx}");
    assert_eq!(fused.deopts, unfused.deopts, "deopts: {ctx}");
    assert_eq!(fused.recompiles, unfused.recompiles, "recompiles: {ctx}");
    assert_eq!(fused.reagreed, unfused.reagreed, "reagreed: {ctx}");
    assert_eq!(fused.per_method, unfused.per_method, "per_method: {ctx}");
}

#[test]
fn fused_dispatch_is_bit_identical_to_unfused() {
    cases(48, "fused dispatch is bit-identical to unfused", |rng| {
        let src = arb_kernel(rng);
        for prefetch in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
            let mode = prefetch.mode;
            let (vals_f, stats_f, mem_f) = run(&src, true, prefetch.clone());
            let (vals_u, stats_u, mem_u) = run(&src, false, prefetch);
            assert_eq!(vals_f, vals_u, "returned values, mode={mode}, src={src}");
            let ctx = format!("mode={mode}, src={src}");
            assert_simulated_match(&stats_f, &stats_u, &ctx);
            assert_eq!(mem_f, mem_u, "memory-system stats: {ctx}");
        }
    });
}

#[test]
fn fusion_actually_fires_on_the_random_kernels() {
    // Guard against the equivalence test passing vacuously: the generated
    // kernels must contain fusable patterns.
    cases(16, "fusion fires on the random kernels", |rng| {
        let src = arb_kernel(rng);
        let program = stride_prefetch::lang::compile(&src).unwrap();
        let vm: Vm = Vm::new(program, VmConfig::default(), ProcessorConfig::pentium4());
        assert!(vm.fused_op_count() > 0, "no superinstructions in {src}");
    });
}

// ---------------------------------------------------------------------
// PIC overflow: a call site that keeps seeing new code revisions of its
// callee must go megamorphic (cache disabled) instead of thrashing, and
// the program must keep computing the same answer through the slow path.
// ---------------------------------------------------------------------

#[test]
fn call_site_overflows_to_megamorphic_after_many_revisions() {
    let mut pb = ProgramBuilder::new();
    let sq = {
        let mut b = pb.function("sq", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let y = b.mul(x, x);
        b.ret(Some(y));
        b.finish()
    };
    let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
    let n = b.param(0);
    let acc = b.new_reg(Ty::I32);
    let z = b.const_i32(0);
    b.move_(acc, z);
    b.for_i32(
        0,
        1,
        CmpOp::Lt,
        |_| n,
        |b, i| {
            let s = b.call(sq, &[i]);
            let t = b.add(acc, s);
            b.move_(acc, t);
        },
    );
    b.ret(Some(acc));
    let main = b.finish();
    let program = pb.finish();
    let sq_body = program.method(sq).func().clone();

    let mut vm = Vm::new(
        program,
        VmConfig {
            // Never JIT on its own: every revision change below is ours.
            compile_threshold: u32::MAX,
            ..VmConfig::default()
        },
        ProcessorConfig::pentium4(),
    );
    let expected = vm.call(main, &[Value::I32(50)]).unwrap();
    let warm = vm.pic_stats();
    assert!(warm.sites > 0);
    assert!(
        warm.hits > warm.misses,
        "warm monomorphic site must mostly hit: {warm:?}"
    );
    assert_eq!(warm.megamorphic_sites, 0);

    // Install the same body repeatedly: each install bumps `sq`'s code
    // revision, so main's call site sees rev 1, 2, 3, ... — more distinct
    // revisions than a 2-way cache can hold.
    for _ in 0..3 {
        vm.install_compiled(sq, sq_body.clone());
        assert_eq!(
            vm.call(main, &[Value::I32(50)]).unwrap(),
            expected,
            "revision churn must not change the computed value"
        );
    }
    let churned = vm.pic_stats();
    assert!(
        churned.megamorphic_sites >= 1,
        "three revisions through a 2-way PIC must overflow: {churned:?}"
    );
    // The megamorphic slow path still resolves calls (the loop above kept
    // returning the right answer), and the warm hits were not forgotten.
    assert!(churned.hits >= warm.hits);
}
