//! End-to-end correctness: every workload must compute the same checksum
//! under every prefetch configuration — the optimizer may only change
//! *when* memory moves, never what the program computes.

use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::vm::{Vm, VmConfig};
use stride_prefetch::workloads::{self, Size};

fn checksum(
    spec: &workloads::WorkloadSpec,
    options: PrefetchOptions,
    proc: ProcessorConfig,
) -> (i32, i32) {
    let built = (spec.build)(Size::Tiny);
    let mut vm = Vm::new(
        built.program,
        VmConfig {
            heap_bytes: built.heap_bytes,
            prefetch: options,
            compile_threshold: built.compile_threshold,
            ..VmConfig::default()
        },
        proc,
    );
    let first = vm
        .call(built.entry, &[])
        .unwrap_or_else(|e| panic!("{} faulted: {e}", spec.name))
        .expect("returns checksum")
        .as_i32();
    let second = vm
        .call(built.entry, &[])
        .unwrap_or_else(|e| panic!("{} faulted on 2nd run: {e}", spec.name))
        .expect("returns checksum")
        .as_i32();
    (first, second)
}

#[test]
fn all_workloads_agree_across_configurations() {
    for spec in workloads::all() {
        let (base1, base2) = checksum(&spec, PrefetchOptions::off(), ProcessorConfig::pentium4());
        assert_eq!(
            base1, base2,
            "{}: deterministic across repeat invocations",
            spec.name
        );
        for proc in [ProcessorConfig::pentium4(), ProcessorConfig::athlon_mp()] {
            for options in [PrefetchOptions::inter(), PrefetchOptions::inter_intra()] {
                let (c1, c2) = checksum(&spec, options.clone(), proc.clone());
                assert_eq!(
                    (c1, c2),
                    (base1, base2),
                    "{} on {} under {}: prefetching changed the result",
                    spec.name,
                    proc.name,
                    options.mode
                );
            }
        }
    }
}

#[test]
fn compiled_code_runs_after_warmup() {
    for spec in workloads::all() {
        let built = (spec.build)(Size::Tiny);
        let entry = built.entry;
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                compile_threshold: built.compile_threshold,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(entry, &[]).unwrap();
        vm.call(entry, &[]).unwrap();
        assert!(
            vm.stats().methods_compiled > 0,
            "{}: nothing was JIT-compiled",
            spec.name
        );
        // Measurement protocol: steady-state run attributes most cycles to
        // compiled code for the compute-heavy workloads.
        vm.reset_measurement();
        vm.call(entry, &[]).unwrap();
        let frac = vm.stats().compiled_code_fraction();
        // jack and MonteCarlo are interpreter-heavy by design (Table 3);
        // everything must at least execute *some* compiled code.
        assert!(
            frac > 0.01,
            "{}: compiled-code fraction suspiciously low ({frac:.2})",
            spec.name
        );
    }
}

#[test]
fn reports_are_consistent_with_generated_code() {
    // For each workload, the number of prefetch/spec-load instructions in
    // the compiled bodies must equal what the reports claim.
    for spec in workloads::all() {
        let built = (spec.build)(Size::Tiny);
        let entry = built.entry;
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                compile_threshold: built.compile_threshold,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(entry, &[]).unwrap();
        vm.call(entry, &[]).unwrap();
        let reported: usize = vm.reports().iter().map(|r| r.total_prefetches).sum();
        let issued = vm.mem_stats().swpf_issued + vm.mem_stats().guarded_loads;
        if reported == 0 {
            assert_eq!(
                issued, 0,
                "{}: prefetches executed but none reported",
                spec.name
            );
        }
    }
}

#[test]
fn inlining_preserves_every_workload_checksum() {
    // The paper's JIT inlines (jess's findInMemory "is inlined into" the
    // hottest method); enabling our inliner must not change any result.
    for spec in workloads::all() {
        let reference = checksum(
            &spec,
            PrefetchOptions::inter_intra(),
            ProcessorConfig::pentium4(),
        );
        let built = (spec.build)(Size::Tiny);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                compile_threshold: built.compile_threshold,
                inline_small_methods: true,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let c1 = vm.call(built.entry, &[]).unwrap().unwrap().as_i32();
        let c2 = vm.call(built.entry, &[]).unwrap().unwrap().as_i32();
        assert_eq!(
            (c1, c2),
            reference,
            "{}: inlining changed the result",
            spec.name
        );
    }
}

#[test]
fn unrolling_preserves_every_workload_checksum() {
    // §3.3: unrolling stretches the effective prefetch distance; it must
    // never change results, for any workload, combined with prefetching.
    for spec in workloads::all() {
        let reference = checksum(
            &spec,
            PrefetchOptions::inter_intra(),
            ProcessorConfig::pentium4(),
        );
        let built = (spec.build)(Size::Tiny);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                compile_threshold: built.compile_threshold,
                unroll_factor: 4,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let c1 = vm.call(built.entry, &[]).unwrap().unwrap().as_i32();
        let c2 = vm.call(built.entry, &[]).unwrap().unwrap().as_i32();
        assert_eq!(
            (c1, c2),
            reference,
            "{}: unrolling changed the result",
            spec.name
        );
    }
}
