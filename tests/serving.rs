//! Serving-layer invariants, end to end through the public facade: the
//! fleet simulation must be a pure function of its config (bit-identical
//! across host worker counts), results must be mode-invariant, and the
//! `SERVE_summary.json` report must round-trip.

use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::serve::{report, sim, ModeReport, ServeConfig, ServeSummary};

fn small_fleet() -> ServeConfig {
    ServeConfig {
        tenants: 24,
        requests: 80,
        ..ServeConfig::default()
    }
}

#[test]
fn fleet_is_bit_identical_across_worker_counts() {
    let cfg = small_fleet();
    let proc = ProcessorConfig::pentium4();
    for opts in [PrefetchOptions::off(), PrefetchOptions::adaptive()] {
        let serial = sim::run(&cfg, &opts, &proc, 1);
        let parallel = sim::run(&cfg, &opts, &proc, 3);
        assert_eq!(
            serial.latencies, parallel.latencies,
            "{}: latencies changed with --jobs",
            opts.mode
        );
        assert_eq!(serial.events, parallel.events, "{}: events", opts.mode);
        assert_eq!(
            serial.queue_depth_samples, parallel.queue_depth_samples,
            "{}: queue depth",
            opts.mode
        );
        assert_eq!(
            ModeReport::from_outcome(&opts.mode.to_string(), &serial),
            ModeReport::from_outcome(&opts.mode.to_string(), &parallel),
            "{}: report row",
            opts.mode
        );
    }
}

#[test]
fn fleet_checksum_is_mode_invariant_and_summary_round_trips() {
    let cfg = small_fleet();
    let proc = ProcessorConfig::athlon_mp();
    let mut rows = Vec::new();
    let mut checksums = Vec::new();
    for opts in [
        PrefetchOptions::off(),
        PrefetchOptions::inter(),
        PrefetchOptions::inter_intra(),
        PrefetchOptions::adaptive(),
    ] {
        let out = sim::run(&cfg, &opts, &proc, 2);
        assert_eq!(out.latencies.len(), cfg.requests as usize);
        assert!(out.latencies.iter().all(|&l| l > 0), "{}", opts.mode);
        checksums.push(out.checksum);
        rows.push(ModeReport::from_outcome(&opts.mode.to_string(), &out));
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "prefetch mode changed a workload result: {checksums:?}"
    );

    let summary = ServeSummary {
        processor: proc.name.clone(),
        tenants: cfg.tenants as u64,
        requests: u64::from(cfg.requests),
        mean_interarrival: cfg.mean_interarrival,
        seed: cfg.seed,
        slot_cycles: cfg.slot_cycles,
        compile_workers: cfg.compile_workers as u64,
        cache_capacity_instrs: cfg.cache_capacity_instrs,
        modes: rows,
        chaos: vec![],
    };
    let parsed = report::parse(&report::emit(&summary)).expect("round trip");
    assert_eq!(parsed, summary);
    assert!(report::render(&summary).contains("ADAPTIVE"));
}
