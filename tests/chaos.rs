//! Chaos-harness invariants, end to end through the public facade: the
//! seeded fault plan must be deterministic, a fault run must degrade
//! gracefully (typed sheds, compile retries, guard re-arms) and then
//! provably recover, and the `chaos` summary section must round-trip
//! while staying absent from fault-free reports.

use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::serve::{
    faults, report, sim, traffic, ChaosConfig, ChaosRow, ModeReport, ServeConfig, TrafficConfig,
};
use stride_prefetch::trace::TraceEvent;

fn chaos_fleet() -> ServeConfig {
    ServeConfig {
        tenants: 8,
        requests: 60,
        mean_interarrival: 50_000,
        chaos: Some(ChaosConfig::default()),
        ..ServeConfig::default()
    }
}

#[test]
fn fault_runs_degrade_then_recover() {
    let cfg = chaos_fleet();
    let proc = ProcessorConfig::pentium4();
    let opts = PrefetchOptions::adaptive();
    let fault = sim::run(&cfg, &opts, &proc, 3);
    let nofault = sim::run(&ServeConfig { chaos: None, ..cfg }, &opts, &proc, 3);

    // Degradation fired and left a typed trail.
    assert!(fault.faults > 0, "no fault window activated");
    assert!(fault.rearms > 0, "no exhausted guard was re-armed");
    assert!(
        fault
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::FaultInjected { .. })),
        "fault activations must be trace events"
    );
    assert_eq!(
        fault.checksum, nofault.checksum,
        "chaos may change timing, never results"
    );

    // Recovery is proven against the fault-free twin.
    let base = traffic::generate(&TrafficConfig {
        tenants: cfg.tenants,
        requests: cfg.requests,
        mean_interarrival: cfg.mean_interarrival,
        seed: cfg.seed,
    });
    let horizon = base.last().map_or(cfg.slot_cycles, |r| r.arrival);
    let chaos = cfg.chaos.unwrap();
    let plan = faults::generate(&chaos, cfg.tenants, horizon, cfg.slot_cycles);
    let recovery = faults::verify_recovery(&plan, &chaos, cfg.slot_cycles, &base, &fault, &nofault)
        .expect("recovery invariants");
    assert_eq!(recovery.stranded_final, 0);

    // The plan itself round-trips through its JSON artifact.
    let reparsed = faults::parse(&faults::emit(&plan)).expect("plan round trip");
    assert_eq!(reparsed, plan);
}

#[test]
fn chaos_summary_section_round_trips_and_stays_optional() {
    let cfg = chaos_fleet();
    let proc = ProcessorConfig::pentium4();
    let opts = PrefetchOptions::inter_intra();
    let fault = sim::run(&cfg, &opts, &proc, 2);

    let row = ModeReport::from_outcome(&opts.mode.to_string(), &fault);
    assert!(
        fault.latencies.len() >= cfg.requests as usize,
        "bursts only add requests"
    );
    assert_eq!(
        row.completed,
        (fault.latencies.len() - fault.shed.len()) as u64,
        "shed requests are excluded from the latency population"
    );

    let mut summary = report::parse(&report::emit(&sample_summary(vec![row.clone()], vec![])))
        .expect("fault-free round trip");
    assert!(
        summary.chaos.is_empty(),
        "fault-free summaries carry no chaos section"
    );
    assert!(
        !report::emit(&summary).contains("\"chaos\""),
        "fault-free files must stay byte-compatible with pre-chaos readers"
    );

    let chaos_row = ChaosRow {
        mode: opts.mode.to_string(),
        faults: fault.faults,
        shed: fault.shed.len() as u64,
        retries: fault.retries,
        rearms: fault.rearms,
        stranded_final: fault.stranded_final,
        completed: row.completed,
        p99: row.p99,
        recovery_at: 1_234_567,
        post_requests: 9,
        post_p99_ratio_milli: 1_005,
    };
    summary.chaos = vec![chaos_row];
    let parsed = report::parse(&report::emit(&summary)).expect("chaos round trip");
    assert_eq!(parsed, summary);
    assert!(report::render(&summary).contains("recovery invariants checked per mode"));
}

fn sample_summary(
    modes: Vec<ModeReport>,
    chaos: Vec<ChaosRow>,
) -> stride_prefetch::serve::ServeSummary {
    stride_prefetch::serve::ServeSummary {
        processor: "pentium4".to_string(),
        tenants: 8,
        requests: 60,
        mean_interarrival: 50_000,
        seed: 1,
        slot_cycles: 100_000,
        compile_workers: 2,
        cache_capacity_instrs: 8_192,
        modes,
        chaos,
    }
}
