//! Qualitative claims of the paper's evaluation, asserted against the
//! simulator at reduced problem sizes. These check *shape* — who wins,
//! which mechanism fires — not absolute numbers (see EXPERIMENTS.md).

use stride_prefetch::bench::{run_workload, RunPlan};
use stride_prefetch::memsim::ProcessorConfig;
use stride_prefetch::prefetch::PrefetchOptions;
use stride_prefetch::workloads::{self, Size};

fn spec(name: &str) -> workloads::WorkloadSpec {
    workloads::all()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no workload {name}"))
}

fn plan(size: Size) -> RunPlan {
    RunPlan {
        size,
        warmup_runs: 2,
        measured_runs: 1,
        timing_runs: 1,
    }
}

/// §4.1: db — INTER is ineffective, INTER+INTRA is the headline winner,
/// and the DTLB miss events collapse on the Pentium 4 (Figure 10).
#[test]
fn db_headline_shape() {
    let spec = spec("db");
    let p4 = ProcessorConfig::pentium4();
    let plan = plan(Size::Small);
    let base = run_workload(&spec, &PrefetchOptions::off(), &p4, &plan);
    let inter = run_workload(&spec, &PrefetchOptions::inter(), &p4, &plan);
    let both = run_workload(&spec, &PrefetchOptions::inter_intra(), &p4, &plan);
    let inter_gain = inter.speedup_vs(&base) - 1.0;
    let both_gain = both.speedup_vs(&base) - 1.0;
    assert!(
        inter_gain.abs() < 0.02,
        "INTER must be ineffective on db, got {:+.1}%",
        inter_gain * 100.0
    );
    assert!(
        both_gain > 0.10,
        "INTER+INTRA must win big on db, got {:+.1}%",
        both_gain * 100.0
    );
    let dtlb_base = base.mem.dtlb_load_mpi(base.retired);
    let dtlb_both = both.mem.dtlb_load_mpi(both.retired);
    assert!(
        dtlb_both < dtlb_base / 2.0,
        "TLB priming must cut DTLB load MPI: {dtlb_base:.5} -> {dtlb_both:.5}"
    );
    assert!(
        both.mem.guarded_loads > 0,
        "P4 maps intra prefetches to guarded loads"
    );
}

/// §4.1: Euler has inter-iteration strides in its main data structures, so
/// INTER and INTER+INTRA behave alike and both help on the Athlon.
#[test]
fn euler_inter_equals_inter_intra() {
    let spec = spec("Euler");
    let amp = ProcessorConfig::athlon_mp();
    let plan = plan(Size::Small);
    let base = run_workload(&spec, &PrefetchOptions::off(), &amp, &plan);
    let inter = run_workload(&spec, &PrefetchOptions::inter(), &amp, &plan);
    let both = run_workload(&spec, &PrefetchOptions::inter_intra(), &amp, &plan);
    let gi = inter.speedup_vs(&base) - 1.0;
    let gb = both.speedup_vs(&base) - 1.0;
    assert!(
        gi > 0.0,
        "INTER helps Euler on the Athlon: {:+.2}%",
        gi * 100.0
    );
    assert!(
        (gi - gb).abs() < 0.03,
        "both configurations alike on Euler: {:+.2}% vs {:+.2}%",
        gi * 100.0,
        gb * 100.0
    );
}

/// §4.1: compress, javac, and Search "do not contain code fragments where
/// either intra- or inter-iteration stride prefetching are applicable".
#[test]
fn no_opportunity_benchmarks_get_no_prefetches() {
    let p4 = ProcessorConfig::pentium4();
    let plan = plan(Size::Tiny);
    for name in ["compress", "javac", "Search"] {
        let m = run_workload(&spec(name), &PrefetchOptions::inter_intra(), &p4, &plan);
        assert_eq!(m.prefetches_inserted, 0, "{name} must get no prefetches");
        assert_eq!(m.mem.swpf_issued, 0, "{name} must issue no prefetches");
    }
}

/// §4.1: MolDyn's molecule array fits in the L2, so prefetching into the
/// L2 (Pentium 4) cannot help while prefetching into the L1 (Athlon MP)
/// can — the target-level contrast.
#[test]
fn moldyn_target_level_contrast() {
    let spec = spec("MolDyn");
    let plan = plan(Size::Full); // needs the full working set (~100 KB)
    let p4 = run_workload(
        &spec,
        &PrefetchOptions::inter_intra(),
        &ProcessorConfig::pentium4(),
        &plan,
    );
    let p4_base = run_workload(
        &spec,
        &PrefetchOptions::off(),
        &ProcessorConfig::pentium4(),
        &plan,
    );
    let amp = run_workload(
        &spec,
        &PrefetchOptions::inter_intra(),
        &ProcessorConfig::athlon_mp(),
        &plan,
    );
    let amp_base = run_workload(
        &spec,
        &PrefetchOptions::off(),
        &ProcessorConfig::athlon_mp(),
        &plan,
    );
    let p4_gain = p4.speedup_vs(&p4_base) - 1.0;
    let amp_gain = amp.speedup_vs(&amp_base) - 1.0;
    assert!(
        amp_gain > p4_gain,
        "Athlon (prefetch to L1) must beat P4 (prefetch to L2) on MolDyn: \
         {:+.2}% vs {:+.2}%",
        amp_gain * 100.0,
        p4_gain * 100.0
    );
    assert!(p4_gain < 0.01, "P4 gains nothing: {:+.2}%", p4_gain * 100.0);
}

/// §4: the prefetching pass is "ultra-lightweight". The paper's < 3%-of-
/// JIT-time ratio depends on the size of the production JIT's other
/// passes (ours are tiny, so the *ratio* is not comparable — see
/// EXPERIMENTS.md); the absolute claims that transfer are: inspection
/// respects its step budget, and the whole pass costs at most a few
/// milliseconds per method.
#[test]
fn prefetch_pass_is_ultra_lightweight() {
    use stride_prefetch::vm::{Vm, VmConfig};
    let p4 = ProcessorConfig::pentium4();
    for name in ["db", "jess", "Euler", "compress"] {
        let s = spec(name);
        let built = (s.build)(Size::Tiny);
        let mut vm = Vm::new(
            built.program,
            VmConfig {
                heap_bytes: built.heap_bytes,
                compile_threshold: built.compile_threshold,
                ..VmConfig::default()
            },
            p4.clone(),
        );
        vm.call(built.entry, &[]).unwrap();
        vm.call(built.entry, &[]).unwrap();
        for report in vm.reports() {
            assert!(
                report.pass_nanos < 200_000_000,
                "{name}/{}: pass took {} ms",
                report.method,
                report.pass_nanos / 1_000_000
            );
            for lr in &report.loops {
                assert!(
                    lr.inspected_steps
                        <= stride_prefetch::prefetch::PrefetchOptions::default().max_inspect_steps,
                    "{name}/{}: inspection exceeded its step budget",
                    report.method
                );
            }
        }
    }
}

/// Table 3's mixed-mode spread: jack is interpreter-heavy, db and Euler
/// are compiled-code-heavy.
#[test]
fn compiled_code_fraction_spread() {
    let p4 = ProcessorConfig::pentium4();
    let plan = plan(Size::Tiny);
    let jack = run_workload(&spec("jack"), &PrefetchOptions::off(), &p4, &plan);
    let db = run_workload(&spec("db"), &PrefetchOptions::off(), &p4, &plan);
    assert!(
        jack.compiled_fraction < db.compiled_fraction,
        "jack ({:.2}) must be less compiled than db ({:.2})",
        jack.compiled_fraction,
        db.compiled_fraction
    );
    assert!(db.compiled_fraction > 0.8);
}
