//! Mark-sweep garbage collection with sliding compaction.
//!
//! The paper relies on the collector preserving allocation order: "Live
//! objects are packed by sliding compaction, which does not change their
//! internal order on the heap. Thus, the garbage collector usually preserves
//! constant strides among the live objects" (§4). This collector compacts by
//! sliding live allocations toward the heap base in address order, so the
//! relative order — and, for equal-sized garbage gaps, the strides — of
//! survivors are preserved.

use std::collections::HashMap;

use spf_ir::ElemTy;

use crate::heap::Heap;
use crate::layout::{ARRAY_BIT, ARRAY_DATA_OFFSET, TAG_MASK};
use crate::value::{Addr, NULL};

/// Statistics for one collection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CollectStats {
    /// Bytes occupied by live allocations after compaction.
    pub live_bytes: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Number of live allocations.
    pub live_objects: u64,
    /// Number of reclaimed allocations.
    pub freed_objects: u64,
    /// Live allocations whose address changed during sliding.
    pub moved_objects: u64,
}

/// Maps pre-collection addresses of live allocations to their post-sliding
/// addresses. The VM uses it to fix up its stack and static roots.
#[derive(Clone, Debug, Default)]
pub struct Forwarding {
    map: HashMap<Addr, Addr>,
}

impl Forwarding {
    /// New address of a (pre-collection) header address. Null maps to null;
    /// addresses of dead or unknown allocations map to themselves.
    pub fn forward(&self, addr: Addr) -> Addr {
        if addr == NULL {
            return NULL;
        }
        self.map.get(&addr).copied().unwrap_or(addr)
    }

    /// Number of forwarded (live) allocations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no allocation survived.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Heap {
    /// Collects garbage: marks from `roots`, slides live allocations toward
    /// the base preserving address order, updates every reference stored in
    /// the heap, and returns statistics plus the root forwarding table.
    ///
    /// Callers must rewrite their own roots through the returned
    /// [`Forwarding`].
    pub fn collect(&mut self, roots: &[Addr]) -> (CollectStats, Forwarding) {
        // --- mark ---------------------------------------------------------
        let mut stack: Vec<Addr> = roots.iter().copied().filter(|&a| a != NULL).collect();
        for &r in &stack {
            debug_assert!(self.contains(r), "root {r:#x} outside heap");
        }
        let mut marked = 0u64;
        while let Some(addr) = stack.pop() {
            if addr == NULL || !self.contains(addr) || self.is_marked(addr) {
                continue;
            }
            self.set_mark(addr, true);
            marked += 1;
            let w = self.read_u64(addr);
            if w & ARRAY_BIT != 0 {
                if crate::layout::tag_elem(w & TAG_MASK) == ElemTy::Ref {
                    let len = self.array_len(addr);
                    for i in 0..len {
                        let slot = addr + ARRAY_DATA_OFFSET + i * 8;
                        let v = self.read_u64(slot);
                        if v != NULL {
                            stack.push(v);
                        }
                    }
                }
            } else {
                let cid =
                    spf_ir::ClassId::new((w & TAG_MASK & !(crate::layout::MARK_BIT)) as usize);
                for off in self.layout.ref_map(cid).to_vec() {
                    let v = self.read_u64(addr + off);
                    if v != NULL {
                        stack.push(v);
                    }
                }
            }
        }

        // --- compute forwarding addresses (address order = sliding) --------
        let mut forwarding = Forwarding::default();
        let mut live: Vec<(Addr, u64)> = Vec::new(); // (old addr, size)
        let mut new_cursor = self.base;
        let mut freed_bytes = 0u64;
        let mut freed_objects = 0u64;
        for addr in self.walk_addrs() {
            let size = self.alloc_size_unmarked(addr);
            if self.is_marked(addr) {
                forwarding.map.insert(addr, new_cursor);
                live.push((addr, size));
                new_cursor += size;
            } else {
                freed_bytes += size;
                freed_objects += 1;
            }
        }

        // --- update references stored in live allocations ------------------
        for &(addr, _) in &live {
            let w = self.read_u64(addr) & !crate::layout::MARK_BIT;
            if w & ARRAY_BIT != 0 {
                if crate::layout::tag_elem(w & TAG_MASK) == ElemTy::Ref {
                    let len = self.array_len(addr);
                    for i in 0..len {
                        let slot = addr + ARRAY_DATA_OFFSET + i * 8;
                        let v = self.read_u64(slot);
                        self.write_u64(slot, forwarding.forward(v));
                    }
                }
            } else {
                let cid = spf_ir::ClassId::new((w & TAG_MASK) as usize);
                for off in self.layout.ref_map(cid).to_vec() {
                    let v = self.read_u64(addr + off);
                    self.write_u64(addr + off, forwarding.forward(v));
                }
            }
        }

        // --- slide (in increasing address order; overlaps are safe because
        // destinations never exceed sources) and clear marks ---------------
        let mut moved_objects = 0u64;
        for &(old, size) in &live {
            self.set_mark(old, false);
            let new = forwarding.forward(old);
            if new != old {
                moved_objects += 1;
                let src = (old - self.base) as usize;
                let dst = (new - self.base) as usize;
                self.data.copy_within(src..src + size as usize, dst);
            }
        }
        self.top = (new_cursor - self.base) as usize;
        if moved_objects > 0 {
            self.gc_epoch += 1;
        }

        let stats = CollectStats {
            live_bytes: self.top as u64,
            freed_bytes,
            live_objects: marked,
            freed_objects,
            moved_objects,
        };
        (stats, forwarding)
    }

    /// Like [`Heap::walk`] but collecting into a `Vec` first, because the
    /// collector mutates headers while iterating.
    fn walk_addrs(&self) -> Vec<Addr> {
        self.walk_unmarked().collect()
    }

    /// Header-size computation that masks the mark bit.
    fn alloc_size_unmarked(&self, addr: Addr) -> u64 {
        let w = self.read_u64(addr) & !crate::layout::MARK_BIT;
        if w & ARRAY_BIT != 0 {
            crate::layout::Layout::array_size(
                crate::layout::tag_elem(w & TAG_MASK),
                self.array_len(addr),
            )
            .next_multiple_of(8)
        } else {
            self.layout
                .class_size(spf_ir::ClassId::new((w & TAG_MASK) as usize))
                .next_multiple_of(8)
        }
    }

    fn walk_unmarked(&self) -> impl Iterator<Item = Addr> + '_ {
        let mut cursor = self.base;
        let end = self.base + self.top as u64;
        std::iter::from_fn(move || {
            if cursor >= end {
                return None;
            }
            let addr = cursor;
            cursor += self.alloc_size_unmarked(addr);
            Some(addr)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::value::Value;
    use spf_ir::Program;

    fn setup() -> (Heap, spf_ir::ClassId, u64) {
        let mut p = Program::new();
        let (c, fs) = p.add_class("Node", &[("next", ElemTy::Ref), ("v", ElemTy::I32)]);
        let layout = Layout::compute(&p);
        let off_next = layout.field_offset(fs[0]);
        (Heap::new(layout, 1 << 16), c, off_next)
    }

    #[test]
    fn unreachable_objects_are_freed() {
        let (mut h, c, _) = setup();
        let a = h.alloc_object(c).unwrap();
        let _dead = h.alloc_object(c).unwrap();
        let (stats, fwd) = h.collect(&[a]);
        assert_eq!(stats.live_objects, 1);
        assert_eq!(stats.freed_objects, 1);
        assert_eq!(fwd.forward(a), a, "first object does not move");
        assert_eq!(h.used(), h.layout_tables().class_size(c));
    }

    #[test]
    fn sliding_preserves_order_and_updates_refs() {
        let (mut h, c, off_next) = setup();
        // a -> dead -> b -> c, with a.next = b, b.next = c.
        let a = h.alloc_object(c).unwrap();
        let dead = h.alloc_object(c).unwrap();
        let b = h.alloc_object(c).unwrap();
        let c2 = h.alloc_object(c).unwrap();
        h.write(a + off_next, ElemTy::Ref, Value::Ref(b)).unwrap();
        h.write(b + off_next, ElemTy::Ref, Value::Ref(c2)).unwrap();
        let _ = dead;
        let (stats, fwd) = h.collect(&[a]);
        assert_eq!(stats.live_objects, 3);
        let (na, nb, nc) = (fwd.forward(a), fwd.forward(b), fwd.forward(c2));
        assert!(na < nb && nb < nc, "address order preserved");
        // b and c2 slid down by exactly the dead object's size.
        let size = h.layout_tables().class_size(c);
        assert_eq!(nb, b - size);
        assert_eq!(nc, c2 - size);
        // Stored references were rewritten.
        assert_eq!(h.read(na + off_next, ElemTy::Ref).unwrap(), Value::Ref(nb));
        assert_eq!(h.read(nb + off_next, ElemTy::Ref).unwrap(), Value::Ref(nc));
    }

    #[test]
    fn strides_preserved_when_gaps_are_uniform() {
        // Allocate pairs (object, dead padding); after GC the live objects
        // keep a constant stride — the paper's §4 observation.
        let (mut h, c, _) = setup();
        let mut live = Vec::new();
        for _ in 0..8 {
            live.push(h.alloc_object(c).unwrap());
            let _pad = h.alloc_object(c).unwrap();
        }
        let (_, fwd) = h.collect(&live);
        let news: Vec<Addr> = live.iter().map(|&a| fwd.forward(a)).collect();
        let stride = news[1] - news[0];
        for w in news.windows(2) {
            assert_eq!(w[1] - w[0], stride, "constant stride after compaction");
        }
        assert_eq!(stride, h.layout_tables().class_size(c));
    }

    #[test]
    fn ref_arrays_are_traced_and_updated() {
        let (mut h, c, _) = setup();
        let _dead = h.alloc_object(c).unwrap();
        let arr = h.alloc_array(ElemTy::Ref, 2).unwrap();
        let o = h.alloc_object(c).unwrap();
        let slot0 = arr + ARRAY_DATA_OFFSET;
        h.write(slot0, ElemTy::Ref, Value::Ref(o)).unwrap();
        let (stats, fwd) = h.collect(&[arr]);
        assert_eq!(stats.live_objects, 2);
        let narr = fwd.forward(arr);
        assert_eq!(
            h.read(narr + ARRAY_DATA_OFFSET, ElemTy::Ref).unwrap(),
            Value::Ref(fwd.forward(o))
        );
        assert_eq!(h.array_len(narr), 2);
    }

    #[test]
    fn cycles_are_collected_once_unreachable() {
        let (mut h, c, off_next) = setup();
        let a = h.alloc_object(c).unwrap();
        let b = h.alloc_object(c).unwrap();
        h.write(a + off_next, ElemTy::Ref, Value::Ref(b)).unwrap();
        h.write(b + off_next, ElemTy::Ref, Value::Ref(a)).unwrap();
        let (stats, _) = h.collect(&[]);
        assert_eq!(stats.live_objects, 0);
        assert_eq!(stats.freed_objects, 2);
        assert_eq!(h.used(), 0);
    }

    #[test]
    fn epoch_bumps_only_when_objects_move() {
        let (mut h, c, _) = setup();
        assert_eq!(h.gc_epoch(), 0);
        // Only live objects, nothing slides: epoch unchanged.
        let a = h.alloc_object(c).unwrap();
        let b = h.alloc_object(c).unwrap();
        h.collect(&[a, b]);
        assert_eq!(h.gc_epoch(), 0, "no movement, no staleness");
        // A dead gap before a survivor forces sliding: epoch bumps.
        let _dead = h.alloc_object(c).unwrap();
        let keep = h.alloc_object(c).unwrap();
        let (stats, _) = h.collect(&[a, b, keep]);
        assert!(stats.moved_objects > 0);
        assert_eq!(h.gc_epoch(), 1, "compaction invalidates strides");
    }

    #[test]
    fn allocation_after_gc_reuses_space() {
        let (mut h, c, _) = setup();
        let keep = h.alloc_object(c).unwrap();
        for _ in 0..10 {
            h.alloc_object(c).unwrap();
        }
        let used_before = h.used();
        let (_, fwd) = h.collect(&[keep]);
        assert!(h.used() < used_before);
        let fresh = h.alloc_object(c).unwrap();
        assert_eq!(fresh, fwd.forward(keep) + h.layout_tables().class_size(c));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::layout::Layout;
    use crate::value::Value;
    use spf_ir::{ElemTy, Program};

    // Builds a heap of `n` nodes (`Node { next: Ref, v: i32 }`) whose
    // `next` edges are given by `edges[i] (mod n)` (or null), then collects
    // with `roots` and checks that every node reachable from the roots
    // survives with its value and topology intact, in preserved address
    // order.
    #[test]
    fn gc_preserves_reachable_graphs() {
        spf_testkit::cases(64, "gc preserves reachable graphs", |rng| {
            let n = rng.usize_in(1, 39);
            let edges = rng.vec(1, 39, |r| r.chance(1, 2).then(|| r.index(64)));
            let root_picks = rng.vec(0, 7, |r| r.index(64));
            let mut p = Program::new();
            let (cls, fs) = p.add_class("Node", &[("next", ElemTy::Ref), ("v", ElemTy::I32)]);
            let layout = Layout::compute(&p);
            let off_next = layout.field_offset(fs[0]);
            let off_v = layout.field_offset(fs[1]);
            let mut heap = Heap::new(layout, 1 << 16);
            let nodes: Vec<Addr> = (0..n).map(|_| heap.alloc_object(cls).unwrap()).collect();
            for (i, &a) in nodes.iter().enumerate() {
                heap.write(a + off_v, ElemTy::I32, Value::I32(i as i32))
                    .unwrap();
                let next = edges.get(i).copied().flatten().map(|e| nodes[e % n]);
                heap.write(a + off_next, ElemTy::Ref, Value::Ref(next.unwrap_or(NULL)))
                    .unwrap();
            }
            let roots: Vec<Addr> = root_picks.iter().map(|&r| nodes[r % n]).collect();

            // Reference reachability + per-node (value, next-id) snapshot.
            let idx_of = |a: Addr| nodes.iter().position(|&x| x == a);
            let mut reach = vec![false; n];
            let mut stack: Vec<usize> = roots.iter().filter_map(|&r| idx_of(r)).collect();
            while let Some(i) = stack.pop() {
                if reach[i] {
                    continue;
                }
                reach[i] = true;
                if let Some(e) = edges.get(i).copied().flatten() {
                    stack.push(e % n);
                }
            }

            let (stats, fwd) = heap.collect(&roots);
            assert_eq!(
                stats.live_objects as usize,
                reach.iter().filter(|&&r| r).count()
            );

            // Surviving nodes keep their values and edges; order preserved.
            let mut last_new = 0;
            for (i, &old) in nodes.iter().enumerate() {
                if !reach[i] {
                    continue;
                }
                let new = fwd.forward(old);
                assert!(new >= last_new, "sliding preserves order");
                last_new = new;
                assert_eq!(
                    heap.read(new + off_v, ElemTy::I32).unwrap(),
                    Value::I32(i as i32)
                );
                let next = heap
                    .read(new + off_next, ElemTy::Ref)
                    .unwrap()
                    .as_ref_addr();
                match edges.get(i).copied().flatten() {
                    Some(e) => assert_eq!(next, fwd.forward(nodes[e % n])),
                    None => assert_eq!(next, NULL),
                }
            }
        });
    }
}
