//! Object and array layout: header format, field offsets, instance sizes.
//!
//! Layouts are computed once per [`spf_ir::Program`] and shared by the VM,
//! the garbage collector, and the prefetch optimizer (which needs field
//! offsets to build the `F[Lx,Ly]` address-mapping functions of §3.3).

use spf_ir::{ClassId, ElemTy, FieldId, Program};

/// Size of an object/array header in bytes.
///
/// * word 0 (`u64`): tag — class id for objects, element-type tag with the
///   high bit set for arrays; bit 62 is the GC mark bit.
/// * word 1 (`u64`): array length (objects: scratch, used by the collector).
pub const OBJECT_HEADER_SIZE: u64 = 16;

/// Byte offset of the first array element.
pub const ARRAY_DATA_OFFSET: u64 = 16;

/// Byte offset of the array-length word (loaded by `arraylength`).
pub const ARRAY_LENGTH_OFFSET: u64 = 8;

pub(crate) const ARRAY_BIT: u64 = 1 << 63;
pub(crate) const MARK_BIT: u64 = 1 << 62;
pub(crate) const TAG_MASK: u64 = (1 << 32) - 1;

/// Encodes an element type as an array tag.
pub(crate) fn elem_tag(e: ElemTy) -> u64 {
    match e {
        ElemTy::I8 => 0,
        ElemTy::I32 => 1,
        ElemTy::I64 => 2,
        ElemTy::F64 => 3,
        ElemTy::Ref => 4,
    }
}

/// Decodes an array tag.
///
/// # Panics
///
/// Panics on a corrupt tag.
pub(crate) fn tag_elem(tag: u64) -> ElemTy {
    match tag {
        0 => ElemTy::I8,
        1 => ElemTy::I32,
        2 => ElemTy::I64,
        3 => ElemTy::F64,
        4 => ElemTy::Ref,
        other => panic!("corrupt array tag {other}"),
    }
}

/// Precomputed layout tables for every class of a program.
#[derive(Clone, Debug)]
pub struct Layout {
    field_offsets: Vec<u64>,
    class_sizes: Vec<u64>,
    /// Per class: byte offsets of reference-typed fields (the GC's ref map).
    ref_maps: Vec<Vec<u64>>,
}

impl Layout {
    /// Computes layouts for all classes of `program`.
    ///
    /// Fields are laid out in declaration order, each aligned to its size;
    /// instance sizes are rounded up to 8 bytes. Declaration order is layout
    /// order, so a constructor that stores into fields in declaration order
    /// touches monotonically increasing addresses.
    pub fn compute(program: &Program) -> Self {
        let mut field_offsets = vec![0u64; program.field_count()];
        let mut class_sizes = Vec::with_capacity(program.class_count());
        let mut ref_maps = Vec::with_capacity(program.class_count());
        for cid in program.class_ids() {
            let mut off = OBJECT_HEADER_SIZE;
            let mut refs = Vec::new();
            for &fid in &program.class(cid).fields {
                let ty = program.field(fid).ty;
                let align = ty.size();
                off = off.next_multiple_of(align);
                field_offsets[fid.index()] = off;
                if ty == ElemTy::Ref {
                    refs.push(off);
                }
                off += ty.size();
            }
            class_sizes.push(off.next_multiple_of(8));
            ref_maps.push(refs);
        }
        Layout {
            field_offsets,
            class_sizes,
            ref_maps,
        }
    }

    /// Byte offset of field `fid` within its object.
    pub fn field_offset(&self, fid: FieldId) -> u64 {
        self.field_offsets[fid.index()]
    }

    /// Instance size in bytes (header included) of class `cid`.
    pub fn class_size(&self, cid: ClassId) -> u64 {
        self.class_sizes[cid.index()]
    }

    /// Byte offsets of the reference fields of class `cid`.
    pub fn ref_map(&self, cid: ClassId) -> &[u64] {
        &self.ref_maps[cid.index()]
    }

    /// Total size in bytes of an array (header included, padded to 8).
    pub fn array_size(elem: ElemTy, len: u64) -> u64 {
        (ARRAY_DATA_OFFSET + elem.size() * len).next_multiple_of(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_offsets_alignment_and_size() {
        let mut p = Program::new();
        let (c, fs) = p.add_class(
            "Mixed",
            &[
                ("b", ElemTy::I8),
                ("i", ElemTy::I32),
                ("r", ElemTy::Ref),
                ("c", ElemTy::I8),
            ],
        );
        let l = Layout::compute(&p);
        assert_eq!(l.field_offset(fs[0]), 16);
        assert_eq!(l.field_offset(fs[1]), 20); // aligned to 4
        assert_eq!(l.field_offset(fs[2]), 24); // aligned to 8
        assert_eq!(l.field_offset(fs[3]), 32);
        assert_eq!(l.class_size(c), 40); // 33 rounded to 8
        assert_eq!(l.ref_map(c), &[24]);
    }

    #[test]
    fn array_sizes() {
        assert_eq!(Layout::array_size(ElemTy::I8, 3), 24); // 16 + 3 -> 24
        assert_eq!(Layout::array_size(ElemTy::Ref, 5), 56); // 16 + 40
        assert_eq!(Layout::array_size(ElemTy::I32, 0), 16);
    }

    #[test]
    fn empty_class() {
        let mut p = Program::new();
        let (c, _) = p.add_class("Empty", &[]);
        let l = Layout::compute(&p);
        assert_eq!(l.class_size(c), OBJECT_HEADER_SIZE);
        assert!(l.ref_map(c).is_empty());
    }

    #[test]
    fn tags_round_trip() {
        for e in [
            ElemTy::I8,
            ElemTy::I32,
            ElemTy::I64,
            ElemTy::F64,
            ElemTy::Ref,
        ] {
            assert_eq!(tag_elem(elem_tag(e)), e);
        }
    }
}
