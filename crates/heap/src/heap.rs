//! The simulated heap: bump allocation and typed memory access.

use spf_ir::{ClassId, ElemTy};

use crate::layout::{
    elem_tag, tag_elem, Layout, ARRAY_BIT, ARRAY_LENGTH_OFFSET, MARK_BIT, TAG_MASK,
};
use crate::value::{Addr, Value, NULL};

/// Default base address of the heap (addresses below it are invalid, which
/// keeps null-pointer arithmetic from aliasing real objects).
pub const DEFAULT_HEAP_BASE: Addr = 0x10_0000;

/// Base address of the static-variable area (distinct from the heap; the VM
/// stores static values itself but reports accesses at these addresses to
/// the memory simulator).
pub const STATICS_BASE: Addr = 0x1000;

/// Base address used for the *private heap* of object inspection: objects
/// the partial interpreter allocates live here, far from real heap
/// addresses, so they can never be confused with program data.
pub const PRIVATE_HEAP_BASE: Addr = 1 << 44;

/// The simulated address of static slot `sid`.
pub fn static_addr(sid: spf_ir::StaticId) -> Addr {
    STATICS_BASE + 8 * sid.index() as Addr
}

/// Errors reported by heap operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapError {
    /// Allocation does not fit even after a collection.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
    },
    /// A typed access touched an address outside the allocated heap.
    BadAccess {
        /// The faulting address.
        addr: Addr,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            HeapError::BadAccess { addr } => write!(f, "bad heap access at {addr:#x}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Read-only view of a heap, as needed by object inspection and guarded
/// loads: reads either succeed or report invalidity — they never fault.
pub trait HeapRead {
    /// Reads a typed value, or `None` when the access is invalid.
    fn try_read(&self, addr: Addr, ty: ElemTy) -> Option<Value>;

    /// Whether `[addr, addr+size)` lies within allocated memory.
    fn is_valid_range(&self, addr: Addr, size: u64) -> bool;

    /// The layout tables of the program this heap runs.
    fn layout(&self) -> &Layout;
}

/// The simulated heap.
///
/// Objects and arrays are allocated with a bump pointer, so back-to-back
/// allocations are adjacent in the address space — the property stride
/// prefetching exploits.
#[derive(Clone, Debug)]
pub struct Heap {
    pub(crate) base: Addr,
    pub(crate) data: Vec<u8>,
    pub(crate) top: usize,
    pub(crate) layout: Layout,
    pub(crate) allocated_bytes_total: u64,
    pub(crate) allocation_count: u64,
    pub(crate) gc_epoch: u64,
}

/// Splits a workload's configured heap budget across `shards` tenant VMs:
/// `full / shards`, clamped to at least `floor` (a tenant must still fit
/// its live set) and at most `full`, rounded up to 8-byte granularity.
/// Backing stores are allocated eagerly, so a serving fleet of hundreds of
/// tenants *must* shard — and the small shards are the point: they produce
/// the per-tenant GC churn (sliding compactions bump `gc_epoch`) that
/// exercises adaptive reprofiling under serving load.
pub fn shard_bytes(full: usize, shards: usize, floor: usize) -> usize {
    let per = full / shards.max(1);
    per.clamp(floor.min(full), full).next_multiple_of(8)
}

impl Heap {
    /// Creates a heap of `capacity` bytes at the default base address.
    pub fn new(layout: Layout, capacity: usize) -> Self {
        Self::with_base(layout, capacity, DEFAULT_HEAP_BASE)
    }

    /// Creates a heap at a caller-chosen base address (used for the private
    /// heap of object inspection).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 8-byte aligned or is null.
    pub fn with_base(layout: Layout, capacity: usize, base: Addr) -> Self {
        assert!(
            base != NULL && base.is_multiple_of(8),
            "heap base must be aligned and non-null"
        );
        Heap {
            base,
            data: vec![0; capacity],
            top: 0,
            layout,
            allocated_bytes_total: 0,
            allocation_count: 0,
            gc_epoch: 0,
        }
    }

    /// The heap's base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Bytes currently allocated (bump-pointer offset).
    pub fn used(&self) -> u64 {
        self.top as u64
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Running total of bytes ever allocated (monotonic; GC does not reduce
    /// it).
    pub fn allocated_bytes_total(&self) -> u64 {
        self.allocated_bytes_total
    }

    /// Number of allocations performed.
    pub fn allocation_count(&self) -> u64 {
        self.allocation_count
    }

    /// The GC epoch: incremented by every collection that moves at least
    /// one live allocation. Strides learned by object inspection are only
    /// trustworthy within a single epoch — a bumped epoch means compaction
    /// may have changed inter-object distances, so compiled prefetch sites
    /// stamped with an older epoch are stale.
    pub fn gc_epoch(&self) -> u64 {
        self.gc_epoch
    }

    /// Bumps the GC epoch without running a collection, modeling an
    /// external compaction that moved objects behind the VM's back (the
    /// serving chaos harness injects GC storms this way). Addresses are
    /// untouched — only the staleness stamp advances, so every compiled
    /// method guarded against an older epoch re-inspects on its next
    /// invocation.
    pub fn force_move_epoch(&mut self) {
        self.gc_epoch += 1;
    }

    /// The layout tables.
    pub fn layout_tables(&self) -> &Layout {
        &self.layout
    }

    fn bump(&mut self, size: u64) -> Option<Addr> {
        let size = size.next_multiple_of(8);
        if self.top as u64 + size > self.data.len() as u64 {
            return None;
        }
        let addr = self.base + self.top as u64;
        // Zero the storage: it may contain stale bytes from before a GC.
        self.data[self.top..self.top + size as usize].fill(0);
        self.top += size as usize;
        self.allocated_bytes_total += size;
        self.allocation_count += 1;
        Some(addr)
    }

    /// Allocates an instance of `class`; `None` means a GC is needed.
    pub fn alloc_object(&mut self, class: ClassId) -> Option<Addr> {
        let size = self.layout.class_size(class);
        let addr = self.bump(size)?;
        self.write_u64(addr, class.index() as u64);
        Some(addr)
    }

    /// Allocates an array; `None` means a GC is needed.
    pub fn alloc_array(&mut self, elem: ElemTy, len: u64) -> Option<Addr> {
        let size = Layout::array_size(elem, len);
        let addr = self.bump(size)?;
        self.write_u64(addr, ARRAY_BIT | elem_tag(elem));
        self.write_u64(addr + ARRAY_LENGTH_OFFSET, len);
        Some(addr)
    }

    fn offset_of(&self, addr: Addr, size: u64) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let off = addr - self.base;
        if off + size <= self.top as u64 {
            Some(off as usize)
        } else {
            None
        }
    }

    pub(crate) fn read_u64(&self, addr: Addr) -> u64 {
        let off = self
            .offset_of(addr, 8)
            .unwrap_or_else(|| panic!("bad heap read at {addr:#x}"));
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    pub(crate) fn write_u64(&mut self, addr: Addr, v: u64) {
        let off = self
            .offset_of(addr, 8)
            .unwrap_or_else(|| panic!("bad heap write at {addr:#x}"));
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a typed value.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadAccess`] outside allocated memory.
    pub fn read(&self, addr: Addr, ty: ElemTy) -> Result<Value, HeapError> {
        let off = self
            .offset_of(addr, ty.size())
            .ok_or(HeapError::BadAccess { addr })?;
        Ok(match ty {
            ElemTy::I8 => Value::I32(self.data[off] as i8 as i32),
            ElemTy::I32 => Value::I32(i32::from_le_bytes(
                self.data[off..off + 4].try_into().unwrap(),
            )),
            ElemTy::I64 => Value::I64(i64::from_le_bytes(
                self.data[off..off + 8].try_into().unwrap(),
            )),
            ElemTy::F64 => Value::F64(f64::from_le_bytes(
                self.data[off..off + 8].try_into().unwrap(),
            )),
            ElemTy::Ref => Value::Ref(u64::from_le_bytes(
                self.data[off..off + 8].try_into().unwrap(),
            )),
        })
    }

    /// Writes a typed value.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadAccess`] outside allocated memory.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not match `ty` (verified programs never do
    /// this).
    pub fn write(&mut self, addr: Addr, ty: ElemTy, value: Value) -> Result<(), HeapError> {
        let off = self
            .offset_of(addr, ty.size())
            .ok_or(HeapError::BadAccess { addr })?;
        match (ty, value) {
            (ElemTy::I8, Value::I32(v)) => self.data[off] = v as u8,
            (ElemTy::I32, Value::I32(v)) => {
                self.data[off..off + 4].copy_from_slice(&v.to_le_bytes())
            }
            (ElemTy::I64, Value::I64(v)) => {
                self.data[off..off + 8].copy_from_slice(&v.to_le_bytes())
            }
            (ElemTy::F64, Value::F64(v)) => {
                self.data[off..off + 8].copy_from_slice(&v.to_le_bytes())
            }
            (ElemTy::Ref, Value::Ref(v)) => {
                self.data[off..off + 8].copy_from_slice(&v.to_le_bytes())
            }
            (ty, v) => panic!("type mismatch writing {v:?} as {ty}"),
        }
        Ok(())
    }

    /// Whether `addr` is the address of a live allocation's header (i.e.
    /// within the allocated range; headers are not distinguished from
    /// interiors here).
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.top as u64
    }

    /// Whether the allocation at `addr` (a header address) is an array.
    pub fn is_array(&self, addr: Addr) -> bool {
        self.read_u64(addr) & ARRAY_BIT != 0
    }

    /// Class of the object whose header is at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is an array header.
    pub fn class_of(&self, addr: Addr) -> ClassId {
        let w = self.read_u64(addr);
        assert!(w & ARRAY_BIT == 0, "class_of on array at {addr:#x}");
        ClassId::new((w & TAG_MASK) as usize)
    }

    /// Element type of the array whose header is at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not an array header.
    pub fn array_elem(&self, addr: Addr) -> ElemTy {
        let w = self.read_u64(addr);
        assert!(w & ARRAY_BIT != 0, "array_elem on object at {addr:#x}");
        tag_elem(w & TAG_MASK)
    }

    /// Length of the array whose header is at `addr`.
    pub fn array_len(&self, addr: Addr) -> u64 {
        self.read_u64(addr + ARRAY_LENGTH_OFFSET)
    }

    /// Size in bytes of the allocation whose header is at `addr`.
    pub fn alloc_size(&self, addr: Addr) -> u64 {
        let w = self.read_u64(addr);
        if w & ARRAY_BIT != 0 {
            Layout::array_size(tag_elem(w & TAG_MASK), self.array_len(addr))
        } else {
            self.layout
                .class_size(ClassId::new((w & (TAG_MASK)) as usize))
        }
    }

    pub(crate) fn is_marked(&self, addr: Addr) -> bool {
        self.read_u64(addr) & MARK_BIT != 0
    }

    pub(crate) fn set_mark(&mut self, addr: Addr, on: bool) {
        let w = self.read_u64(addr);
        self.write_u64(addr, if on { w | MARK_BIT } else { w & !MARK_BIT });
    }

    /// Iterates over the header addresses of all allocations in address
    /// order.
    pub fn walk(&self) -> HeapWalk<'_> {
        HeapWalk {
            heap: self,
            cursor: self.base,
        }
    }
}

/// Iterator over allocation header addresses; see [`Heap::walk`].
#[derive(Debug)]
pub struct HeapWalk<'a> {
    heap: &'a Heap,
    cursor: Addr,
}

impl Iterator for HeapWalk<'_> {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        if self.cursor >= self.heap.base + self.heap.top as u64 {
            return None;
        }
        let addr = self.cursor;
        self.cursor += self.heap.alloc_size(addr).next_multiple_of(8);
        Some(addr)
    }
}

impl HeapRead for Heap {
    fn try_read(&self, addr: Addr, ty: ElemTy) -> Option<Value> {
        if addr == NULL {
            return None;
        }
        self.read(addr, ty).ok()
    }

    fn is_valid_range(&self, addr: Addr, size: u64) -> bool {
        self.offset_of(addr, size).is_some()
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::Program;

    fn token_program() -> (Program, ClassId, Vec<spf_ir::FieldId>) {
        let mut p = Program::new();
        let (c, fs) = p.add_class("Token", &[("size", ElemTy::I32), ("facts", ElemTy::Ref)]);
        (p, c, fs)
    }

    #[test]
    fn bump_allocation_is_contiguous() {
        let (p, c, _) = token_program();
        let mut h = Heap::new(Layout::compute(&p), 1 << 16);
        let a = h.alloc_object(c).unwrap();
        let b = h.alloc_object(c).unwrap();
        let size = h.layout_tables().class_size(c);
        assert_eq!(b - a, size, "objects allocated back-to-back");
        assert_eq!(h.allocation_count(), 2);
    }

    #[test]
    fn field_read_write() {
        let (p, c, fs) = token_program();
        let layout = Layout::compute(&p);
        let off = layout.field_offset(fs[0]);
        let mut h = Heap::new(layout, 1 << 16);
        let a = h.alloc_object(c).unwrap();
        h.write(a + off, ElemTy::I32, Value::I32(42)).unwrap();
        assert_eq!(h.read(a + off, ElemTy::I32).unwrap(), Value::I32(42));
    }

    #[test]
    fn arrays() {
        let (p, _, _) = token_program();
        let mut h = Heap::new(Layout::compute(&p), 1 << 16);
        let a = h.alloc_array(ElemTy::I32, 10).unwrap();
        assert!(h.is_array(a));
        assert_eq!(h.array_len(a), 10);
        assert_eq!(h.array_elem(a), ElemTy::I32);
        let e3 = a + crate::layout::ARRAY_DATA_OFFSET + 3 * 4;
        h.write(e3, ElemTy::I32, Value::I32(-7)).unwrap();
        assert_eq!(h.read(e3, ElemTy::I32).unwrap(), Value::I32(-7));
    }

    #[test]
    fn i8_sign_extension() {
        let (p, _, _) = token_program();
        let mut h = Heap::new(Layout::compute(&p), 1 << 16);
        let a = h.alloc_array(ElemTy::I8, 4).unwrap();
        let e0 = a + crate::layout::ARRAY_DATA_OFFSET;
        h.write(e0, ElemTy::I8, Value::I32(-1)).unwrap();
        assert_eq!(h.read(e0, ElemTy::I8).unwrap(), Value::I32(-1));
    }

    #[test]
    fn out_of_memory_returns_none() {
        let (p, c, _) = token_program();
        let mut h = Heap::new(Layout::compute(&p), 64);
        assert!(h.alloc_object(c).is_some()); // 24 bytes
        assert!(h.alloc_object(c).is_some());
        assert!(h.alloc_object(c).is_none());
    }

    #[test]
    fn bad_access_reported() {
        let (p, _, _) = token_program();
        let h = Heap::new(Layout::compute(&p), 64);
        assert!(matches!(
            h.read(12, ElemTy::I32),
            Err(HeapError::BadAccess { .. })
        ));
        assert_eq!(h.try_read(12, ElemTy::I32), None);
        assert_eq!(h.try_read(NULL, ElemTy::Ref), None);
    }

    #[test]
    fn shard_bytes_divides_clamps_and_aligns() {
        // 128 MB across 50 tenants, 2 MB floor: plain division (aligned).
        assert_eq!(
            shard_bytes(128 << 20, 50, 2 << 20),
            ((128 << 20) / 50usize).next_multiple_of(8)
        );
        // Floor kicks in when the division goes below the live set.
        assert_eq!(shard_bytes(8 << 20, 100, 2 << 20), 2 << 20);
        // Never exceeds the full budget, even with a silly floor.
        assert_eq!(shard_bytes(1 << 20, 1, 64 << 20), 1 << 20);
        // Zero shards is treated as one; result stays 8-byte aligned.
        assert_eq!(shard_bytes(4096, 0, 0), 4096);
        assert_eq!(shard_bytes(1000, 3, 0) % 8, 0);
    }

    #[test]
    fn walk_visits_all_allocations() {
        let (p, c, _) = token_program();
        let mut h = Heap::new(Layout::compute(&p), 1 << 16);
        let a = h.alloc_object(c).unwrap();
        let b = h.alloc_array(ElemTy::Ref, 3).unwrap();
        let c2 = h.alloc_object(c).unwrap();
        assert_eq!(h.walk().collect::<Vec<_>>(), vec![a, b, c2]);
    }
}
