//! Runtime values and simulated addresses.

/// A simulated 64-bit address. `0` is the null reference ([`NULL`]).
pub type Addr = u64;

/// The null reference.
pub const NULL: Addr = 0;

/// A runtime value held in a virtual register, field, or array element.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Reference ([`NULL`] for null).
    Ref(Addr),
}

impl Value {
    /// The register type of this value.
    pub fn ty(self) -> spf_ir::Ty {
        match self {
            Value::I32(_) => spf_ir::Ty::I32,
            Value::I64(_) => spf_ir::Ty::I64,
            Value::F64(_) => spf_ir::Ty::F64,
            Value::Ref(_) => spf_ir::Ty::Ref,
        }
    }

    /// The zero/default value of a register type.
    pub fn zero_of(ty: spf_ir::Ty) -> Value {
        match ty {
            spf_ir::Ty::I32 => Value::I32(0),
            spf_ir::Ty::I64 => Value::I64(0),
            spf_ir::Ty::F64 => Value::F64(0.0),
            spf_ir::Ty::Ref => Value::Ref(NULL),
        }
    }

    /// Extracts an `i32`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `I32` (a verifier-rejected program).
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("expected i32, got {other:?}"),
        }
    }

    /// Extracts an `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `I64`.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// Extracts an `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `F64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Extracts a reference.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Ref`.
    pub fn as_ref_addr(self) -> Addr {
        match self {
            Value::Ref(a) => a,
            other => panic!("expected ref, got {other:?}"),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}L"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ref(NULL) => f.write_str("null"),
            Value::Ref(a) => write!(f, "@{a:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(spf_ir::Ty::I32), Value::I32(0));
        assert_eq!(Value::zero_of(spf_ir::Ty::Ref), Value::Ref(NULL));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I32(7).as_i32(), 7);
        assert_eq!(Value::Ref(16).as_ref_addr(), 16);
        assert_eq!(Value::F64(1.25).as_f64(), 1.25);
        assert_eq!(Value::I64(-3).as_i64(), -3);
    }

    #[test]
    #[should_panic(expected = "expected i32")]
    fn wrong_accessor_panics() {
        Value::F64(0.0).as_i32();
    }

    #[test]
    fn display() {
        assert_eq!(Value::Ref(NULL).to_string(), "null");
        assert_eq!(Value::Ref(0x20).to_string(), "@0x20");
        assert_eq!(Value::I64(5).to_string(), "5L");
    }
}
