//! Object model, simulated heap, and order-preserving compacting GC.
//!
//! The paper's stride patterns come from *allocation order*: "constructors
//! in an object-oriented language tend to allocate a bunch of related
//! objects" (§1), and the JVM's garbage collector uses "sliding compaction,
//! which does not change their internal order on the heap. Thus, the garbage
//! collector usually preserves constant strides among the live objects"
//! (§4). This crate reproduces both properties:
//!
//! * [`Heap`] allocates objects with a bump pointer, so consecutive
//!   allocations are adjacent;
//! * [`Heap::collect`] is a mark-sweep collector with *sliding compaction*
//!   that preserves address order of surviving objects.
//!
//! Addresses are simulated 64-bit addresses ([`Addr`]); they index into the
//! heap's backing store and are what the memory-system simulator sees.
//!
//! # Example
//!
//! ```
//! use spf_heap::{Heap, Layout, Value};
//! use spf_ir::{ElemTy, Program};
//!
//! let mut program = Program::new();
//! let (node, fields) = program.add_class("Node", &[("v", ElemTy::I32)]);
//! let layout = Layout::compute(&program);
//! let off = layout.field_offset(fields[0]);
//! let mut heap = Heap::new(layout, 4096);
//!
//! // Back-to-back allocations are adjacent: the stride the paper exploits.
//! let a = heap.alloc_object(node).unwrap();
//! let b = heap.alloc_object(node).unwrap();
//! assert_eq!(b - a, heap.layout_tables().class_size(node));
//!
//! heap.write(a + off, ElemTy::I32, Value::I32(7)).unwrap();
//! assert_eq!(heap.read(a + off, ElemTy::I32).unwrap(), Value::I32(7));
//!
//! // Collect with `a` as the only root: `b` is reclaimed, `a` survives.
//! let (stats, fwd) = heap.collect(&[a]);
//! assert_eq!(stats.live_objects, 1);
//! assert_eq!(fwd.forward(a), a);
//! ```

pub mod gc;
pub mod heap;
pub mod layout;
pub mod value;

pub use gc::{CollectStats, Forwarding};
pub use heap::{
    shard_bytes, static_addr, Heap, HeapError, HeapRead, DEFAULT_HEAP_BASE, PRIVATE_HEAP_BASE,
    STATICS_BASE,
};
pub use layout::{Layout, ARRAY_DATA_OFFSET, OBJECT_HEADER_SIZE};
pub use value::{Addr, Value, NULL};
