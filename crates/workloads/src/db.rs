//! `_209_db` miniature: a memory-resident database whose time is dominated
//! by a shell-sort over large records.
//!
//! The paper (§4.1): db "spends more than 85% of its execution time in a
//! shell sort loop that reorders a number of large records and frequently
//! causes cache misses and DTLB misses. Each record contains a number of
//! Vector and String objects, and they only have intra-iteration constant
//! strides between the containing records in the sorting loop", yielding
//! the headline 18.9% (P4) / 25.1% (Athlon) INTER+INTRA speedups while
//! INTER alone is ineffective.
//!
//! The reproduction:
//!
//! * each `Record` is allocated back-to-back with its key (a byte array)
//!   and payload (an int array) — constructor co-allocation gives the
//!   *intra-iteration* strides;
//! * the reference array is shuffled before sorting, so record addresses
//!   have no *inter-iteration* stride — INTER finds nothing it can use
//!   (the `v[i]` walk has an 8-byte stride, below half a cache line);
//! * the record set spans far more pages than the Pentium 4's 64 DTLB
//!   entries, so the guarded-load mapping (TLB priming) matters;
//! * the sort's outer loop loads `v[i]` with a constant 8-byte stride —
//!   the spec-load anchor for dereference-based and intra-iteration
//!   prefetching of the record and its key.

use spf_ir::{CmpOp, ElemTy, FunctionBuilder, ProgramBuilder, Reg, Ty};

use crate::common::{
    add_seed, emit_lcg_next, emit_mix, emit_set_seed, emit_shuffle_refs, BuiltWorkload, Size,
};

/// Key length in bytes (fixed, like db's fixed-format fields).
const KEY_LEN: i32 = 16;

/// Emits an inline lexicographic compare of two `I8[KEY_LEN]` arrays;
/// returns a register holding -1, 0, or 1.
fn emit_compare_keys(b: &mut FunctionBuilder<'_>, ka: Reg, kb: Reg) -> Reg {
    let cmp = b.new_reg(Ty::I32);
    let z = b.const_i32(0);
    b.move_(cmp, z);
    let len = b.const_i32(KEY_LEN);
    b.for_i32(
        0,
        1,
        CmpOp::Lt,
        |_| len,
        |b, k| {
            let x = b.aload(ka, k, ElemTy::I8);
            let y = b.aload(kb, k, ElemTy::I8);
            let lt = b.lt(x, y);
            b.if_(lt, |b| {
                let m1 = b.const_i32(-1);
                b.move_(cmp, m1);
                b.break_(0);
            });
            let gt = b.gt(x, y);
            b.if_(gt, |b| {
                let p1 = b.const_i32(1);
                b.move_(cmp, p1);
                b.break_(0);
            });
        },
    );
    cmp
}

/// Builds the db workload at `size`.
pub fn build(size: Size) -> BuiltWorkload {
    let n = size.scale(10_000);
    let mut pb = ProgramBuilder::new();
    let (rec_cls, rf) = pb.add_class(
        "Record",
        &[
            ("key", ElemTy::Ref),
            ("payload", ElemTy::Ref),
            ("id", ElemTy::I32),
            ("pad", ElemTy::I64),
        ],
    );
    let key_f = rf[0];
    let payload_f = rf[1];
    let id_f = rf[2];
    let seed = add_seed(&mut pb, "db_seed");

    // ---- setup(n) -> Ref: records co-allocated with key and payload ----
    let setup = {
        let mut b = pb.function("db_setup", &[Ty::I32], Some(Ty::Ref));
        let n = b.param(0);
        let v = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let rec = b.new_object(rec_cls);
                let klen = b.const_i32(KEY_LEN);
                let key = b.new_array(ElemTy::I8, klen);
                let plen = b.const_i32(12);
                let payload = b.new_array(ElemTy::I32, plen);
                b.putfield(rec, key_f, key);
                b.putfield(rec, payload_f, payload);
                b.putfield(rec, id_f, i);
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| klen,
                    |b, k| {
                        let r = emit_lcg_next(b, seed);
                        let byte = {
                            let m = b.const_i32(127);
                            b.rem(r, m)
                        };
                        b.astore(key, k, byte, ElemTy::I8);
                    },
                );
                let zero = b.const_i32(0);
                b.astore(payload, zero, i, ElemTy::I32);
                b.astore(v, i, rec, ElemTy::Ref);
            },
        );
        b.ret(Some(v));
        b.finish()
    };

    // ---- sort(v, n) -> i32: shell sort by key -------------------------
    let sort = {
        let mut b = pb.function("db_sort", &[Ty::Ref, Ty::I32], Some(Ty::I32));
        let v = b.param(0);
        let n = b.param(1);
        let gap = b.new_reg(Ty::I32);
        let two = b.const_i32(2);
        let g0 = b.div(n, two);
        b.move_(gap, g0);
        let zero = b.const_i32(0);
        b.while_(
            |b| b.gt(gap, zero),
            |b| {
                // for i in gap..n
                let i = b.new_reg(Ty::I32);
                b.move_(i, gap);
                b.while_(
                    |b| b.lt(i, n),
                    |b| {
                        let cur = b.aload(v, i, ElemTy::Ref); // the anchor load
                        let curkey = b.getfield(cur, key_f); // dereference target
                        let j = b.new_reg(Ty::I32);
                        b.move_(j, i);
                        b.while_(
                            |b| b.ge(j, gap),
                            |b| {
                                let jg = b.sub(j, gap);
                                let prev = b.aload(v, jg, ElemTy::Ref);
                                let prevkey = b.getfield(prev, key_f);
                                let c = emit_compare_keys(b, prevkey, curkey);
                                let zero2 = b.const_i32(0);
                                let le = b.le(c, zero2);
                                b.if_(le, |b| b.break_(0));
                                b.astore(v, j, prev, ElemTy::Ref);
                                b.move_(j, jg);
                            },
                        );
                        b.astore(v, j, cur, ElemTy::Ref);
                        // Per-record bookkeeping (index maintenance,
                        // format conversion) — cache-resident work that
                        // dilutes the sort loop's memory stalls, as the
                        // surrounding database code does in _209_db.
                        let acct = b.new_reg(Ty::I32);
                        b.move_(acct, i);
                        let reps = b.const_i32(16);
                        b.for_i32(
                            0,
                            1,
                            CmpOp::Lt,
                            |_| reps,
                            |b, _| {
                                let k1 = b.const_i32(0x5bd1);
                                let a1 = b.mul(acct, k1);
                                let k2 = b.const_i32(0xe995);
                                let a2 = b.xor(a1, k2);
                                let sh = b.const_i32(13);
                                let a3 = b.shr(a2, sh);
                                let a4 = b.add(a2, a3);
                                b.move_(acct, a4);
                            },
                        );
                        b.inc(i, 1);
                    },
                );
                let half = b.div(gap, two);
                b.move_(gap, half);
            },
        );
        // Verify sortedness cheaply: count adjacent inversions (should be
        // 0) and fold into the return value.
        let inv = b.new_reg(Ty::I32);
        b.move_(inv, zero);
        let n1 = {
            let one = b.const_i32(1);
            b.sub(n, one)
        };
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n1,
            |b, i| {
                let a = b.aload(v, i, ElemTy::Ref);
                let one = b.const_i32(1);
                let i1 = b.add(i, one);
                let c2 = b.aload(v, i1, ElemTy::Ref);
                let ka = b.getfield(a, key_f);
                let kb = b.getfield(c2, key_f);
                let c = emit_compare_keys(b, ka, kb);
                let zero2 = b.const_i32(0);
                let bad = b.gt(c, zero2);
                b.if_(bad, |b| b.inc(inv, 1));
            },
        );
        b.ret(Some(inv));
        b.finish()
    };

    // ---- scan(v, n) -> i32: index-order walk dereferencing records ----
    let scan = {
        let mut b = pb.function("db_scan", &[Ty::Ref, Ty::I32], Some(Ty::I32));
        let v = b.param(0);
        let n = b.param(1);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let rec = b.aload(v, i, ElemTy::Ref);
                let key = b.getfield(rec, key_f);
                let payload = b.getfield(rec, payload_f);
                let zero = b.const_i32(0);
                let k0 = b.aload(key, zero, ElemTy::I8);
                let p0 = b.aload(payload, zero, ElemTy::I32);
                let s1 = b.add(acc, k0);
                let s2 = b.add(s1, p0);
                b.move_(acc, s2);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };

    // ---- main() --------------------------------------------------------
    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 20030609);
        let nreg = b.const_i32(n);
        let v = b.call(setup, &[nreg]);
        emit_shuffle_refs(&mut b, v, nreg, seed);
        let inv = b.call(sort, &[v, nreg]);
        let sum = b.call(scan, &[v, nreg]);
        let check = b.new_reg(Ty::I32);
        b.move_(check, sum);
        emit_mix(&mut b, check, inv);
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 48 << 20,
        expected: None, // deterministic, asserted equal across configs in tests
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::PrefetchOptions;
    use spf_heap::Value;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    fn run(mode: PrefetchOptions, runs: usize) -> (i32, u64) {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                prefetch: mode,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let mut out = 0;
        for _ in 0..runs {
            out = vm.call(w.entry, &[]).unwrap().unwrap().as_i32();
        }
        (out, vm.stats().cycles)
    }

    #[test]
    fn sorts_correctly_every_config() {
        let (base, _) = run(PrefetchOptions::off(), 2);
        let (inter, _) = run(PrefetchOptions::inter(), 2);
        let (both, _) = run(PrefetchOptions::inter_intra(), 2);
        assert_eq!(base, inter, "prefetching must not change results");
        assert_eq!(base, both, "prefetching must not change results");
    }

    #[test]
    fn sort_produces_zero_inversions() {
        // The sort method returns the inversion count, mixed into the
        // checksum as `sum * 31 + inv`; run once and check inv == 0 by
        // reconstructing: check = sum*31 + inv, and inv must be 0 mod the
        // mix — simpler: run the VM and inspect directly via a variant.
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let setup = vm.program().method_by_name("db_setup").unwrap();
        let sort = vm.program().method_by_name("db_sort").unwrap();
        let n = Size::Tiny.scale(12_000);
        let v = vm.call(setup, &[Value::I32(n)]).unwrap().unwrap();
        let inv = vm.call(sort, &[v, Value::I32(n)]).unwrap().unwrap();
        assert_eq!(inv, Value::I32(0), "array is sorted");
    }

    #[test]
    fn inter_intra_prefetches_records() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap(); // compiles db_sort with live data
        let report = vm
            .reports()
            .iter()
            .find(|r| r.method == "db_sort")
            .expect("db_sort was compiled");
        assert!(
            report.total_prefetches > 0,
            "sort gets prefetches:\n{}",
            report.render()
        );
        // At least one speculative-load anchor (dereference-based shape).
        let has_spec = report.loops.iter().flat_map(|l| &l.prefetches).any(|p| {
            matches!(
                p.kind,
                spf_core::report::GeneratedKind::SpeculativeLoad { .. }
            )
        });
        assert!(has_spec, "{}", report.render());
        assert!(vm.mem_stats().swpf_issued + vm.mem_stats().guarded_loads > 0);
    }
}
