//! Miniature reproductions of the paper's benchmark suite (Table 3):
//! SPECjvm98 plus Section 3 of JavaGrande v2.0.
//!
//! Each workload is a program written in the `spf-ir` builder API whose
//! *memory behaviour* reproduces what the paper reports for the original:
//! which loads have inter-/intra-iteration stride patterns, how large the
//! working set is relative to each processor's caches and DTLB, and how
//! much of the run is spent in compiled code. The module-level docs of each
//! workload explain the correspondence.
//!
//! Use [`registry::all`] to enumerate them, or the individual `build_*`
//! functions for a specific one.

pub mod common;
pub mod compress;
pub mod db;
pub mod euler;
pub mod jack;
pub mod javac;
pub mod jess;
pub mod moldyn;
pub mod montecarlo;
pub mod mpegaudio;
pub mod mtrt;
pub mod raytracer;
pub mod registry;
pub mod search;

pub use common::{BuiltWorkload, Size, Suite, WorkloadSpec};
pub use registry::all;
