//! JavaGrande `Euler` miniature: computational fluid dynamics over "large
//! two-dimensional arrays of vectors" (paper §4.1).
//!
//! The grid is an array of rows, each row an array of `State` objects
//! allocated row-major — so every field load in the sweep has a constant
//! *inter-iteration* stride equal to the object size (72 bytes, above half
//! a cache line on both processors). INTER and INTER+INTRA therefore
//! generate the same plain stride prefetches and achieve similar speedups
//! (the paper reports ≈15% on both processors).

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{emit_mix, BuiltWorkload, Size};

/// Builds the Euler workload.
pub fn build(size: Size) -> BuiltWorkload {
    let nx = size.scale(176);
    let ny = size.scale(160);
    let sweeps = 3;
    let mut pb = ProgramBuilder::new();
    let (state_cls, sf) = pb.add_class(
        "State",
        &[
            ("a", ElemTy::F64),
            ("b", ElemTy::F64),
            ("c", ElemTy::F64),
            ("d", ElemTy::F64),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
        ],
    );
    let (fa, fb, fc, fd) = (sf[0], sf[1], sf[2], sf[3]);

    // ---- setup(nx, ny) -> grid ------------------------------------------
    let setup = {
        let mut b = pb.function("euler_setup", &[Ty::I32, Ty::I32], Some(Ty::Ref));
        let nx = b.param(0);
        let ny = b.param(1);
        let grid = b.new_array(ElemTy::Ref, nx);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| nx,
            |b, i| {
                let row = b.new_array(ElemTy::Ref, ny);
                b.astore(grid, i, row, ElemTy::Ref);
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| ny,
                    |b, j| {
                        let s = b.new_object(state_cls);
                        let ij = b.mul(i, j);
                        let x = b.convert(spf_ir::Conv::I32ToF64, ij);
                        b.putfield(s, fa, x);
                        let y = b.convert(spf_ir::Conv::I32ToF64, i);
                        b.putfield(s, fb, y);
                        let zc = b.convert(spf_ir::Conv::I32ToF64, j);
                        b.putfield(s, fc, zc);
                        let zero = b.const_f64(1.0);
                        b.putfield(s, fd, zero);
                        b.astore(row, j, s, ElemTy::Ref);
                    },
                );
            },
        );
        b.ret(Some(grid));
        b.finish()
    };

    // ---- sweep(grid, nx, ny) -> f64-ish checksum as i32 -----------------
    let sweep = {
        let mut b = pb.function("euler_sweep", &[Ty::Ref, Ty::I32, Ty::I32], Some(Ty::I32));
        let grid = b.param(0);
        let nx = b.param(1);
        let ny = b.param(2);
        let one = b.const_i32(1);
        let nx1 = b.sub(nx, one);
        let acc = b.new_reg(Ty::F64);
        let z = b.const_f64(0.0);
        b.move_(acc, z);
        b.for_i32(
            1,
            1,
            CmpOp::Lt,
            |_| nx1,
            |b, i| {
                let row = b.aload(grid, i, ElemTy::Ref);
                let ny1 = b.sub(ny, one);
                b.for_i32(
                    1,
                    1,
                    CmpOp::Lt,
                    |_| ny1,
                    |b, j| {
                        let s = b.aload(row, j, ElemTy::Ref);
                        let jm = b.sub(j, one);
                        let jp = b.add(j, one);
                        let left = b.aload(row, jm, ElemTy::Ref);
                        let right = b.aload(row, jp, ElemTy::Ref);
                        let sa = b.getfield(s, fa);
                        let la = b.getfield(left, fb);
                        let ra = b.getfield(right, fc);
                        let sd = b.getfield(s, fd);
                        let t1 = b.add(la, ra);
                        let half = b.const_f64(0.5);
                        let t2 = b.mul(t1, half);
                        let t3 = b.add(sa, t2);
                        let quarter = b.const_f64(0.25);
                        let t4 = b.mul(t3, quarter);
                        let t5 = b.add(t4, sd);
                        // Flux computation: enough arithmetic per cell that the
                        // next iteration's prefetch has time to complete (real CFD
                        // kernels run hundreds of flops per cell).
                        let flux = b.new_reg(Ty::F64);
                        b.move_(flux, t5);
                        let stages = b.const_i32(6);
                        b.for_i32(
                            0,
                            1,
                            CmpOp::Lt,
                            |_| stages,
                            |b, _| {
                                let k1 = b.const_f64(0.9921);
                                let f1 = b.mul(flux, k1);
                                let k2 = b.const_f64(0.0311);
                                let f2 = b.add(f1, k2);
                                let f3 = b.mul(f2, f2);
                                let k3 = b.const_f64(0.4);
                                let f4 = b.mul(f3, k3);
                                let f5 = b.sub(f2, f4);
                                b.move_(flux, f5);
                            },
                        );
                        b.putfield(s, fa, flux);
                        let n = b.add(acc, flux);
                        b.move_(acc, n);
                    },
                );
            },
        );
        let out = b.convert(spf_ir::Conv::F64ToI32, acc);
        b.ret(Some(out));
        b.finish()
    };

    // ---- main ------------------------------------------------------------
    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let nxr = b.const_i32(nx);
        let nyr = b.const_i32(ny);
        let grid = b.call(setup, &[nxr, nyr]);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let reps = b.const_i32(sweeps);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let s = b.call(sweep, &[grid, nxr, nyr]);
                emit_mix(b, check, s);
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 64 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::PrefetchOptions;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn inter_finds_plain_stride_prefetches() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                prefetch: PrefetchOptions::inter(),
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        let report = vm
            .reports()
            .iter()
            .find(|r| r.method == "euler_sweep")
            .expect("sweep compiled");
        use spf_core::report::GeneratedKind as K;
        let inter = report
            .loops
            .iter()
            .flat_map(|l| &l.prefetches)
            .filter(|p| matches!(p.kind, K::InterStride { .. }))
            .count();
        assert!(inter >= 1, "{}", report.render());
    }

    #[test]
    fn deterministic_across_modes() {
        let mut outs = Vec::new();
        for opts in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
            let w = build(Size::Tiny);
            let mut vm = Vm::new(
                w.program,
                VmConfig {
                    heap_bytes: w.heap_bytes,
                    prefetch: opts,
                    ..VmConfig::default()
                },
                ProcessorConfig::athlon_mp(),
            );
            vm.call(w.entry, &[]).unwrap();
            outs.push(vm.call(w.entry, &[]).unwrap());
        }
        assert_eq!(outs[0], outs[1]);
    }
}
