//! Shared workload infrastructure: sizes, the registry entry type, and IR
//! helpers (a deterministic LCG and a Fisher–Yates shuffle emitted as IR).

use spf_ir::{CmpOp, ElemTy, FunctionBuilder, MethodId, Program, Reg, StaticId, Ty};

/// Problem size, analogous to SPEC's problem-size knob (the paper uses 100
/// for SPECjvm98 and "Size A" for JavaGrande).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Size {
    /// Seconds-long unit-test size.
    Tiny,
    /// Criterion-bench size.
    Small,
    /// Figure-regeneration size (the default for `figures`).
    Full,
}

impl Size {
    /// Scales a `Full`-size parameter down for smaller runs.
    pub fn scale(self, full: i32) -> i32 {
        match self {
            Size::Tiny => (full / 16).max(4),
            Size::Small => (full / 4).max(8),
            Size::Full => full,
        }
    }
}

/// Which suite the original benchmark belongs to (Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// SPECjvm98.
    SpecJvm98,
    /// JavaGrande v2.0 Section 3.
    JavaGrande,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::SpecJvm98 => f.write_str("SPECjvm98"),
            Suite::JavaGrande => f.write_str("JavaGrande"),
        }
    }
}

/// A built workload, ready to run on a [`spf_vm::Vm`].
#[derive(Debug)]
pub struct BuiltWorkload {
    /// The program.
    pub program: Program,
    /// Entry method; takes no arguments and returns an `I32` checksum.
    pub entry: MethodId,
    /// Heap capacity the workload needs.
    pub heap_bytes: usize,
    /// Expected checksum, if the workload is fully deterministic.
    pub expected: Option<i32>,
    /// Invocation count at which methods are JIT-compiled. Most workloads
    /// use the VM default (2); interpreter-heavy ones (jack) use a higher
    /// threshold so their many once-called methods stay interpreted, which
    /// is what produces their low compiled-code fraction in Table 3.
    pub compile_threshold: u32,
}

/// A registry entry describing one workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Short name, matching the paper's (e.g. "db", "Euler").
    pub name: &'static str,
    /// Table 3 description.
    pub description: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Builder.
    pub build: fn(Size) -> BuiltWorkload,
}

/// Emits `seed = seed * 1103515245 + 12345; value = (seed >>> 16) & 0x7fff`
/// against a static seed slot; returns the non-negative pseudo-random
/// `I32`.
pub fn emit_lcg_next(b: &mut FunctionBuilder<'_>, seed: StaticId) -> Reg {
    let s = b.getstatic(seed);
    let a = b.const_i32(1103515245);
    let c = b.const_i32(12345);
    let sa = b.mul(s, a);
    let s2 = b.add(sa, c);
    b.putstatic(seed, s2);
    let sixteen = b.const_i32(16);
    let hi = b.bin(spf_ir::BinOp::UShr, s2, sixteen);
    let mask = b.const_i32(0x7fff);
    b.and(hi, mask)
}

/// Emits a Fisher–Yates shuffle of the first `n` elements of `arr` (an
/// array of references) driven by the LCG at `seed`.
pub fn emit_shuffle_refs(b: &mut FunctionBuilder<'_>, arr: Reg, n: Reg, seed: StaticId) {
    // for i in (1..n).rev() { j = rnd % (i+1); swap(arr[i], arr[j]) }
    // Implemented forward for simplicity: for i in 0..n { j = rnd % n; swap }
    b.for_i32(
        0,
        1,
        CmpOp::Lt,
        |_| n,
        |b, i| {
            let r = emit_lcg_next(b, seed);
            let j = b.rem(r, n);
            let ai = b.aload(arr, i, ElemTy::Ref);
            let aj = b.aload(arr, j, ElemTy::Ref);
            b.astore(arr, i, aj, ElemTy::Ref);
            b.astore(arr, j, ai, ElemTy::Ref);
        },
    );
}

/// Emits `checksum = checksum * 31 + v` and returns the new checksum
/// register value (callers keep `checksum` in a mutable register).
pub fn emit_mix(b: &mut FunctionBuilder<'_>, checksum: Reg, v: Reg) {
    let thirty_one = b.const_i32(31);
    let m = b.mul(checksum, thirty_one);
    let s = b.add(m, v);
    b.move_(checksum, s);
}

/// Declares the conventional seed static used by workloads.
pub fn add_seed(pb: &mut spf_ir::ProgramBuilder, name: &str) -> StaticId {
    pb.add_static(name, ElemTy::I32)
}

/// Emits code setting static `seed` to `value`.
pub fn emit_set_seed(b: &mut FunctionBuilder<'_>, seed: StaticId, value: i32) {
    let v = b.const_i32(value);
    b.putstatic(seed, v);
}

/// Standard entry signature helper: a `"main"` function returning `I32`.
pub fn main_builder<'a>(pb: &'a mut spf_ir::ProgramBuilder) -> FunctionBuilder<'a> {
    pb.function("main", &[], Some(Ty::I32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_heap::Value;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn size_scaling() {
        assert_eq!(Size::Full.scale(1600), 1600);
        assert_eq!(Size::Small.scale(1600), 400);
        assert_eq!(Size::Tiny.scale(1600), 100);
        assert_eq!(Size::Tiny.scale(8), 4);
    }

    #[test]
    fn lcg_is_deterministic_and_nonnegative() {
        let mut pb = spf_ir::ProgramBuilder::new();
        let seed = add_seed(&mut pb, "seed");
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 42);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        let n = b.const_i32(100);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let r = emit_lcg_next(b, seed);
                // all values in [0, 0x7fff]
                let neg = b.const_i32(0);
                let bad = b.lt(r, neg);
                b.if_(bad, |b| {
                    let m1 = b.const_i32(-1_000_000);
                    b.move_(acc, m1);
                });
                emit_mix(b, acc, r);
            },
        );
        b.ret(Some(acc));
        let main = b.finish();
        let p = pb.finish();
        let mut vm1 = Vm::new(p.clone(), VmConfig::default(), ProcessorConfig::pentium4());
        let mut vm2 = Vm::new(p, VmConfig::default(), ProcessorConfig::athlon_mp());
        let a = vm1.call(main, &[]).unwrap();
        let b2 = vm2.call(main, &[]).unwrap();
        assert_eq!(a, b2, "LCG independent of processor model");
        assert_ne!(a, Some(Value::I32(-1_000_000)), "no negative draws");
    }

    #[test]
    fn shuffle_permutes() {
        let mut pb = spf_ir::ProgramBuilder::new();
        let (cls, fs) = pb.add_class("Tag", &[("id", ElemTy::I32)]);
        let seed = add_seed(&mut pb, "seed");
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 7);
        let n = b.const_i32(32);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let o = b.new_object(cls);
                b.putfield(o, fs[0], i);
                b.astore(arr, i, o, ElemTy::Ref);
            },
        );
        emit_shuffle_refs(&mut b, arr, n, seed);
        // Sum of ids must be invariant (0 + 1 + ... + 31 = 496); also count
        // how many stayed in place.
        let sum = b.new_reg(Ty::I32);
        let inplace = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(sum, z);
        b.move_(inplace, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let o = b.aload(arr, i, ElemTy::Ref);
                let id = b.getfield(o, fs[0]);
                let s = b.add(sum, id);
                b.move_(sum, s);
                let same = b.eq(id, i);
                b.if_(same, |b| b.inc(inplace, 1));
            },
        );
        // return sum * 100 + inplace
        let hundred = b.const_i32(100);
        let scaled = b.mul(sum, hundred);
        let out = b.add(scaled, inplace);
        b.ret(Some(out));
        let main = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig::default(),
            ProcessorConfig::pentium4(),
        );
        let out = vm.call(main, &[]).unwrap().unwrap().as_i32();
        let (sum, inplace) = (out / 100, out % 100);
        assert_eq!(sum, 496, "shuffle preserved the multiset");
        assert!(inplace < 16, "shuffle actually moved things: {inplace}");
    }
}
