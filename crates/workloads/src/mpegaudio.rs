//! `_222_mpegaudio` miniature: MPEG Layer-3 style synthesis filterbank.
//!
//! The hot loops walk an array of `Granule` objects whose 136-byte stride
//! *passes* the profitability analysis — so prefetch instructions are
//! inserted — but the whole working set is cache-resident, so the paper's
//! observation holds: "Both algorithms slightly degraded the mpegaudio
//! benchmark on the Pentium 4… because the cache miss ratios and the DTLB
//! miss ratio were quite small". The inserted prefetches are pure
//! overhead.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{emit_mix, BuiltWorkload, Size};

/// Builds the mpegaudio workload.
pub fn build(size: Size) -> BuiltWorkload {
    let n_granules = 48; // 48 * 136 B ≈ 6.5 KB: resident even in the P4's 8 KB L1
    let frames = size.scale(3000);
    let mut pb = ProgramBuilder::new();
    let (gr_cls, gf) = pb.add_class(
        "Granule",
        &[
            ("s0", ElemTy::F64),
            ("s1", ElemTy::F64),
            ("s2", ElemTy::F64),
            ("s3", ElemTy::F64),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
            ("pad5", ElemTy::I64),
            ("pad6", ElemTy::I64),
            ("pad7", ElemTy::I64),
            ("pad8", ElemTy::I64),
            ("pad9", ElemTy::I64),
            ("pad10", ElemTy::I64),
        ],
    );
    let (s0_, s1_, s2_, s3_) = (gf[0], gf[1], gf[2], gf[3]);

    let setup = {
        let mut b = pb.function("mpeg_setup", &[Ty::I32], Some(Ty::Ref));
        let n = b.param(0);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let g = b.new_object(gr_cls);
                let x = b.convert(spf_ir::Conv::I32ToF64, i);
                b.putfield(g, s0_, x);
                let half = b.const_f64(0.5);
                let y = b.mul(x, half);
                b.putfield(g, s1_, y);
                b.putfield(g, s2_, half);
                b.putfield(g, s3_, y);
                b.astore(arr, i, g, ElemTy::Ref);
            },
        );
        b.ret(Some(arr));
        b.finish()
    };

    // synth(arr, n) -> i32: polyphase-ish filter over the granules.
    let synth = {
        let mut b = pb.function("mpeg_synth", &[Ty::Ref, Ty::I32], Some(Ty::I32));
        let arr = b.param(0);
        let n = b.param(1);
        let acc = b.new_reg(Ty::F64);
        let z = b.const_f64(0.0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let g = b.aload(arr, i, ElemTy::Ref);
                let a = b.getfield(g, s0_);
                let bb = b.getfield(g, s1_);
                let c = b.getfield(g, s2_);
                let d = b.getfield(g, s3_);
                let k1 = b.const_f64(0.707);
                let t1 = b.mul(a, k1);
                let k2 = b.const_f64(0.382);
                let t2 = b.mul(bb, k2);
                let t3 = b.add(t1, t2);
                let t4 = b.mul(c, d);
                let t5 = b.add(t3, t4);
                // The rest of the 32-tap window.
                let w = b.new_reg(Ty::F64);
                b.move_(w, t5);
                let taps = b.const_i32(8);
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| taps,
                    |b, _| {
                        let k = b.const_f64(0.9063);
                        let w1 = b.mul(w, k);
                        let k2 = b.const_f64(0.0175);
                        let w2 = b.add(w1, k2);
                        b.move_(w, w2);
                    },
                );
                b.putfield(g, s0_, w);
                let s = b.add(acc, w);
                b.move_(acc, s);
            },
        );
        let out = b.convert(spf_ir::Conv::F64ToI32, acc);
        b.ret(Some(out));
        b.finish()
    };

    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let nreg = b.const_i32(n_granules);
        let arr = b.call(setup, &[nreg]);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let reps = b.const_i32(frames);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let s = b.call(synth, &[arr, nreg]);
                emit_mix(b, check, s);
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 8 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn prefetches_inserted_but_useless() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        let total: usize = vm.reports().iter().map(|r| r.total_prefetches).sum();
        assert!(total > 0, "the 136-byte stride passes profitability");
        // …but the L1 miss rate is tiny: the working set is resident.
        let m = vm.mem_stats();
        let mpi = m.l1_load_misses as f64 / m.loads.max(1) as f64;
        assert!(mpi < 0.01, "cache-resident: miss ratio {mpi}");
    }
}
