//! `_201_compress` miniature: modified Lempel–Ziv coding over byte arrays.
//!
//! All hot loads walk `I8`/`I32` arrays with strides of 1–4 bytes — far
//! below half a cache line — so the profitability analysis rejects every
//! candidate and no prefetch code is generated, matching the paper:
//! "compress, javac, and Search do not contain code fragments where either
//! intra- or inter-iteration stride prefetching are applicable". The
//! hardware next-line prefetcher already covers this sequential pattern.
//!
//! This workload is written in the `spf-lang` mini-Java front end (the
//! other eleven use the IR builder directly), exercising the whole
//! lexer → parser → type checker → lowering pipeline inside the benchmark
//! suite.

use crate::common::{BuiltWorkload, Size};

fn source(input_len: i32) -> String {
    format!(
        r#"
static int seed;

int nextRand() {{
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 0x7fff;
}}

byte[] fill(int len) {{
    byte[] buf = new byte[len];
    for (int i = 0; i < len; i = i + 1) {{
        // tiny alphabet -> repetitive, compressible input
        buf[i] = nextRand() % 8;
    }}
    return buf;
}}

int compress(byte[] buf, int len) {{
    int[] head = new int[4096];
    int out = 0;
    for (int i = 0; i < len - 2; i = i + 1) {{
        int c0 = buf[i];
        int c1 = buf[i + 1];
        int h = ((c0 << 6) ^ c1) & 4095;
        int prev = head[h];
        head[h] = i;
        if (prev > 0) {{
            out = out + h;
        }}
    }}
    return out;
}}

int main() {{
    seed = 201;
    int len = {input_len};
    byte[] buf = fill(len);
    int check = 0;
    for (int r = 0; r < 2; r = r + 1) {{
        check = check * 31 + compress(buf, len);
    }}
    return check;
}}
"#
    )
}

/// Builds the compress workload (from mini-Java source).
pub fn build(size: Size) -> BuiltWorkload {
    let input_len = size.scale(480_000);
    let program = spf_lang::compile(&source(input_len))
        .unwrap_or_else(|e| panic!("compress source failed to compile: {e}"));
    let entry = program.method_by_name("main").expect("main exists");
    BuiltWorkload {
        program,
        entry,
        heap_bytes: 16 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn no_prefetches_are_generated() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let a = vm.call(w.entry, &[]).unwrap();
        let b = vm.call(w.entry, &[]).unwrap();
        assert_eq!(a, b, "deterministic");
        let total: usize = vm.reports().iter().map(|r| r.total_prefetches).sum();
        assert_eq!(total, 0, "small strides must be rejected");
        assert_eq!(vm.mem_stats().swpf_issued, 0);
    }

    #[test]
    fn lang_and_builder_pipelines_agree_on_structure() {
        // The lang-built program must JIT-compile and attribute most cycles
        // to compiled code, like the builder-built workloads.
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::athlon_mp(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        assert!(vm.stats().methods_compiled >= 2, "fill/compress compiled");
        vm.reset_measurement();
        vm.call(w.entry, &[]).unwrap();
        assert!(vm.stats().compiled_code_fraction() > 0.5);
    }
}
