//! JavaGrande `Search` miniature: alpha-beta pruned game-tree search.
//!
//! The board is a small byte array and the transposition table is probed at
//! pseudo-random indices; the recursion means most loads are out-of-loop —
//! the case the paper explicitly leaves as future work. No stride
//! prefetching is applicable, matching §4.1.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{emit_mix, BuiltWorkload, Size};

/// Builds the Search workload.
pub fn build(size: Size) -> BuiltWorkload {
    let depth = match size {
        Size::Tiny => 12,
        Size::Small => 16,
        Size::Full => 18,
    };
    let mut pb = ProgramBuilder::new();
    let board_static = pb.add_static("search_board", ElemTy::Ref);
    let ttable_static = pb.add_static("search_ttable", ElemTy::Ref);

    // search(pos, depth, alpha) -> score; recursive alpha-beta-ish walk.
    let search = pb.declare("search_node", &[Ty::I32, Ty::I32, Ty::I32], Some(Ty::I32));
    {
        let mut b = pb.define(search);
        let pos = b.param(0);
        let depth = b.param(1);
        let alpha = b.param(2);
        let zero = b.const_i32(0);
        let leaf = b.le(depth, zero);
        b.if_(leaf, |b| {
            // Evaluate: a few board loads + arithmetic.
            let board = b.getstatic(board_static);
            let len = b.arraylen(board);
            let mask = b.const_i32(0x7fff_ffff);
            let posu = b.and(pos, mask);
            let idx = b.rem(posu, len);
            let v = b.aload(board, idx, ElemTy::I8);
            let s = b.add(v, pos);
            let thirtyone = b.const_i32(31);
            let e = b.rem(s, thirtyone);
            b.ret(Some(e));
        });
        // Transposition-table probe at a hashed (non-strided) index.
        let tt = b.getstatic(ttable_static);
        let magic = b.const_i32(2654435761u32 as i32);
        let h0 = b.mul(pos, magic);
        let maskp = b.const_i32(0x7fff_ffff);
        let h1 = b.and(h0, maskp);
        let len = b.arraylen(tt);
        let h2 = b.rem(h1, len);
        let habs = {
            let neg = b.lt(h2, zero);
            let out = b.new_reg(Ty::I32);
            b.move_(out, h2);
            b.if_(neg, |b| {
                let n = b.un(spf_ir::UnOp::Neg, h2);
                b.move_(out, n);
            });
            out
        };
        let cached = b.aload(tt, habs, ElemTy::I32);
        let hitp = b.eq(cached, pos);
        b.if_(hitp, |b| {
            let one = b.const_i32(1);
            b.ret(Some(one));
        });
        b.astore(tt, habs, pos, ElemTy::I32);
        // Expand two children.
        let best = b.new_reg(Ty::I32);
        b.move_(best, alpha);
        let one = b.const_i32(1);
        let d1 = b.sub(depth, one);
        let three = b.const_i32(3);
        let c1 = b.mul(pos, three);
        let c1 = b.add(c1, one);
        let s1 = b.call(search, &[c1, d1, best]);
        let better1 = b.gt(s1, best);
        b.if_(better1, |b| b.move_(best, s1));
        // Prune: skip the second child when already good enough.
        let cut = b.const_i32(29);
        let prune = b.ge(best, cut);
        b.if_(prune, |b| b.ret(Some(best)));
        let two = b.const_i32(2);
        let c2 = b.mul(pos, three);
        let c2 = b.add(c2, two);
        let s2 = b.call(search, &[c2, d1, best]);
        let better2 = b.gt(s2, best);
        b.if_(better2, |b| b.move_(best, s2));
        b.ret(Some(best));
        b.finish();
    }

    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let blen = b.const_i32(64);
        let board = b.new_array(ElemTy::I8, blen);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| blen,
            |b, i| {
                let five = b.const_i32(5);
                let v = b.rem(i, five);
                b.astore(board, i, v, ElemTy::I8);
            },
        );
        b.putstatic(board_static, board);
        let tlen = b.const_i32(1 << 14);
        let tt = b.new_array(ElemTy::I32, tlen);
        b.putstatic(ttable_static, tt);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let starts = b.const_i32(12);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| starts,
            |b, s| {
                let d = b.const_i32(depth);
                let zero = b.const_i32(0);
                let v = b.call(search, &[s, d, zero]);
                emit_mix(b, check, v);
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 8 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn no_prefetch_opportunities() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let a = vm.call(w.entry, &[]).unwrap();
        let b = vm.call(w.entry, &[]).unwrap();
        assert_eq!(a, b);
        let total: usize = vm.reports().iter().map(|r| r.total_prefetches).sum();
        assert_eq!(total, 0, "recursive search has no in-loop stride loads");
    }
}
