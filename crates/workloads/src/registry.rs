//! The workload registry (the rows of the paper's Table 3).

use crate::common::{Suite, WorkloadSpec};

/// All twelve workloads, in the paper's Table 3 order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "mtrt",
            description: "Two-threaded ray tracer",
            suite: Suite::SpecJvm98,
            build: crate::mtrt::build,
        },
        WorkloadSpec {
            name: "jess",
            description: "Java expert shell system",
            suite: Suite::SpecJvm98,
            build: crate::jess::build,
        },
        WorkloadSpec {
            name: "compress",
            description: "Modified Lempel-Ziv method",
            suite: Suite::SpecJvm98,
            build: crate::compress::build,
        },
        WorkloadSpec {
            name: "db",
            description: "Memory resident database",
            suite: Suite::SpecJvm98,
            build: crate::db::build,
        },
        WorkloadSpec {
            name: "mpegaudio",
            description: "MPEG Layer-3 audio decompression",
            suite: Suite::SpecJvm98,
            build: crate::mpegaudio::build,
        },
        WorkloadSpec {
            name: "jack",
            description: "Java parser generator",
            suite: Suite::SpecJvm98,
            build: crate::jack::build,
        },
        WorkloadSpec {
            name: "javac",
            description: "Java compiler from JDK 1.0.2",
            suite: Suite::SpecJvm98,
            build: crate::javac::build,
        },
        WorkloadSpec {
            name: "Euler",
            description: "Computational fluid dynamics",
            suite: Suite::JavaGrande,
            build: crate::euler::build,
        },
        WorkloadSpec {
            name: "MolDyn",
            description: "Molecular dynamics simulation",
            suite: Suite::JavaGrande,
            build: crate::moldyn::build,
        },
        WorkloadSpec {
            name: "MonteCarlo",
            description: "Monte Carlo simulation",
            suite: Suite::JavaGrande,
            build: crate::montecarlo::build,
        },
        WorkloadSpec {
            name: "RayTracer",
            description: "3D ray tracer",
            suite: Suite::JavaGrande,
            build: crate::raytracer::build,
        },
        WorkloadSpec {
            name: "Search",
            description: "Alpha-beta pruned search",
            suite: Suite::JavaGrande,
            build: crate::search::build,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads_in_table3_order() {
        let specs = all();
        assert_eq!(specs.len(), 12);
        assert_eq!(specs[0].name, "mtrt");
        assert_eq!(specs[3].name, "db");
        assert_eq!(specs[7].name, "Euler");
        assert_eq!(
            specs.iter().filter(|s| s.suite == Suite::SpecJvm98).count(),
            7
        );
        assert_eq!(
            specs
                .iter()
                .filter(|s| s.suite == Suite::JavaGrande)
                .count(),
            5
        );
    }

    #[test]
    fn names_are_unique() {
        let specs = all();
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn metadata_matches_table3() {
        let specs = all();
        let expected = [
            ("mtrt", "Two-threaded ray tracer"),
            ("jess", "Java expert shell system"),
            ("compress", "Modified Lempel-Ziv method"),
            ("db", "Memory resident database"),
            ("mpegaudio", "MPEG Layer-3 audio decompression"),
            ("jack", "Java parser generator"),
            ("javac", "Java compiler from JDK 1.0.2"),
            ("Euler", "Computational fluid dynamics"),
            ("MolDyn", "Molecular dynamics simulation"),
            ("MonteCarlo", "Monte Carlo simulation"),
            ("RayTracer", "3D ray tracer"),
            ("Search", "Alpha-beta pruned search"),
        ];
        assert_eq!(specs.len(), expected.len());
        for (spec, (name, desc)) in specs.iter().zip(expected) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.description, desc, "{name} description");
            // Descriptions must fit Table 3's 36-character column.
            assert!(spec.description.len() <= 36, "{name} description width");
        }
    }

    #[test]
    fn every_spec_builds_a_runnable_workload() {
        for spec in all() {
            let built = (spec.build)(crate::Size::Tiny);
            assert!(built.heap_bytes > 0, "{}", spec.name);
            assert!(built.compile_threshold >= 1, "{}", spec.name);
            // The registry name must resolve inside the built program: the
            // entry method exists and belongs to it.
            let entry_name = built.program.method(built.entry).name();
            assert!(
                built.program.method_by_name(entry_name) == Some(built.entry),
                "{}: entry method {entry_name} not resolvable",
                spec.name
            );
        }
    }
}
