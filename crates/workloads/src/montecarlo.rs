//! JavaGrande `MonteCarlo` miniature: financial Monte Carlo simulation.
//!
//! Arithmetic-heavy time-series generation over small `F64` arrays: stride
//! 8 loads are rejected by profitability and the miss ratios are tiny, so
//! prefetching neither helps nor hurts much. About half of the execution
//! stays in interpreted one-shot setup methods, reproducing Table 3's 48%
//! compiled-code fraction.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{add_seed, emit_lcg_next, emit_mix, emit_set_seed, BuiltWorkload, Size};

/// Builds the MonteCarlo workload.
pub fn build(size: Size) -> BuiltWorkload {
    let paths = size.scale(1200);
    let path_len = 200;
    let mut pb = ProgramBuilder::new();
    let seed = add_seed(&mut pb, "mc_seed");

    // One-shot, stays interpreted (invoked once per entry call, threshold 4).
    let calibrate = {
        let mut b = pb.function("mc_calibrate", &[Ty::I32], Some(Ty::F64));
        let reps = b.param(0);
        let acc = b.new_reg(Ty::F64);
        let z = b.const_f64(0.0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let r = emit_lcg_next(b, seed);
                let x = b.convert(spf_ir::Conv::I32ToF64, r);
                let k = b.const_f64(1.0 / 32768.0);
                let u = b.mul(x, k);
                let u2 = b.mul(u, u);
                let s = b.add(acc, u2);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        b.finish()
    };

    // Hot path kernel: compiled.
    let simulate = {
        let mut b = pb.function("mc_simulate", &[Ty::Ref, Ty::I32], Some(Ty::F64));
        let path = b.param(0);
        let len = b.param(1);
        let v = b.new_reg(Ty::F64);
        let start = b.const_f64(100.0);
        b.move_(v, start);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| len,
            |b, t| {
                let r = emit_lcg_next(b, seed);
                let x = b.convert(spf_ir::Conv::I32ToF64, r);
                let k = b.const_f64(1.0 / 32768.0);
                let u = b.mul(x, k);
                let half = b.const_f64(0.5);
                let drift = b.sub(u, half);
                let scale = b.const_f64(0.02);
                let dv = b.mul(drift, scale);
                let one = b.const_f64(1.0);
                let factor = b.add(one, dv);
                let nv = b.mul(v, factor);
                b.move_(v, nv);
                b.astore(path, t, nv, ElemTy::F64);
            },
        );
        b.ret(Some(v));
        b.finish()
    };

    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 1999);
        let cal_reps = b.const_i32(paths * 60);
        let cal = b.call(calibrate, &[cal_reps]);
        let len = b.const_i32(path_len);
        let path = b.new_array(ElemTy::F64, len);
        let acc = b.new_reg(Ty::F64);
        b.move_(acc, cal);
        let np = b.const_i32(paths);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| np,
            |b, _| {
                let last = b.call(simulate, &[path, len]);
                let s = b.add(acc, last);
                b.move_(acc, s);
            },
        );
        let sum = b.convert(spf_ir::Conv::F64ToI32, acc);
        let check = b.new_reg(Ty::I32);
        b.move_(check, sum);
        let zero = b.const_i32(0);
        emit_mix(&mut b, check, zero);
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 8 << 20,
        expected: None,
        compile_threshold: 50, // calibrate (once per run) stays interpreted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn roughly_half_the_cycles_are_interpreted() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                compile_threshold: w.compile_threshold,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        for _ in 0..4 {
            vm.call(w.entry, &[]).unwrap();
        }
        vm.reset_measurement();
        vm.call(w.entry, &[]).unwrap();
        let frac = vm.stats().compiled_code_fraction();
        assert!(
            (0.2..0.9).contains(&frac),
            "mixed-mode split, got {frac:.2}"
        );
    }
}
