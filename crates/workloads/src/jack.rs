//! `_228_jack` miniature: a parser generator.
//!
//! Tokenizes an input buffer (sequential byte loads, no usable strides) and
//! dispatches to many small, once-per-run "semantic action" methods. With
//! the raised compile threshold those actions stay interpreted, which is
//! what gives jack the lowest compiled-code fraction in Table 3 (36.2%).

use spf_ir::{CmpOp, ElemTy, MethodId, ProgramBuilder, Ty};

use crate::common::{add_seed, emit_lcg_next, emit_mix, emit_set_seed, BuiltWorkload, Size};

/// Number of distinct grammar-action methods.
const ACTIONS: usize = 24;

/// Builds the jack workload.
pub fn build(size: Size) -> BuiltWorkload {
    let input_len = size.scale(160_000);
    let mut pb = ProgramBuilder::new();
    let seed = add_seed(&mut pb, "jack_seed");

    // Distinct action methods: each does slightly different arithmetic so
    // they cannot be trivially shared; each is invoked once per entry call
    // and stays interpreted.
    let actions: Vec<MethodId> = (0..ACTIONS)
        .map(|k| {
            let name = format!("jack_action_{k}");
            let mut b = pb.function(&name, &[Ty::I32], Some(Ty::I32));
            let x = b.param(0);
            let acc = b.new_reg(Ty::I32);
            let init = b.const_i32(k as i32);
            b.move_(acc, init);
            let reps = b.const_i32(600 + 13 * k as i32);
            b.for_i32(
                0,
                1,
                CmpOp::Lt,
                |_| reps,
                |b, i| {
                    let kc = b.const_i32(k as i32 + 3);
                    let t = b.mul(i, kc);
                    let u = b.xor(t, x);
                    let seven = b.const_i32(7 + k as i32);
                    let m = b.rem(u, seven);
                    let s = b.add(acc, m);
                    b.move_(acc, s);
                },
            );
            b.ret(Some(acc));
            b.finish()
        })
        .collect();

    // Hot tokenizer: compiled (called many times per run).
    let tokenize = {
        let mut b = pb.function("jack_tokenize", &[Ty::Ref, Ty::I32, Ty::I32], Some(Ty::I32));
        let buf = b.param(0);
        let from = b.param(1);
        let to = b.param(2);
        let toks = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(toks, z);
        let i = b.new_reg(Ty::I32);
        b.move_(i, from);
        b.while_(
            |b| b.lt(i, to),
            |b| {
                let c = b.aload(buf, i, ElemTy::I8);
                let space = b.const_i32(0);
                let is_sep = b.eq(c, space);
                b.if_(is_sep, |b| b.inc(toks, 1));
                b.inc(i, 1);
            },
        );
        b.ret(Some(toks));
        b.finish()
    };

    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 228);
        let len = b.const_i32(input_len);
        let buf = b.new_array(ElemTy::I8, len);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| len,
            |b, i| {
                let r = emit_lcg_next(b, seed);
                let nine = b.const_i32(9);
                let v = b.rem(r, nine);
                b.astore(buf, i, v, ElemTy::I8);
            },
        );
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        // Tokenize in chunks (16 calls -> compiled), then run each action
        // once (interpreted).
        let chunks = b.const_i32(16);
        let chunk_len = b.const_i32(input_len / 16);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| chunks,
            |b, c| {
                let from = b.mul(c, chunk_len);
                let to = b.add(from, chunk_len);
                let t = b.call(tokenize, &[buf, from, to]);
                emit_mix(b, check, t);
            },
        );
        for &a in &actions {
            let v = b.call(a, &[check]);
            emit_mix(&mut b, check, v);
        }
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 8 << 20,
        expected: None,
        compile_threshold: 8, // actions run once per call -> interpreted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn low_compiled_fraction() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                compile_threshold: w.compile_threshold,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let a = vm.call(w.entry, &[]).unwrap();
        let b = vm.call(w.entry, &[]).unwrap();
        assert_eq!(a, b);
        vm.reset_measurement();
        vm.call(w.entry, &[]).unwrap();
        let frac = vm.stats().compiled_code_fraction();
        assert!(frac < 0.7, "jack is interpreter-heavy, got {frac:.2}");
    }
}
