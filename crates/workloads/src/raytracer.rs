//! JavaGrande `RayTracer` miniature: a 3-D ray tracer whose hot loop
//! *contains an invocation of a recursive method* (paper §4.1).
//!
//! The intersection loop walks a *permuted* sphere array (the real
//! benchmark visits the scene through a spatial hierarchy), so only the
//! `aaload` of the scene array has an inter-iteration stride — the
//! spec-load anchor for dereference-based prefetching of the spheres. For
//! each candidate hit the loop calls a recursive `shade` that re-reads the
//! same sphere (served on the Pentium 4 by the line the loop prefetched —
//! the paper's cross-method effect) and churns through a texture table
//! that fills most of the Athlon's L1, fighting the prefetched lines — the
//! paper's RayTracer anomaly (P4 improves, Athlon slightly degrades).

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{
    add_seed, emit_lcg_next, emit_mix, emit_set_seed, emit_shuffle_refs, BuiltWorkload, Size,
};

/// Builds the RayTracer workload.
pub fn build(size: Size) -> BuiltWorkload {
    let n_spheres = size.scale(6000);
    let n_rays = size.scale(80);
    let texture_len = 14_336; // 56 KB of i32: nearly all of the Athlon's 64 KB L1
    let mut pb = ProgramBuilder::new();
    let (sph_cls, sf) = pb.add_class(
        "Sphere",
        &[
            ("cx", ElemTy::F64),
            ("cy", ElemTy::F64),
            ("r2", ElemTy::F64),
            ("color", ElemTy::I32),
            ("shine", ElemTy::I32),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
        ],
    );
    let (cx_, cy_, r2_, color_, shine_) = (sf[0], sf[1], sf[2], sf[3], sf[4]);
    let seed = add_seed(&mut pb, "rt_seed");
    let texture = pb.add_static("rt_texture", ElemTy::Ref);

    // ---- setup(n) -> scene ------------------------------------------------
    let setup = {
        let mut b = pb.function("rt_setup", &[Ty::I32], Some(Ty::Ref));
        let n = b.param(0);
        let tl = b.const_i32(texture_len);
        let tex = b.new_array(ElemTy::I32, tl);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| tl,
            |b, i| {
                let five = b.const_i32(5);
                let v = b.mul(i, five);
                b.astore(tex, i, v, ElemTy::I32);
            },
        );
        b.putstatic(texture, tex);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.new_object(sph_cls);
                let r = emit_lcg_next(b, seed);
                let thousand = b.const_i32(1000);
                let xi = b.rem(r, thousand);
                let x = b.convert(spf_ir::Conv::I32ToF64, xi);
                b.putfield(s, cx_, x);
                let r2v = emit_lcg_next(b, seed);
                let yi = b.rem(r2v, thousand);
                let y = b.convert(spf_ir::Conv::I32ToF64, yi);
                b.putfield(s, cy_, y);
                let rad = b.const_f64(1600.0);
                b.putfield(s, r2_, rad);
                let sixteen = b.const_i32(16);
                let col = b.rem(i, sixteen);
                b.putfield(s, color_, col);
                let four = b.const_i32(4);
                let sh = b.rem(i, four);
                b.putfield(s, shine_, sh);
                b.astore(arr, i, s, ElemTy::Ref);
            },
        );
        // The render loop visits spheres through a spatial hierarchy in the
        // real benchmark, i.e. in an order unrelated to allocation order:
        // model that by shuffling the scene array. The aaload keeps its
        // 8-byte stride (the spec-load anchor); the sphere loads have no
        // inter-iteration pattern.
        emit_shuffle_refs(&mut b, arr, n, seed);
        b.ret(Some(arr));
        b.finish()
    };

    // ---- shade(sphere, color, depth) -> i32: recursive, texture-hungry --
    //
    // Re-reads the *same sphere object* at every recursion level (surface
    // normal, reflectivity, …): on the Pentium 4 those loads hit the L2
    // line the intersection loop prefetched — the paper's cross-method
    // effect — while its texture traffic keeps the small L1 churning.
    let shade = pb.declare("rt_shade", &[Ty::Ref, Ty::I32, Ty::I32], Some(Ty::I32));
    {
        let mut b = pb.define(shade);
        let sphere = b.param(0);
        let color = b.param(1);
        let depth = b.param(2);
        let zero = b.const_i32(0);
        let stop = b.le(depth, zero);
        b.if_(stop, |b| b.ret(Some(color)));
        let tex = b.getstatic(texture);
        let acc = b.new_reg(Ty::I32);
        b.move_(acc, color);
        // Surface computation touching the sphere again.
        let scx = b.getfield(sphere, cx_);
        let scy = b.getfield(sphere, cy_);
        let sprod = b.mul(scx, scy);
        let sint = b.convert(spf_ir::Conv::F64ToI32, sprod);
        let mask = b.const_i32(0x3ff);
        let sbits = b.and(sint, mask);
        let acc2 = b.add(acc, sbits);
        b.move_(acc, acc2);
        // Walk a strided slice of the texture: evicts L1 lines between
        // intersection-loop iterations.
        let steps = b.const_i32(224);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| steps,
            |b, k| {
                let stride = b.const_i32(128);
                let kk = b.mul(k, stride);
                let base = b.const_i32(texture_len);
                let cd = b.mul(color, depth);
                let off = b.add(kk, cd);
                let idx = b.rem(off, base);
                let t = b.aload(tex, idx, ElemTy::I32);
                let s = b.add(acc, t);
                b.move_(acc, s);
            },
        );
        let one = b.const_i32(1);
        let d1 = b.sub(depth, one);
        let fifteen = b.const_i32(15);
        let nc = b.and(acc, fifteen);
        let sub = b.call(shade, &[sphere, nc, d1]);
        let out = b.add(acc, sub);
        b.ret(Some(out));
        b.finish();
    }

    // ---- render(scene, n, ox, oy) -> i32: loop with recursive call ------
    let render = {
        let mut b = pb.function(
            "rt_render",
            &[Ty::Ref, Ty::I32, Ty::F64, Ty::F64],
            Some(Ty::I32),
        );
        let scene = b.param(0);
        let n = b.param(1);
        let ox = b.param(2);
        let oy = b.param(3);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.aload(scene, i, ElemTy::Ref);
                let cx = b.getfield(s, cx_);
                let cy = b.getfield(s, cy_);
                let r2 = b.getfield(s, r2_);
                let dx = b.sub(cx, ox);
                let dy = b.sub(cy, oy);
                let dx2 = b.mul(dx, dx);
                let dy2 = b.mul(dy, dy);
                let d2 = b.add(dx2, dy2);
                let hit = b.cmp(CmpOp::Lt, d2, r2);
                b.if_(hit, |b| {
                    let c = b.getfield(s, color_);
                    let depth = b.getfield(s, shine_);
                    let shaded = b.call(shade, &[s, c, depth]);
                    let a2 = b.add(acc, shaded);
                    b.move_(acc, a2);
                });
            },
        );
        b.ret(Some(acc));
        b.finish()
    };

    // ---- main ------------------------------------------------------------
    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 3001);
        let nreg = b.const_i32(n_spheres);
        let scene = b.call(setup, &[nreg]);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let rays = b.const_i32(n_rays);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| rays,
            |b, r| {
                let thousand = b.const_i32(1000);
                let th = b.const_i32(37);
                let rx = b.mul(r, th);
                let rxm = b.rem(rx, thousand);
                let ox = b.convert(spf_ir::Conv::I32ToF64, rxm);
                let tt = b.const_i32(53);
                let ry = b.mul(r, tt);
                let rym = b.rem(ry, thousand);
                let oy = b.convert(spf_ir::Conv::I32ToF64, rym);
                let c = b.call(render, &[scene, nreg, ox, oy]);
                emit_mix(b, check, c);
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 32 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn recursion_works_and_is_deterministic() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::athlon_mp(),
        );
        let a = vm.call(w.entry, &[]).unwrap();
        let b = vm.call(w.entry, &[]).unwrap();
        assert_eq!(a, b);
        assert!(vm.is_compiled(vm.program().method_by_name("rt_shade").unwrap()));
    }
}
