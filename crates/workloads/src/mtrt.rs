//! `_227_mtrt` miniature: ray tracing over a scene of sphere objects.
//!
//! The intersection loop walks a window of the sequentially allocated
//! sphere array (rays have spatial locality), so field loads have constant
//! 72-byte inter-iteration strides but the touched working set is mostly
//! cache-resident — the paper reports an L2 MPI reduction for mtrt but
//! only a small (±1%) run-time effect, and so does this miniature.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{add_seed, emit_lcg_next, emit_mix, emit_set_seed, BuiltWorkload, Size};

/// Spheres scanned per ray.
const WINDOW: i32 = 800;

/// Builds the mtrt workload.
pub fn build(size: Size) -> BuiltWorkload {
    let n_spheres = size.scale(3600);
    let n_rays = size.scale(260);
    let mut pb = ProgramBuilder::new();
    let (sph_cls, sf) = pb.add_class(
        "Sphere",
        &[
            ("cx", ElemTy::F64),
            ("cy", ElemTy::F64),
            ("cz", ElemTy::F64),
            ("r2", ElemTy::F64),
            ("color", ElemTy::I32),
            ("pad", ElemTy::I64),
            ("pad2", ElemTy::I64),
        ],
    );
    let (cx_, cy_, cz_, r2_, color_) = (sf[0], sf[1], sf[2], sf[3], sf[4]);
    let seed = add_seed(&mut pb, "mtrt_seed");

    // ---- setup(n) -> Ref -------------------------------------------------
    let setup = {
        let mut b = pb.function("mtrt_setup", &[Ty::I32], Some(Ty::Ref));
        let n = b.param(0);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.new_object(sph_cls);
                let r = emit_lcg_next(b, seed);
                let thousand = b.const_i32(1000);
                let xi = b.rem(r, thousand);
                let x = b.convert(spf_ir::Conv::I32ToF64, xi);
                b.putfield(s, cx_, x);
                let r2v = emit_lcg_next(b, seed);
                let yi = b.rem(r2v, thousand);
                let y = b.convert(spf_ir::Conv::I32ToF64, yi);
                b.putfield(s, cy_, y);
                let r3 = emit_lcg_next(b, seed);
                let zi = b.rem(r3, thousand);
                let z = b.convert(spf_ir::Conv::I32ToF64, zi);
                b.putfield(s, cz_, z);
                let rad = b.const_f64(900.0);
                b.putfield(s, r2_, rad);
                let sixteen = b.const_i32(16);
                let col = b.rem(i, sixteen);
                b.putfield(s, color_, col);
                b.astore(arr, i, s, ElemTy::Ref);
            },
        );
        b.ret(Some(arr));
        b.finish()
    };

    // ---- trace(scene, from, to, ox, oy) -> i32: nearest-hit scan over a
    // window of the scene (the bounding-volume walk of the original) ------
    let trace = {
        let mut b = pb.function(
            "mtrt_trace",
            &[Ty::Ref, Ty::I32, Ty::I32, Ty::F64, Ty::F64],
            Some(Ty::I32),
        );
        let scene = b.param(0);
        let from = b.param(1);
        let to = b.param(2);
        let ox = b.param(3);
        let oy = b.param(4);
        let best = b.new_reg(Ty::F64);
        let inf = b.const_f64(1e18);
        b.move_(best, inf);
        let hit = b.new_reg(Ty::I32);
        let m1 = b.const_i32(-1);
        b.move_(hit, m1);
        let i = b.new_reg(Ty::I32);
        b.move_(i, from);
        b.while_(
            |b| b.lt(i, to),
            |b| {
                let s = b.aload(scene, i, ElemTy::Ref);
                let cx = b.getfield(s, cx_);
                let cy = b.getfield(s, cy_);
                let r2 = b.getfield(s, r2_);
                let dx = b.sub(cx, ox);
                let dy = b.sub(cy, oy);
                let dx2 = b.mul(dx, dx);
                let dy2 = b.mul(dy, dy);
                let d2 = b.add(dx2, dy2);
                // Full 3-D quadratic discriminant (the third axis plus the
                // normalization real ray-sphere tests perform).
                let cz = b.getfield(s, cz_);
                let dz = b.sub(cz, ox);
                let dz2 = b.mul(dz, dz);
                let k = b.const_f64(0.015625);
                let dzn = b.mul(dz2, k);
                let d3 = b.add(d2, dzn);
                let kk = b.const_f64(0.996);
                let d4 = b.mul(d3, kk);
                let d5 = b.mul(d4, kk);
                let inside = b.cmp(CmpOp::Lt, d5, r2);
                b.if_(inside, |b| {
                    let closer = b.cmp(CmpOp::Lt, d5, best);
                    b.if_(closer, |b| {
                        b.move_(best, d5);
                        let c = b.getfield(s, color_);
                        b.move_(hit, c);
                    });
                });
                b.inc(i, 1);
            },
        );
        b.ret(Some(hit));
        b.finish()
    };

    // ---- main ------------------------------------------------------------
    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 227);
        let nreg = b.const_i32(n_spheres);
        let scene = b.call(setup, &[nreg]);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let rays = b.const_i32(n_rays);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| rays,
            |b, r| {
                let thousand = b.const_i32(1000);
                let seven = b.const_i32(7);
                let rx = b.mul(r, seven);
                let rxm = b.rem(rx, thousand);
                let ox = b.convert(spf_ir::Conv::I32ToF64, rxm);
                let eleven = b.const_i32(11);
                let ry = b.mul(r, eleven);
                let rym = b.rem(ry, thousand);
                let oy = b.convert(spf_ir::Conv::I32ToF64, rym);
                // Each ray scans a window of spheres starting near its origin
                // (spatial locality of the scene hierarchy).
                let from = if n_spheres > WINDOW {
                    let span = b.const_i32(n_spheres - WINDOW);
                    let nineteen = b.const_i32(19);
                    let woff = b.mul(r, nineteen);
                    b.rem(woff, span)
                } else {
                    b.const_i32(0)
                };
                let window = b.const_i32(WINDOW.min(n_spheres));
                let to = b.add(from, window);
                let c = b.call(trace, &[scene, from, to, ox, oy]);
                emit_mix(b, check, c);
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 32 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn runs_and_is_deterministic() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let a = vm.call(w.entry, &[]).unwrap();
        let b = vm.call(w.entry, &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_gets_prefetches() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        let report = vm
            .reports()
            .iter()
            .find(|r| r.method == "mtrt_trace")
            .expect("trace compiled");
        assert!(report.total_prefetches > 0, "{}", report.render());
    }
}
