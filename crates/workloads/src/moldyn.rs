//! JavaGrande `MolDyn` miniature: molecular dynamics over "a
//! one-dimensional array of molecule objects that fits in the L2 cache"
//! (paper §4.1).
//!
//! Molecules are allocated sequentially, so the force loop's field loads
//! have an 88-byte inter-iteration stride. The working set (~100 KB) fits
//! the 256 KB L2 but not the Athlon's 64 KB L1 — so on the Pentium 4 (whose
//! prefetch instruction fills the L2, where the data already resides)
//! neither algorithm helps, while on the Athlon MP (prefetch into L1) both
//! achieve small speedups. This is the paper's cleanest demonstration of
//! the software-prefetch *target level* difference.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{emit_mix, BuiltWorkload, Size};

/// Builds the MolDyn workload.
pub fn build(size: Size) -> BuiltWorkload {
    let n = size.scale(1100);
    let steps = 2;
    let mut pb = ProgramBuilder::new();
    let (mol_cls, mf) = pb.add_class(
        "Molecule",
        &[
            ("x", ElemTy::F64),
            ("y", ElemTy::F64),
            ("z", ElemTy::F64),
            ("vx", ElemTy::F64),
            ("vy", ElemTy::F64),
            ("vz", ElemTy::F64),
            ("fx", ElemTy::F64),
            ("fy", ElemTy::F64),
            ("fz", ElemTy::F64),
        ],
    );
    let (fx_, fy_, fz_) = (mf[6], mf[7], mf[8]);
    let (x_, y_, z_) = (mf[0], mf[1], mf[2]);

    // ---- setup(n) -> Ref -------------------------------------------------
    let setup = {
        let mut b = pb.function("moldyn_setup", &[Ty::I32], Some(Ty::Ref));
        let n = b.param(0);
        let arr = b.new_array(ElemTy::Ref, n);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let m = b.new_object(mol_cls);
                let seventeen = b.const_i32(17);
                let xi = b.rem(i, seventeen);
                let x = b.convert(spf_ir::Conv::I32ToF64, xi);
                b.putfield(m, x_, x);
                let thirteen = b.const_i32(13);
                let yi = b.rem(i, thirteen);
                let y = b.convert(spf_ir::Conv::I32ToF64, yi);
                b.putfield(m, y_, y);
                let seven = b.const_i32(7);
                let zi = b.rem(i, seven);
                let z = b.convert(spf_ir::Conv::I32ToF64, zi);
                b.putfield(m, z_, z);
                b.astore(arr, i, m, ElemTy::Ref);
            },
        );
        b.ret(Some(arr));
        b.finish()
    };

    // ---- forces(arr, n) -> i32: O(n^2) pairwise interaction --------------
    let forces = {
        let mut b = pb.function("moldyn_forces", &[Ty::Ref, Ty::I32], Some(Ty::I32));
        let arr = b.param(0);
        let n = b.param(1);
        let cutoff = b.const_f64(50.0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let mi = b.aload(arr, i, ElemTy::Ref);
                let xi = b.getfield(mi, x_);
                let yi = b.getfield(mi, y_);
                let zi = b.getfield(mi, z_);
                let one = b.const_i32(1);
                let i1 = b.add(i, one);
                let j = b.new_reg(Ty::I32);
                b.move_(j, i1);
                b.while_(
                    |b| b.lt(j, n),
                    |b| {
                        let mj = b.aload(arr, j, ElemTy::Ref);
                        let xj = b.getfield(mj, x_);
                        let yj = b.getfield(mj, y_);
                        let zj = b.getfield(mj, z_);
                        let dx = b.sub(xi, xj);
                        let dy = b.sub(yi, yj);
                        let dz = b.sub(zi, zj);
                        let dx2 = b.mul(dx, dx);
                        let dy2 = b.mul(dy, dy);
                        let dz2 = b.mul(dz, dz);
                        let r1 = b.add(dx2, dy2);
                        let r2 = b.add(r1, dz2);
                        let close = b.cmp(CmpOp::Lt, r2, cutoff);
                        b.if_(close, |b| {
                            let fxi = b.getfield(mi, fx_);
                            let s1 = b.add(fxi, dx);
                            b.putfield(mi, fx_, s1);
                            let fyi = b.getfield(mi, fy_);
                            let s2 = b.add(fyi, dy);
                            b.putfield(mi, fy_, s2);
                            let fzj = b.getfield(mj, fz_);
                            let s3 = b.sub(fzj, dz);
                            b.putfield(mj, fz_, s3);
                        });
                        b.inc(j, 1);
                    },
                );
            },
        );
        // Fold force of molecule 0 into a checksum.
        let zero = b.const_i32(0);
        let m0 = b.aload(arr, zero, ElemTy::Ref);
        let f0 = b.getfield(m0, fx_);
        let out = b.convert(spf_ir::Conv::F64ToI32, f0);
        b.ret(Some(out));
        b.finish()
    };

    // ---- main ------------------------------------------------------------
    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let nreg = b.const_i32(n);
        let arr = b.call(setup, &[nreg]);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let reps = b.const_i32(steps);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, _| {
                let s = b.call(forces, &[arr, nreg]);
                emit_mix(b, check, s);
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 16 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::PrefetchOptions;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn molecule_loads_have_inter_strides() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                prefetch: PrefetchOptions::inter(),
                ..VmConfig::default()
            },
            ProcessorConfig::athlon_mp(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        let report = vm
            .reports()
            .iter()
            .find(|r| r.method == "moldyn_forces")
            .expect("forces compiled");
        assert!(report.total_prefetches > 0, "{}", report.render());
    }

    #[test]
    fn deterministic() {
        let w1 = build(Size::Tiny);
        let mut vm = Vm::new(
            w1.program,
            VmConfig {
                heap_bytes: w1.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let a = vm.call(w1.entry, &[]).unwrap();
        let b = vm.call(w1.entry, &[]).unwrap();
        assert_eq!(a, b, "per-invocation deterministic");
    }
}
