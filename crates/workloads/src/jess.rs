//! `_202_jess` miniature: the paper's motivating example (Figure 1).
//!
//! `findInMemory(tv, t)` scans a `TokenVector` in a doubly nested loop,
//! comparing fact arrays. The token array is *churned* (append plus
//! swap-removal, like `removeElement` in the paper §2), so `tv.v[i]` points
//! at tokens in permuted address order: the `aaload` L4 keeps its small
//! constant stride, but the token loads (L9…) have no inter-iteration
//! pattern — only the *intra-iteration* stride between a `Token` and its
//! co-allocated `facts` array survives. INTER+INTRA generates exactly the
//! paper's Figure 4 code: a speculative load of `&tv.v[i] + c*d`, a
//! prefetch of the future token, and an intra-stride prefetch of its facts.
//!
//! As in the paper, the speedup is small (≈2–3%): `findInMemory` is hot but
//! not dominant — most cycles go to cache-resident rule evaluation, modeled
//! by `jess_eval`.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{add_seed, emit_lcg_next, emit_mix, emit_set_seed, BuiltWorkload, Size};

/// Facts per token (the paper's `new ValueVector[5]`).
const FACTS: i32 = 5;

/// Builds the jess workload.
pub fn build(size: Size) -> BuiltWorkload {
    let n_tokens = size.scale(4_000);
    let churn_ops = size.scale(8_000);
    let probes = size.scale(8);
    let eval_reps = size.scale(26_000);
    let mut pb = ProgramBuilder::new();
    let (tok_cls, tf) = pb.add_class(
        "Token",
        &[
            ("size", ElemTy::I32),
            ("facts", ElemTy::Ref),
            ("pad0", ElemTy::I64),
            ("pad1", ElemTy::I64),
            ("pad2", ElemTy::I64),
            ("pad3", ElemTy::I64),
            ("pad4", ElemTy::I64),
            ("pad5", ElemTy::I64),
            ("pad6", ElemTy::I64),
            ("pad7", ElemTy::I64),
            ("pad8", ElemTy::I64),
            ("pad9", ElemTy::I64),
        ],
    );
    let size_f = tf[0];
    let facts_f = tf[1];
    let (tv_cls, vf) = pb.add_class("TokenVector", &[("v", ElemTy::Ref), ("ptr", ElemTy::I32)]);
    let v_f = vf[0];
    let ptr_f = vf[1];
    let seed = add_seed(&mut pb, "jess_seed");

    // ---- newToken() -> Token: co-allocates the facts array -------------
    let new_token = {
        let mut b = pb.function("jess_new_token", &[], Some(Ty::Ref));
        let t = b.new_object(tok_cls);
        let nf = b.const_i32(FACTS);
        let facts = b.new_array(ElemTy::I32, nf);
        b.putfield(t, facts_f, facts);
        b.putfield(t, size_f, nf);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| nf,
            |b, j| {
                let r = emit_lcg_next(b, seed);
                let sixteen = b.const_i32(16);
                let val = b.rem(r, sixteen);
                b.astore(facts, j, val, ElemTy::I32);
            },
        );
        b.ret(Some(t));
        b.finish()
    };

    // ---- addElement(tv, t) ---------------------------------------------
    let add_element = {
        let mut b = pb.function("jess_add", &[Ty::Ref, Ty::Ref], None);
        let tv = b.param(0);
        let t = b.param(1);
        let v = b.getfield(tv, v_f);
        let ptr = b.getfield(tv, ptr_f);
        b.astore(v, ptr, t, ElemTy::Ref);
        let one = b.const_i32(1);
        let p2 = b.add(ptr, one);
        b.putfield(tv, ptr_f, p2);
        b.finish()
    };

    // ---- removeElement(tv, idx): swap-removal (paper §2) ----------------
    let remove_element = {
        let mut b = pb.function("jess_remove", &[Ty::Ref, Ty::I32], None);
        let tv = b.param(0);
        let idx = b.param(1);
        let v = b.getfield(tv, v_f);
        let ptr = b.getfield(tv, ptr_f);
        let one = b.const_i32(1);
        let last = b.sub(ptr, one);
        let moved = b.aload(v, last, ElemTy::Ref);
        b.astore(v, idx, moved, ElemTy::Ref);
        b.putfield(tv, ptr_f, last);
        b.finish()
    };

    // ---- findInMemory(tv, probe) -> i32 (paper Figure 1) ----------------
    let find = {
        let mut b = pb.function("findInMemory", &[Ty::Ref, Ty::Ref], Some(Ty::I32));
        let tv = b.param(0);
        let probe = b.param(1);
        let found = b.new_reg(Ty::I32);
        let m1 = b.const_i32(-1);
        b.move_(found, m1);
        // TokenLoop: for i in 0..tv.ptr
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.getfield(tv, ptr_f), // L1: &tv.ptr (loop-invariant load)
            |b, i| {
                let v = b.getfield(tv, v_f); // L2: &tv.v
                let tmp = b.aload(v, i, ElemTy::Ref); // L4: &tv.v[i]
                let psize = b.getfield(probe, size_f); // L5: &t.size
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| psize,
                    |b, j| {
                        let pfacts = b.getfield(probe, facts_f); // L6
                        let pj = b.aload(pfacts, j, ElemTy::I32); // L8
                        let tfacts = b.getfield(tmp, facts_f); // L9
                        let tj = b.aload(tfacts, j, ElemTy::I32); // L11
                        let neq = b.ne(pj, tj);
                        // Mismatch -> continue TokenLoop (the *then* arm,
                        // matching the common path in the real jess).
                        b.if_(neq, |b| b.continue_(1));
                    },
                );
                // All facts equal -> remember and stop.
                b.move_(found, i);
                b.break_(0);
            },
        );
        b.ret(Some(found));
        b.finish()
    };

    // ---- eval(reps) -> i32: cache-resident rule-evaluation filler -------
    let eval = {
        let mut b = pb.function("jess_eval", &[Ty::I32], Some(Ty::I32));
        let reps = b.param(0);
        let len = b.const_i32(256);
        let alpha = b.new_array(ElemTy::I32, len);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| len,
            |b, i| {
                let three = b.const_i32(3);
                let x = b.mul(i, three);
                b.astore(alpha, i, x, ElemTy::I32);
            },
        );
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| reps,
            |b, r| {
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| len,
                    |b, i| {
                        let x = b.aload(alpha, i, ElemTy::I32);
                        let y = b.add(x, r);
                        let seven = b.const_i32(7);
                        let m = b.rem(y, seven);
                        let s = b.add(acc, m);
                        b.move_(acc, s);
                    },
                );
            },
        );
        b.ret(Some(acc));
        b.finish()
    };

    // ---- main ------------------------------------------------------------
    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 19760423);
        let tv = b.new_object(tv_cls);
        let cap = b.const_i32(n_tokens + 8);
        let v = b.new_array(ElemTy::Ref, cap);
        b.putfield(tv, v_f, v);
        let z = b.const_i32(0);
        b.putfield(tv, ptr_f, z);
        let n = b.const_i32(n_tokens);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let t = b.call(new_token, &[]);
                b.call_void(add_element, &[tv, t]);
            },
        );
        // Churn: remove a pseudo-random token, append a fresh one.
        let ops = b.const_i32(churn_ops);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| ops,
            |b, _| {
                let r = emit_lcg_next(b, seed);
                let ptr = b.getfield(tv, ptr_f);
                let idx = b.rem(r, ptr);
                b.call_void(remove_element, &[tv, idx]);
                let t = b.call(new_token, &[]);
                b.call_void(add_element, &[tv, t]);
            },
        );
        // Probe scans (hot but not dominant) + rule evaluation filler.
        let check = b.new_reg(Ty::I32);
        b.move_(check, z);
        let np = b.const_i32(probes);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| np,
            |b, _| {
                let probe = b.call(new_token, &[]);
                let hit = b.call(find, &[tv, probe]);
                emit_mix(b, check, hit);
            },
        );
        let reps = b.const_i32(eval_reps);
        let e = b.call(eval, &[reps]);
        emit_mix(&mut b, check, e);
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 96 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::PrefetchOptions;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn deterministic_across_configs() {
        let mut outs = Vec::new();
        for opts in [PrefetchOptions::off(), PrefetchOptions::inter_intra()] {
            let w = build(Size::Tiny);
            let mut vm = Vm::new(
                w.program,
                VmConfig {
                    heap_bytes: w.heap_bytes,
                    prefetch: opts,
                    ..VmConfig::default()
                },
                ProcessorConfig::pentium4(),
            );
            vm.call(w.entry, &[]).unwrap();
            outs.push(vm.call(w.entry, &[]).unwrap());
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn find_in_memory_gets_figure4_prefetches() {
        // On the Athlon (64-byte lines) the Token and its facts array land
        // on different lines, so the full Figure 4 sequence is generated.
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::athlon_mp(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        let report = vm
            .reports()
            .iter()
            .find(|r| r.method == "findInMemory")
            .expect("findInMemory compiled");
        let kinds: Vec<_> = report
            .loops
            .iter()
            .flat_map(|l| &l.prefetches)
            .map(|p| p.kind)
            .collect();
        use spf_core::report::GeneratedKind as K;
        assert!(
            kinds.iter().any(|k| matches!(k, K::SpeculativeLoad { .. })),
            "spec_load(&tv.v[i] + c*d): {}",
            report.render()
        );
        assert!(
            kinds.iter().any(|k| matches!(k, K::Dereference { .. })),
            "prefetch(tmp_pref + o): {}",
            report.render()
        );
        assert!(
            kinds.iter().any(|k| matches!(k, K::IntraStride { .. })),
            "prefetch(tmp_pref + o + s): {}",
            report.render()
        );
    }

    #[test]
    fn p4_line_sharing_suppresses_the_intra_prefetch() {
        // Paper §4.1: on the Pentium 4 "the cache line size is sufficiently
        // large to contain both the Token object and the array object
        // pointed to by the facts field" — the profitability analysis's
        // line-sharing rule drops the intra-iteration prefetch there.
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(w.entry, &[]).unwrap();
        vm.call(w.entry, &[]).unwrap();
        let report = vm
            .reports()
            .iter()
            .find(|r| r.method == "findInMemory")
            .expect("findInMemory compiled");
        use spf_core::report::GeneratedKind as K;
        let intra = report
            .loops
            .iter()
            .flat_map(|l| &l.prefetches)
            .filter(|p| matches!(p.kind, K::IntraStride { .. }))
            .count();
        assert_eq!(intra, 0, "{}", report.render());
    }
}
