//! `_213_javac` miniature: a compiler front end walking an AST.
//!
//! Builds pseudo-random expression trees and repeatedly type-checks and
//! constant-folds them by recursion. All pointer chasing happens through
//! recursive calls — out-of-loop loads, which the paper's algorithm does
//! not handle ("handling out-of-loop loads in recursive methods… remains
//! as an open problem", §6) — so no prefetch code is generated.

use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};

use crate::common::{add_seed, emit_lcg_next, emit_mix, emit_set_seed, BuiltWorkload, Size};

/// Builds the javac workload.
pub fn build(size: Size) -> BuiltWorkload {
    let n_trees = size.scale(48);
    let tree_depth = 11;
    let walks = 3;
    let mut pb = ProgramBuilder::new();
    let (node_cls, nf) = pb.add_class(
        "AstNode",
        &[
            ("left", ElemTy::Ref),
            ("right", ElemTy::Ref),
            ("kind", ElemTy::I32),
            ("value", ElemTy::I32),
        ],
    );
    let (left_, right_, kind_, value_) = (nf[0], nf[1], nf[2], nf[3]);
    let seed = add_seed(&mut pb, "javac_seed");

    // buildTree(depth) -> node (recursive).
    let build_tree = pb.declare("javac_build", &[Ty::I32], Some(Ty::Ref));
    {
        let mut b = pb.define(build_tree);
        let depth = b.param(0);
        let node = b.new_object(node_cls);
        let r = emit_lcg_next(&mut b, seed);
        let four = b.const_i32(4);
        let kind = b.rem(r, four);
        b.putfield(node, kind_, kind);
        let r2 = emit_lcg_next(&mut b, seed);
        let hundred = b.const_i32(100);
        let v = b.rem(r2, hundred);
        b.putfield(node, value_, v);
        let zero = b.const_i32(0);
        let leaf = b.le(depth, zero);
        b.if_(leaf, |b| b.ret(Some(node)));
        let one = b.const_i32(1);
        let d1 = b.sub(depth, one);
        let l = b.call(build_tree, &[d1]);
        b.putfield(node, left_, l);
        let rr = b.call(build_tree, &[d1]);
        b.putfield(node, right_, rr);
        b.ret(Some(node));
        b.finish();
    }

    // fold(node) -> i32 (recursive constant folding / type check).
    let fold = pb.declare("javac_fold", &[Ty::Ref], Some(Ty::I32));
    {
        let mut b = pb.define(fold);
        let node = b.param(0);
        let l = b.getfield(node, left_);
        let nullref = b.null();
        let is_leaf = b.eq(l, nullref);
        b.if_(is_leaf, |b| {
            let v = b.getfield(node, value_);
            b.ret(Some(v));
        });
        let lv = b.call(fold, &[l]);
        let r = b.getfield(node, right_);
        let rv = b.call(fold, &[r]);
        let kind = b.getfield(node, kind_);
        let out = b.new_reg(Ty::I32);
        let zero = b.const_i32(0);
        let is_add = b.eq(kind, zero);
        b.if_else(
            is_add,
            |b| {
                let s = b.add(lv, rv);
                b.move_(out, s);
            },
            |b| {
                let one = b.const_i32(1);
                let is_sub = b.eq(kind, one);
                b.if_else(
                    is_sub,
                    |b| {
                        let s = b.sub(lv, rv);
                        b.move_(out, s);
                    },
                    |b| {
                        let x = b.xor(lv, rv);
                        let m = b.const_i32(0xffff);
                        let s = b.and(x, m);
                        b.move_(out, s);
                    },
                );
            },
        );
        b.ret(Some(out));
        b.finish();
    }

    let entry = {
        let mut b = pb.function("main", &[], Some(Ty::I32));
        emit_set_seed(&mut b, seed, 213);
        let check = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(check, z);
        let trees = b.const_i32(n_trees);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| trees,
            |b, _| {
                let d = b.const_i32(tree_depth);
                let root = b.call(build_tree, &[d]);
                let reps = b.const_i32(walks);
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| reps,
                    |b, _| {
                        let v = b.call(fold, &[root]);
                        emit_mix(b, check, v);
                    },
                );
            },
        );
        b.ret(Some(check));
        b.finish()
    };

    BuiltWorkload {
        program: pb.finish(),
        entry,
        heap_bytes: 128 << 20,
        expected: None,
        compile_threshold: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_memsim::ProcessorConfig;
    use spf_vm::{Vm, VmConfig};

    #[test]
    fn recursion_generates_no_prefetches() {
        let w = build(Size::Tiny);
        let mut vm = Vm::new(
            w.program,
            VmConfig {
                heap_bytes: w.heap_bytes,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let a = vm.call(w.entry, &[]).unwrap();
        let b = vm.call(w.entry, &[]).unwrap();
        assert_eq!(a, b);
        let total: usize = vm.reports().iter().map(|r| r.total_prefetches).sum();
        assert_eq!(total, 0, "out-of-loop loads are future work (paper §6)");
    }
}
