//! Loop unrolling for the baseline JIT.
//!
//! The paper's §3.3 observes that the effective scheduling distance of a
//! prefetch depends on "the amount of computation and number of memory
//! accesses in the loop body. While we cannot change the cache parameters,
//! we can increase the amount of computation by unrolling the loop."
//!
//! This pass unrolls innermost natural loops by block duplication with
//! exact trip semantics: every copied iteration re-tests the loop
//! condition through its own copy of the header, so no induction-variable
//! analysis is needed and the transformation is valid for any natural
//! loop. Registers are mutable locals shared by all copies (the IR is not
//! SSA), so no renaming is required either.
//!
//! Off by default ([`crate::VmConfig::unroll_factor`] = 1); an ablation
//! knob for prefetch-distance experiments.

use spf_ir::cfg::Cfg;
use spf_ir::dom::DomTree;
use spf_ir::loops::LoopForest;
use spf_ir::{Block, BlockId, Function, Program, Terminator};

/// Loops with more blocks than this are left alone.
const MAX_LOOP_BLOCKS: usize = 24;

/// Unrolls each innermost loop of `func` `factor` times (1 = no change).
/// Stops adding copies when the function would exceed `max_growth` extra
/// instructions.
pub fn unroll_innermost_loops(
    program: &Program,
    func: &Function,
    factor: u32,
    max_growth: usize,
) -> Function {
    if factor <= 1 {
        return func.clone();
    }
    let budget = func.instr_count() + max_growth;
    let mut cur = func.clone();
    // Unroll one loop at a time; re-run the analyses after each rewrite
    // (block ids change). Headers of already-unrolled loops are remembered
    // so we don't unroll our own copies again.
    let mut done_headers: Vec<BlockId> = Vec::new();
    loop {
        let cfg = Cfg::compute(&cur);
        let dom = DomTree::compute(&cur, &cfg);
        let forest = LoopForest::compute(&cur, &cfg, &dom);
        let candidate = forest.postorder().into_iter().find(|&l| {
            let info = forest.info(l);
            info.children.is_empty()
                && info.block_count() <= MAX_LOOP_BLOCKS
                && !done_headers.contains(&info.header)
        });
        let Some(lid) = candidate else { break };
        let info = forest.info(lid).clone();
        let loop_instrs: usize = info
            .blocks
            .iter()
            .map(|b| cur.block(BlockId::new(b)).instrs.len())
            .sum();
        if cur.instr_count() + loop_instrs * (factor as usize - 1) > budget {
            done_headers.push(info.header);
            continue;
        }
        cur = unroll_one(&cur, &info, factor);
        done_headers.push(info.header);
    }
    debug_assert!(
        spf_ir::verify::verify(program, &cur).is_ok(),
        "unrolling produced invalid IR: {:?}",
        spf_ir::verify::verify(program, &cur)
    );
    cur
}

fn unroll_one(func: &Function, info: &spf_ir::loops::LoopInfo, factor: u32) -> Function {
    let mut out = func.clone();
    let copies = factor as usize - 1;
    let loop_blocks: Vec<BlockId> = info.blocks.iter().map(BlockId::new).collect();

    // Allocate blocks for every copy.
    let maps: Vec<std::collections::HashMap<BlockId, BlockId>> = (0..copies)
        .map(|_| loop_blocks.iter().map(|&b| (b, out.add_block())).collect())
        .collect();

    // Retarget a terminator for copy `k` (k == copies means the original).
    let retarget = |t: &Terminator, k: usize| -> Terminator {
        let map_target = |b: BlockId| -> BlockId {
            if b == info.header {
                // Back edge: chain into the next copy; the last copy goes
                // back to the original header.
                if k < copies {
                    maps[k][&info.header]
                } else {
                    info.header
                }
            } else if info.contains(b) {
                if k == 0 || k > copies {
                    b
                } else {
                    maps[k - 1][&b]
                }
            } else {
                b // loop exit: unchanged
            }
        };
        match t {
            Terminator::Jump(t) => Terminator::Jump(map_target(*t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: *cond,
                then_bb: map_target(*then_bb),
                else_bb: map_target(*else_bb),
            },
            other => other.clone(),
        }
    };

    // Fill the copies: copy k's blocks are the originals with in-loop
    // targets mapped into copy k and back edges chained to copy k+1.
    for (k, map) in maps.iter().enumerate() {
        for &b in &loop_blocks {
            let src = func.block(b).clone();
            let term = retarget_in_copy(&src.term, info, &maps, k, copies);
            *out.block_mut(map[&b]) = Block {
                instrs: src.instrs,
                term,
            };
        }
    }
    // Rewrite the original loop's back edges to enter copy 0.
    for &b in &loop_blocks {
        let t = out.block(b).term.clone();
        let new_t = retarget(&t, 0);
        out.block_mut(b).term = new_t;
    }
    out
}

/// Target mapping for terminators inside copy `k` (0-based).
fn retarget_in_copy(
    t: &Terminator,
    info: &spf_ir::loops::LoopInfo,
    maps: &[std::collections::HashMap<BlockId, BlockId>],
    k: usize,
    copies: usize,
) -> Terminator {
    let map_target = |b: BlockId| -> BlockId {
        if b == info.header {
            if k + 1 < copies {
                maps[k + 1][&info.header]
            } else {
                info.header
            }
        } else if info.contains(b) {
            maps[k][&b]
        } else {
            b
        }
    };
    match t {
        Terminator::Jump(t) => Terminator::Jump(map_target(*t)),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => Terminator::Branch {
            cond: *cond,
            then_bb: map_target(*then_bb),
            else_bb: map_target(*else_bb),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmConfig;
    use crate::vm::Vm;
    use spf_heap::Value;
    use spf_ir::{CmpOp, ProgramBuilder, Ty};
    use spf_memsim::ProcessorConfig;

    fn sum_program() -> (Program, spf_ir::MethodId) {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("sum", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.add(acc, i);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let m = b.finish();
        (pb.finish(), m)
    }

    fn run_with(p: &Program, m: spf_ir::MethodId, f: &Function, arg: i32) -> Option<Value> {
        let mut p2 = p.clone();
        p2.replace_method_body(m, f.clone());
        let mut vm = Vm::new(
            p2,
            VmConfig {
                compile_threshold: u32::MAX,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(m, &[Value::I32(arg)]).unwrap()
    }

    #[test]
    fn unrolled_loop_computes_the_same_sums() {
        let (p, m) = sum_program();
        let f = p.method(m).func();
        for factor in [2u32, 3, 4, 8] {
            let u = unroll_innermost_loops(&p, f, factor, 10_000);
            assert!(u.instr_count() > f.instr_count(), "factor {factor} grew");
            // Exact trip semantics for every residue class of the trip
            // count, including zero-trip loops.
            for n in [0, 1, 2, 3, 5, 7, 16, 33] {
                assert_eq!(
                    run_with(&p, m, &u, n),
                    run_with(&p, m, f, n),
                    "factor {factor}, n {n}"
                );
            }
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let (p, m) = sum_program();
        let f = p.method(m).func();
        let u = unroll_innermost_loops(&p, f, 1, 10_000);
        assert_eq!(&u, f);
    }

    #[test]
    fn growth_budget_respected() {
        let (p, m) = sum_program();
        let f = p.method(m).func();
        let u = unroll_innermost_loops(&p, f, 16, 4);
        assert_eq!(u.instr_count(), f.instr_count(), "budget of 4 too small");
    }

    #[test]
    fn nested_loops_unroll_only_the_innermost() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("nest", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| n,
                    |b, j| {
                        let x = b.mul(i, j);
                        let s = b.add(acc, x);
                        b.move_(acc, s);
                    },
                );
            },
        );
        b.ret(Some(acc));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let u = unroll_innermost_loops(&p, f, 4, 10_000);
        for n in [0, 1, 3, 6] {
            assert_eq!(run_with(&p, m, &u, n), run_with(&p, m, f, n), "n {n}");
        }
        // Outer loop untouched: the unrolled function has exactly one set
        // of copies (inner loop), so block growth is bounded by
        // 3 * inner-loop blocks + nothing for the outer loop.
        let cfg = Cfg::compute(&u);
        let dom = DomTree::compute(&u, &cfg);
        let forest = LoopForest::compute(&u, &cfg, &dom);
        assert!(forest.len() >= 2, "loops still present");
    }

    #[test]
    fn vm_level_unrolling_preserves_results() {
        let (p, m) = sum_program();
        let mut vm = Vm::new(
            p,
            VmConfig {
                unroll_factor: 4,
                compile_threshold: 1,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        assert_eq!(
            vm.call(m, &[Value::I32(100)]).unwrap(),
            Some(Value::I32(4950))
        );
        assert!(vm.is_compiled(m));
    }
}
