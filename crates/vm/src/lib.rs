//! The mixed-mode execution engine ("the JVM").
//!
//! [`Vm`] interprets the IR against the simulated heap and memory system,
//! charging cycles per instruction plus memory latencies — an in-order,
//! stall-on-use timing model. Methods start out interpreted (at a cycle
//! multiplier); when a method's invocation count reaches the compile
//! threshold the VM "JIT-compiles" it: it runs the stride-prefetching
//! optimizer *with the actual arguments of the pending invocation* (the
//! paper's key enabler) and thereafter executes the optimized body at
//! compiled-code cost.
//!
//! The VM also:
//!
//! * triggers the mark-sweep-compact GC when allocation fails, forwarding
//!   every root in its frames and statics;
//! * counts retired instructions and per-method cycle attribution (the
//!   paper's Table 3 "% of time in compiled code");
//! * optionally records the off-line address profile used by the Wu et al.
//!   ablation.

pub mod config;
pub(crate) mod decode;
pub(crate) mod dispatch;
pub mod error;
pub(crate) mod fuse;
pub mod inline;
pub mod passes;
pub mod pic;
pub mod predecode;
pub mod stats;
pub mod unroll;
pub mod vm;

pub use config::VmConfig;
pub use error::VmError;
pub use pic::PicStats;
pub use predecode::Predecoded;
pub use stats::VmStats;
pub use vm::Vm;
