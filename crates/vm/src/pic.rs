//! Polymorphic inline caches for call-site body resolution.
//!
//! This IR has direct calls only, so the polymorphism a call site sees is
//! not receiver classes but *code revisions*: each method's installed body
//! changes over time (interpreted original → JIT generation 0 → adaptive
//! deopt back to the original → generation 1 → …). Every mutation of the
//! installed body bumps the method's revision counter, and a PIC way is a
//! `(revision, resolved activation target)` pair — so a hit can skip the
//! `compiled[mid]` lookup and the body selection entirely, while any stale
//! way misses by construction.
//!
//! Caches are 2-way with a move-to-front monomorphic fast path (way 0);
//! overflowing the second way marks the site megamorphic, which disables
//! the cache and routes every call through the full resolution slow path.
//! PIC state is host-only: hits and misses resolve to the identical body
//! the slow path would pick, so simulated numbers never depend on cache
//! state.

use spf_trace::TraceSink;

use crate::vm::Installed;

/// One cache way: the resolved target for a method code revision.
pub(crate) struct PicWay<S: TraceSink> {
    pub rev: u32,
    pub target: Installed<S>,
}

/// A per-call-site inline cache.
pub(crate) struct CallPic<S: TraceSink> {
    pub ways: [Option<PicWay<S>>; 2],
    pub megamorphic: bool,
}

impl<S: TraceSink> Default for CallPic<S> {
    fn default() -> Self {
        CallPic {
            ways: [None, None],
            megamorphic: false,
        }
    }
}

impl<S: TraceSink> CallPic<S> {
    /// Looks up the target cached for `rev`. A hit in way 1 swaps it to
    /// way 0, keeping the monomorphic common case a single compare.
    #[inline(always)]
    pub fn lookup(&mut self, rev: u32) -> Option<Installed<S>> {
        if self.megamorphic {
            return None;
        }
        if let Some(w) = &self.ways[0] {
            if w.rev == rev {
                return Some(w.target.clone());
            }
        }
        if let Some(w) = &self.ways[1] {
            if w.rev == rev {
                let t = w.target.clone();
                self.ways.swap(0, 1);
                return Some(t);
            }
        }
        None
    }

    /// Records the slow path's resolution for `rev`. With both ways full of
    /// other revisions the site goes megamorphic and the cache is dropped.
    pub fn insert(&mut self, rev: u32, target: Installed<S>) {
        if self.megamorphic {
            return;
        }
        let way = PicWay { rev, target };
        if self.ways[0].is_none() {
            self.ways[0] = Some(way);
        } else if self.ways[1].is_none() {
            // New entry becomes the monomorphic way.
            self.ways.swap(0, 1);
            self.ways[0] = Some(way);
        } else {
            self.megamorphic = true;
            self.ways = [None, None];
        }
    }
}

/// Host-side PIC effectiveness counters (see [`crate::Vm::pic_stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PicStats {
    /// Calls resolved by a cache hit.
    pub hits: u64,
    /// Calls that took the full resolution slow path.
    pub misses: u64,
    /// Call sites with PIC slots allocated.
    pub sites: usize,
    /// Sites that overflowed both ways and disabled their cache.
    pub megamorphic_sites: usize,
}
