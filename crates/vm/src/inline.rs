//! Method inlining for the baseline JIT.
//!
//! The paper's JIT inlines aggressively — §4.1 notes that `findInMemory`
//! "is inlined into" the hottest jess method. This pass inlines direct
//! calls to small, non-recursive callees, exposing the callee's loads to
//! the caller's loop analyses (and therefore to the prefetching pass).
//! It is off by default ([`crate::VmConfig::inline_small_methods`]) so the
//! figure experiments match the workload structure described in
//! DESIGN.md; turning it on is a supported ablation.

use spf_ir::{Block, Function, Instr, MethodId, Program, Reg, Terminator};

/// Upper bound on callee size (instructions) for inlining.
pub const DEFAULT_MAX_CALLEE_INSTRS: usize = 40;

/// Upper bound on how many instructions inlining may add to a function.
pub const DEFAULT_MAX_GROWTH: usize = 400;

/// Whether `callee` (directly) calls itself or `self_mid`.
fn is_recursive_or_mutual(program: &Program, callee: MethodId, self_mid: MethodId) -> bool {
    let func = program.method(callee).func();
    func.instr_sites().any(|s| match func.instr(s) {
        Instr::Call { callee: c, .. } => *c == callee || *c == self_mid,
        _ => false,
    })
}

/// Returns the first inlinable call site of `func`, if any.
fn find_site(
    program: &Program,
    func: &Function,
    self_mid: MethodId,
    max_callee_instrs: usize,
) -> Option<(spf_ir::BlockId, usize, MethodId)> {
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            if let Instr::Call { callee, .. } = instr {
                if *callee == self_mid {
                    continue;
                }
                let cf = program.method(*callee).func();
                if cf.block_count() == 1
                    && matches!(cf.block(cf.entry()).term, Terminator::Unreachable)
                {
                    continue; // declared but undefined body
                }
                if cf.instr_count() <= max_callee_instrs
                    && !is_recursive_or_mutual(program, *callee, self_mid)
                {
                    return Some((b, i, *callee));
                }
            }
        }
    }
    None
}

/// Inlines one call site; returns the transformed function.
fn inline_one(
    program: &Program,
    func: &Function,
    site: (spf_ir::BlockId, usize, MethodId),
) -> Function {
    let (bb, idx, callee_id) = site;
    let callee = program.method(callee_id).func();
    let mut out = func.clone();

    let Instr::Call { dst, args, .. } = func.instr(spf_ir::InstrRef::new(bb, idx)).clone() else {
        unreachable!("site is a call");
    };

    // Map callee registers to fresh caller registers.
    let reg_map: Vec<Reg> = (0..callee.reg_count())
        .map(|i| out.new_reg(callee.reg_ty(Reg::new(i))))
        .collect();
    let map = |r: Reg| reg_map[r.index()];

    // Map callee blocks to fresh caller blocks.
    let block_map: Vec<spf_ir::BlockId> = callee.block_ids().map(|_| out.add_block()).collect();
    let bmap = |b: spf_ir::BlockId| block_map[b.index()];

    // Continuation block: the tail of the split caller block.
    let cont = out.add_block();
    {
        let original = out.block_mut(bb);
        let tail: Vec<Instr> = original.instrs.drain(idx + 1..).collect();
        original.instrs.pop(); // the call itself
        let term = std::mem::replace(&mut original.term, Terminator::Unreachable);
        // Argument moves, then jump to the inlined entry.
        for (k, a) in args.iter().enumerate() {
            original.instrs.push(Instr::Move {
                dst: reg_map[k],
                src: *a,
            });
        }
        original.term = Terminator::Jump(bmap(callee.entry()));
        *out.block_mut(cont) = Block { instrs: tail, term };
    }

    // Copy callee blocks with registers and targets remapped; returns
    // become moves into the call's destination plus jumps to `cont`.
    for cb in callee.block_ids() {
        let src = callee.block(cb);
        let mut instrs = Vec::with_capacity(src.instrs.len());
        for instr in &src.instrs {
            instrs.push(remap_instr(instr, &map));
        }
        let term = match &src.term {
            Terminator::Jump(t) => Terminator::Jump(bmap(*t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: map(*cond),
                then_bb: bmap(*then_bb),
                else_bb: bmap(*else_bb),
            },
            Terminator::Return(v) => {
                if let (Some(d), Some(r)) = (dst, v) {
                    instrs.push(Instr::Move {
                        dst: d,
                        src: map(*r),
                    });
                }
                Terminator::Jump(cont)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
        *out.block_mut(bmap(cb)) = Block { instrs, term };
    }
    out
}

fn remap_instr(instr: &Instr, map: &impl Fn(Reg) -> Reg) -> Instr {
    use spf_ir::PrefetchAddr as PA;
    let map_addr = |a: &PA| match *a {
        PA::FieldOf { base, delta } => PA::FieldOf {
            base: map(base),
            delta,
        },
        PA::ArrayElem {
            arr,
            idx,
            scale,
            delta,
        } => PA::ArrayElem {
            arr: map(arr),
            idx: map(idx),
            scale,
            delta,
        },
    };
    match instr.clone() {
        Instr::Const { dst, value } => Instr::Const {
            dst: map(dst),
            value,
        },
        Instr::Move { dst, src } => Instr::Move {
            dst: map(dst),
            src: map(src),
        },
        Instr::Bin { dst, op, a, b } => Instr::Bin {
            dst: map(dst),
            op,
            a: map(a),
            b: map(b),
        },
        Instr::Un { dst, op, src } => Instr::Un {
            dst: map(dst),
            op,
            src: map(src),
        },
        Instr::Cmp { dst, op, a, b } => Instr::Cmp {
            dst: map(dst),
            op,
            a: map(a),
            b: map(b),
        },
        Instr::Convert { dst, conv, src } => Instr::Convert {
            dst: map(dst),
            conv,
            src: map(src),
        },
        Instr::GetField { dst, obj, field } => Instr::GetField {
            dst: map(dst),
            obj: map(obj),
            field,
        },
        Instr::PutField { obj, field, src } => Instr::PutField {
            obj: map(obj),
            field,
            src: map(src),
        },
        Instr::GetStatic { dst, sid } => Instr::GetStatic { dst: map(dst), sid },
        Instr::PutStatic { sid, src } => Instr::PutStatic { sid, src: map(src) },
        Instr::ALoad {
            dst,
            arr,
            idx,
            elem,
        } => Instr::ALoad {
            dst: map(dst),
            arr: map(arr),
            idx: map(idx),
            elem,
        },
        Instr::AStore {
            arr,
            idx,
            src,
            elem,
        } => Instr::AStore {
            arr: map(arr),
            idx: map(idx),
            src: map(src),
            elem,
        },
        Instr::ArrayLen { dst, arr } => Instr::ArrayLen {
            dst: map(dst),
            arr: map(arr),
        },
        Instr::New { dst, class } => Instr::New {
            dst: map(dst),
            class,
        },
        Instr::NewArray { dst, elem, len } => Instr::NewArray {
            dst: map(dst),
            elem,
            len: map(len),
        },
        Instr::Call { dst, callee, args } => Instr::Call {
            dst: dst.map(&map),
            callee,
            args: args.into_iter().map(&map).collect(),
        },
        Instr::Prefetch { addr, kind } => Instr::Prefetch {
            addr: map_addr(&addr),
            kind,
        },
        Instr::SpecLoad { dst, addr } => Instr::SpecLoad {
            dst: map(dst),
            addr: map_addr(&addr),
        },
    }
}

/// Repeatedly inlines small direct non-recursive callees into `func`,
/// bounded by size growth. `self_mid` is the id of the method being
/// compiled (so self-calls are never inlined).
pub fn inline_small_calls(
    program: &Program,
    func: &Function,
    self_mid: MethodId,
    max_callee_instrs: usize,
    max_growth: usize,
) -> Function {
    let budget = func.instr_count() + max_growth;
    let mut cur = func.clone();
    while cur.instr_count() < budget {
        let Some(site) = find_site(program, &cur, self_mid, max_callee_instrs) else {
            break;
        };
        let callee_size = program.method(site.2).func().instr_count();
        if cur.instr_count() + callee_size > budget {
            break;
        }
        cur = inline_one(program, &cur, site);
    }
    debug_assert!(
        spf_ir::verify::verify(program, &cur).is_ok(),
        "inlining produced invalid IR: {:?}",
        spf_ir::verify::verify(program, &cur)
    );
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmConfig;
    use crate::vm::Vm;
    use spf_heap::Value;
    use spf_ir::{CmpOp, ElemTy, ProgramBuilder, Ty};
    use spf_memsim::ProcessorConfig;

    fn build_with_helper() -> (Program, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let (_c, fs) = pb.add_class("N", &[("v", ElemTy::I32)]);
        let get = {
            let mut b = pb.function("get", &[Ty::Ref], Some(Ty::I32));
            let o = b.param(0);
            let v = b.getfield(o, fs[0]);
            let one = b.const_i32(1);
            let w = b.add(v, one);
            b.ret(Some(w));
            b.finish()
        };
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let (cls, vfs) = (b.program().class_by_name("N").unwrap(), fs.clone());
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let o = b.new_object(cls);
                b.putfield(o, vfs[0], i);
                let v = b.call(get, &[o]);
                let s = b.add(acc, v);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let main = b.finish();
        (pb.finish(), main, get)
    }

    #[test]
    fn inlining_removes_the_call_and_preserves_semantics() {
        let (p, main, _) = build_with_helper();
        let func = p.method(main).func();
        let inlined = inline_small_calls(&p, func, main, 40, 400);
        let calls = inlined
            .instr_sites()
            .filter(|&s| matches!(inlined.instr(s), Instr::Call { .. }))
            .count();
        assert_eq!(calls, 0, "helper call inlined");
        // Execute both versions.
        let mut vm = Vm::new(
            p.clone(),
            VmConfig {
                compile_threshold: u32::MAX,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let expected = vm.call(main, &[Value::I32(20)]).unwrap();
        let mut p2 = p.clone();
        p2.replace_method_body(main, inlined);
        let mut vm2 = Vm::new(
            p2,
            VmConfig {
                compile_threshold: u32::MAX,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        assert_eq!(vm2.call(main, &[Value::I32(20)]).unwrap(), expected);
        assert_eq!(expected, Some(Value::I32((0..20).map(|i| i + 1).sum())));
    }

    #[test]
    fn recursive_callees_are_not_inlined() {
        let mut pb = ProgramBuilder::new();
        let fib = pb.declare("fib", &[Ty::I32], Some(Ty::I32));
        {
            let mut b = pb.define(fib);
            let n = b.param(0);
            let two = b.const_i32(2);
            let c = b.lt(n, two);
            b.if_(c, |b| b.ret(Some(n)));
            let one = b.const_i32(1);
            let n1 = b.sub(n, one);
            let a = b.call(fib, &[n1]);
            let n2 = b.sub(n, two);
            let bb = b.call(fib, &[n2]);
            let s = b.add(a, bb);
            b.ret(Some(s));
            b.finish();
        }
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let r = b.call(fib, &[n]);
        b.ret(Some(r));
        let main = b.finish();
        let p = pb.finish();
        let inlined = inline_small_calls(&p, p.method(main).func(), main, 40, 400);
        let calls = inlined
            .instr_sites()
            .filter(|&s| matches!(inlined.instr(s), Instr::Call { .. }))
            .count();
        assert_eq!(calls, 1, "recursive fib stays a call");
    }

    #[test]
    fn growth_is_bounded() {
        let (p, main, _) = build_with_helper();
        let func = p.method(main).func();
        let inlined = inline_small_calls(&p, func, main, 40, 2);
        // Budget of 2 extra instructions cannot fit the callee: unchanged.
        assert_eq!(inlined.instr_count(), func.instr_count());
    }

    #[test]
    fn void_callees_inline() {
        let mut pb = ProgramBuilder::new();
        let sid = pb.add_static("g", ElemTy::I32);
        let bump = {
            let mut b = pb.function("bump", &[Ty::I32], None);
            let x = b.param(0);
            let g = b.getstatic(sid);
            let s = b.add(g, x);
            b.putstatic(sid, s);
            b.finish()
        };
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                b.call_void(bump, &[i]);
            },
        );
        let out = b.getstatic(sid);
        b.ret(Some(out));
        let main = b.finish();
        let p = pb.finish();
        let inlined = inline_small_calls(&p, p.method(main).func(), main, 40, 400);
        let calls = inlined
            .instr_sites()
            .filter(|&s| matches!(inlined.instr(s), Instr::Call { .. }))
            .count();
        assert_eq!(calls, 0);
        let mut p2 = p.clone();
        p2.replace_method_body(main, inlined);
        let mut vm = Vm::new(p2, VmConfig::default(), ProcessorConfig::pentium4());
        assert_eq!(
            vm.call(main, &[Value::I32(5)]).unwrap(),
            Some(Value::I32(10))
        );
    }
}
