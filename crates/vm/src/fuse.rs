//! Peephole superinstruction fusion over decoded blocks.
//!
//! A greedy left-to-right scan merges the hottest adjacent opcode pairs
//! into single fused ops. Fusion is done strictly within a block (only
//! block entries are jump targets, so no control flow can land between two
//! fused components), and the block's terminator participates as the last
//! op (enabling the `Cmp`+`Branch` loop back-edge pattern).
//!
//! Fused handlers run the exact component sequences of their unfused forms
//! (see `dispatch`), so fusion never changes a simulated number — only how
//! many host-side dispatches a simulated instruction costs.

use spf_ir::{pack_reg_pair, Reg};
use spf_trace::TraceSink;

use crate::decode::{DecOp, Kind, Op};
use crate::dispatch as h;

/// Fuses adjacent pairs in one decoded block (terminator included as the
/// last element); returns the number of superinstructions formed.
pub(crate) fn fuse_block<S: TraceSink>(ops: &mut Vec<DecOp<S>>) -> u32 {
    let mut fused = scan(ops, try_fuse::<S>);
    // Second round: first-pass superinstructions can absorb a neighbour
    // themselves (e.g. BinMove + Jump, Const + CmpBranch).
    fused += scan(ops, try_fuse2::<S>);
    fused
}

/// One greedy left-to-right pairing pass over a block with `merge`.
fn scan<S: TraceSink>(
    ops: &mut Vec<DecOp<S>>,
    merge: fn(&DecOp<S>, &DecOp<S>) -> Option<DecOp<S>>,
) -> u32 {
    let mut out: Vec<DecOp<S>> = Vec::with_capacity(ops.len());
    let mut fused = 0u32;
    let mut i = 0;
    while i < ops.len() {
        if i + 1 < ops.len() {
            if let Some(merged) = merge(&ops[i], &ops[i + 1]) {
                out.push(merged);
                fused += 1;
                i += 2;
                continue;
            }
        }
        out.push(DecOp {
            op: ops[i].op,
            kind: ops[i].kind,
        });
        i += 1;
    }
    *ops = out;
    fused
}

fn reg(idx: u32) -> Reg {
    Reg::new(idx as usize)
}

fn try_fuse<S: TraceSink>(first: &DecOp<S>, second: &DecOp<S>) -> Option<DecOp<S>> {
    match (first.kind, second.kind) {
        // Cmp (a=dst, b=lhs, c=rhs, ext=cmpop) + Branch on that dst
        // (a=cond, b=then, c=else)  →  CmpBranch:
        //   a=dst, c=pack(lhs,rhs), ext=cmpop, b=then, d=else, site=cmp's.
        // Branch targets stay block ids here; the flattener patches
        // Kind::CmpBranch's b/d.
        (Kind::Cmp, Kind::Branch) if second.op.a == first.op.a => {
            let operands = pack_reg_pair(reg(first.op.b), reg(first.op.c))?;
            let mut op = Op::new(h::cmp_branch_handler::<S>(first.op.ext as u8));
            op.a = first.op.a;
            op.c = operands;
            op.ext = first.op.ext;
            op.b = second.op.b;
            op.d = second.op.c;
            op.site = first.op.site;
            Some(DecOp {
                op,
                kind: Kind::CmpBranch,
            })
        }
        // Const (a=dst, imm=payload, ext=kind) + Bin (a=dst, b=lhs, c=rhs,
        // ext=binop)  →  ConstBin:
        //   a=const dst, imm=payload, ext=kind | binop<<8,
        //   b=bin dst, c=bin lhs, d=bin rhs, site2=bin's site.
        (Kind::Const, Kind::Bin) => {
            let mut op = Op::new(h::const_bin_handler::<S>(
                first.op.ext as u8,
                second.op.ext as u8,
            ));
            op.a = first.op.a;
            op.imm = first.op.imm;
            op.ext = first.op.ext | (second.op.ext << 8);
            op.b = second.op.a;
            op.c = second.op.b;
            op.d = second.op.c;
            op.site = first.op.site;
            op.site2 = second.op.site;
            Some(DecOp {
                op,
                kind: Kind::Plain,
            })
        }
        // GetField (a=dst, b=obj, imm=offset, ext=elem) + Bin  →
        // GetFieldBin: a=gf dst, b=obj, imm=offset,
        //   ext=elem | binop<<8, c=bin dst, d=pack(bin lhs, bin rhs).
        (Kind::GetField, Kind::Bin) => {
            let operands = pack_reg_pair(reg(second.op.b), reg(second.op.c))?;
            let mut op = Op::new(h::getfield_bin_handler::<S>(
                first.op.ext as u8,
                second.op.ext as u8,
            ));
            op.a = first.op.a;
            op.b = first.op.b;
            op.imm = first.op.imm;
            op.ext = first.op.ext | (second.op.ext << 8);
            op.c = second.op.a;
            op.d = operands;
            op.site = first.op.site;
            op.site2 = second.op.site;
            Some(DecOp {
                op,
                kind: Kind::Plain,
            })
        }
        // Bin + ALoad (a=dst, b=arr, c=idx, ext=elem)  →  BinALoad:
        //   a=bin dst, d=pack(bin lhs, bin rhs), ext=elem | binop<<8,
        //   b=pack(aload dst, arr), c=idx.
        (Kind::Bin, Kind::ALoad) => {
            let bin_operands = pack_reg_pair(reg(first.op.b), reg(first.op.c))?;
            let dst_arr = pack_reg_pair(reg(second.op.a), reg(second.op.b))?;
            let mut op = Op::new(h::bin_aload_handler::<S>(
                second.op.ext as u8,
                first.op.ext as u8,
            ));
            op.a = first.op.a;
            op.d = bin_operands;
            op.ext = second.op.ext | (first.op.ext << 8);
            op.b = dst_arr;
            op.c = second.op.c;
            op.site = first.op.site;
            op.site2 = second.op.site;
            Some(DecOp {
                op,
                kind: Kind::Plain,
            })
        }
        // Bin (a=dst, b=lhs, c=rhs, ext=binop) + Move (a=dst, b=src)  →
        // BinMove: a=bin dst, b=bin lhs, c=bin rhs, ext=binop,
        //   d=pack(move dst, move src), site2=move's site.
        (Kind::Bin, Kind::Move) => {
            let mv = pack_reg_pair(reg(second.op.a), reg(second.op.b))?;
            let mut op = Op::new(h::bin_move_handler::<S>(first.op.ext as u8));
            op.a = first.op.a;
            op.b = first.op.b;
            op.c = first.op.c;
            op.ext = first.op.ext;
            op.d = mv;
            op.site = first.op.site;
            op.site2 = second.op.site;
            Some(DecOp {
                op,
                kind: Kind::BinMove,
            })
        }
        // Move (a=dst, b=src) + Jump terminator (a=target block id)  →
        // MoveJump: b=move dst, c=move src, a=target (patched like Jump).
        (Kind::Move, Kind::Jump) => {
            let mut op = Op::new(h::h_move_jump::<S> as crate::dispatch::Handler<S>);
            op.b = first.op.a;
            op.c = first.op.b;
            op.a = second.op.a;
            op.site = first.op.site;
            Some(DecOp {
                op,
                kind: Kind::MoveJump,
            })
        }
        // ALoad (a=dst, b=arr, c=idx, ext=elem) + Bin  →  ALoadBin:
        //   a=aload dst, b=pack(arr, idx), c=bin dst,
        //   d=pack(bin lhs, bin rhs), ext=elem | binop<<8.
        (Kind::ALoad, Kind::Bin) => {
            let arr_idx = pack_reg_pair(reg(first.op.b), reg(first.op.c))?;
            let bin_operands = pack_reg_pair(reg(second.op.b), reg(second.op.c))?;
            let mut op = Op::new(h::aload_bin_handler::<S>(
                first.op.ext as u8,
                second.op.ext as u8,
            ));
            op.a = first.op.a;
            op.b = arr_idx;
            op.c = second.op.a;
            op.d = bin_operands;
            op.ext = first.op.ext | (second.op.ext << 8);
            op.site = first.op.site;
            op.site2 = second.op.site;
            Some(DecOp {
                op,
                kind: Kind::Plain,
            })
        }
        // Bin (a=dst, b=lhs, c=rhs, ext=binop) + Jump terminator  →
        // BinJump: bin operands unchanged, d=target (patched).
        (Kind::Bin, Kind::Jump) => {
            let mut op = Op::new(h::bin_jump_handler::<S>(first.op.ext as u8));
            op.a = first.op.a;
            op.b = first.op.b;
            op.c = first.op.c;
            op.ext = first.op.ext;
            op.d = second.op.a;
            op.site = first.op.site;
            Some(DecOp {
                op,
                kind: Kind::BinJump,
            })
        }
        // Move (a=dst, b=src) + ALoad (a=dst, b=arr, c=idx, ext=elem)  →
        // MoveALoad: c=pack(move dst, src), a=aload dst, b=pack(arr, idx),
        // ext=elem.
        (Kind::Move, Kind::ALoad) => {
            let mv = pack_reg_pair(reg(first.op.a), reg(first.op.b))?;
            let arr_idx = pack_reg_pair(reg(second.op.b), reg(second.op.c))?;
            let mut op = Op::new(h::move_aload_handler::<S>(second.op.ext as u8));
            op.c = mv;
            op.a = second.op.a;
            op.b = arr_idx;
            op.ext = second.op.ext;
            op.site = first.op.site;
            op.site2 = second.op.site;
            Some(DecOp {
                op,
                kind: Kind::Plain,
            })
        }
        _ => None,
    }
}

/// Second-round patterns: pairs whose first element is itself a fused op
/// from the first pass (its operand packing left intact).
fn try_fuse2<S: TraceSink>(first: &DecOp<S>, second: &DecOp<S>) -> Option<DecOp<S>> {
    match (first.kind, second.kind) {
        // BinMove + Jump terminator  →  BinMoveJump: BinMove operands
        // unchanged, imm=target (patched).
        (Kind::BinMove, Kind::Jump) => {
            let mut op = first.op;
            op.handler = h::bin_move_jump_handler::<S>((first.op.ext & 0xff) as u8);
            op.imm = second.op.a as i64;
            Some(DecOp {
                op,
                kind: Kind::BinMoveJump,
            })
        }
        _ => None,
    }
}
