//! VM configuration.

use spf_adapt::AdaptConfig;
use spf_core::PrefetchOptions;

/// Cycle cost of executing one instruction in compiled code (memory
/// latencies come on top, from the memory simulator).
pub const COMPILED_INSTR_COST: u64 = 1;

/// Extra cycle cost of a method call/return pair (frame setup).
pub const CALL_OVERHEAD: u64 = 5;

/// Approximate cycles per wall-clock nanosecond used to charge JIT
/// compilation time to the simulated clock (a 2 GHz machine, like the
/// paper's Pentium 4).
pub const CYCLES_PER_NANO: f64 = 2.0;

/// Base cycle cost charged for an adaptive recompilation (generation at
/// least 1). Unlike first-time JIT compilations — which happen during
/// warm-up, outside the measurement window — recompilations occur during
/// measured steady-state runs, so their cost must be a deterministic
/// function of the simulation, never of host wall-clock time.
pub const RECOMPILE_BASE_CYCLES: u64 = 1_000;

/// Per-instruction cycle cost added to [`RECOMPILE_BASE_CYCLES`] for an
/// adaptive recompilation.
pub const RECOMPILE_CYCLES_PER_INSTR: u64 = 20;

/// Cycle cost of patching one stale loop's prefetch sites to no-ops
/// (tier-1 invalidation). A code patch, not a compile: far below
/// [`RECOMPILE_BASE_CYCLES`], so invalidating one loop never costs like
/// recompiling the method.
pub const LOOP_PATCH_CYCLES: u64 = 50;

/// Base cycle cost of re-inspecting and repatching one invalidated loop
/// (tier-2 re-entry), plus [`RECOMPILE_CYCLES_PER_INSTR`] per instruction
/// in that loop's blocks. Deterministic, like the recompile constants:
/// repatches run inside measured windows.
pub const LOOP_RECOMPILE_BASE_CYCLES: u64 = 200;

/// Configuration of a [`crate::Vm`].
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Heap capacity in bytes.
    pub heap_bytes: usize,
    /// Invocation count at which a method is JIT-compiled (mixed mode).
    pub compile_threshold: u32,
    /// Cycle multiplier for interpreted (not yet compiled) code.
    pub interp_cost_multiplier: u64,
    /// The prefetching configuration used at JIT compilation.
    pub prefetch: PrefetchOptions,
    /// Record an off-line address profile of every load (Wu et al.
    /// ablation). Expensive; off by default.
    pub collect_offline_profile: bool,
    /// Maximum call-stack depth.
    pub max_stack_depth: usize,
    /// Inline small non-recursive callees before optimizing (the paper's
    /// JIT inlines; off by default so the figure experiments match the
    /// documented workload structure).
    pub inline_small_methods: bool,
    /// Unroll innermost loops this many times before optimizing (1 = off).
    /// The paper's §3.3 suggests unrolling to stretch the effective
    /// prefetch scheduling distance; an ablation knob here.
    pub unroll_factor: u32,
    /// Adaptive-reprofiling thresholds (only consulted when
    /// `prefetch.mode` is [`spf_core::PrefetchMode::Adaptive`]).
    pub adapt: AdaptConfig,
    /// Fuse hot adjacent opcode pairs into superinstruction handlers when
    /// pre-decoding bodies for the threaded interpreter. Superinstructions
    /// execute the exact per-component cost/counter sequence of their
    /// unfused forms, so simulated numbers are identical either way; the
    /// knob exists for differential testing and host-perf triage.
    pub fuse_superinstructions: bool,
    /// Decouple compilation from execution, production-JVM style: when a
    /// method crosses the compile threshold the VM *enqueues* a compile
    /// request (drained via [`crate::Vm::take_compile_requests`]) and keeps
    /// interpreting until an external driver — the `spf-serve` compilation
    /// queue — calls [`crate::Vm::compile_pending`]. Off by default: the
    /// matrix's synchronous JIT-at-threshold behavior is untouched.
    pub async_compile: bool,
    /// Retain the arguments of the invocation that triggered each deopt,
    /// so [`crate::Vm::reenqueue_stranded`] can recompile stranded
    /// methods without waiting for re-invocation. Off by default:
    /// retained values are GC roots, and extending liveness would perturb
    /// collection behavior (epochs, moved objects) of every baseline run.
    /// Only the chaos-mode serving harness switches this on.
    pub retain_deopt_args: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            heap_bytes: 64 << 20,
            compile_threshold: 2,
            interp_cost_multiplier: 10,
            prefetch: PrefetchOptions::default(),
            collect_offline_profile: false,
            max_stack_depth: 4096,
            inline_small_methods: false,
            unroll_factor: 1,
            adapt: AdaptConfig::default(),
            fuse_superinstructions: true,
            async_compile: false,
            retain_deopt_args: false,
        }
    }
}

impl VmConfig {
    /// Baseline configuration: prefetching off.
    pub fn baseline() -> Self {
        VmConfig {
            prefetch: PrefetchOptions::off(),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::PrefetchMode;

    #[test]
    fn defaults() {
        let c = VmConfig::default();
        assert!(c.heap_bytes > 0);
        assert_eq!(c.prefetch.mode, PrefetchMode::InterIntra);
        assert_eq!(VmConfig::baseline().prefetch.mode, PrefetchMode::Off);
    }
}
