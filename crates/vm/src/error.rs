//! VM runtime errors (the moral equivalents of Java runtime exceptions).

use spf_heap::Addr;
use spf_ir::InstrRef;

/// A runtime error that aborts execution.
#[derive(Clone, PartialEq, Debug)]
pub enum VmError {
    /// Dereferenced a null reference.
    NullPointer {
        /// Where it happened.
        at: InstrRef,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Where it happened.
        at: InstrRef,
        /// The offending index.
        index: i32,
        /// The array length.
        len: u64,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Where it happened.
        at: InstrRef,
    },
    /// Heap exhausted even after collection.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// Call-stack depth limit exceeded.
    StackOverflow,
    /// An `Unreachable` terminator was executed (a builder bug).
    UnreachableExecuted,
    /// A typed heap access faulted (an engine bug).
    BadAccess {
        /// The faulting address.
        addr: Addr,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::NullPointer { at } => write!(f, "null pointer dereference at {at}"),
            VmError::IndexOutOfBounds { at, index, len } => {
                write!(f, "index {index} out of bounds (len {len}) at {at}")
            }
            VmError::DivisionByZero { at } => write!(f, "division by zero at {at}"),
            VmError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            VmError::StackOverflow => f.write_str("stack overflow"),
            VmError::UnreachableExecuted => f.write_str("unreachable code executed"),
            VmError::BadAccess { addr } => write!(f, "bad access at {addr:#x}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = VmError::IndexOutOfBounds {
            at: InstrRef::new(spf_ir::BlockId::new(1), 2),
            index: 9,
            len: 4,
        };
        assert_eq!(e.to_string(), "index 9 out of bounds (len 4) at bb1:2");
        assert!(VmError::StackOverflow.to_string().contains("overflow"));
    }
}
