//! Pre-decoding: lowering a [`Function`] into a flat array of threaded ops.
//!
//! Each op is a fixed-size word carrying a handler `fn` pointer and packed
//! operands; the run loop is then one indirect call per instruction instead
//! of a branch tree over the `Instr` enum. Decoding resolves everything
//! that is static at install time: field offsets and element types (the
//! degenerate monomorphic case of a field inline cache — this IR has one
//! class per field, so the "cache" never misses and bakes to a constant),
//! static addresses, class sizes, and branch targets (as flat pcs).
//!
//! Pipeline: lower each block to ops → peephole-fuse adjacent pairs
//! ([`crate::fuse`]) → flatten blocks in id order → patch branch targets
//! from block ids to flat pcs.

use std::sync::Arc;

use spf_heap::{static_addr, Layout, Value};
use spf_ir::{
    packed, Const, Function, Instr, InstrRef, PrefetchAddr, PrefetchKind, Program, Reg, Terminator,
    Ty,
};
use spf_trace::TraceSink;

use crate::dispatch::{self as h, Handler};

/// One threaded op: a handler plus packed operands.
///
/// Operand meaning is per-handler (documented at each `lower` arm); `site`
/// and `site2` carry packed [`InstrRef`]s for error/profile attribution of
/// the op's first and (when fused) second component.
pub(crate) struct Op<S: TraceSink> {
    pub handler: Handler<S>,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub d: u32,
    pub ext: u32,
    pub imm: i64,
    pub site: u64,
    pub site2: u64,
}

impl<S: TraceSink> Clone for Op<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: TraceSink> Copy for Op<S> {}

impl<S: TraceSink> Op<S> {
    pub(crate) fn new(handler: Handler<S>) -> Self {
        Op {
            handler,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            ext: 0,
            imm: 0,
            site: 0,
            site2: 0,
        }
    }
}

/// Structural kind of a decoded op, used by the fusion pass to match
/// peephole patterns and by the flattener to find the fields that hold
/// block ids. Handler `fn`-pointer identity is deliberately not used for
/// either (the compiler may merge or duplicate monomorphized functions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kind {
    Plain,
    Const,
    Move,
    Bin,
    Cmp,
    GetField,
    ALoad,
    Jump,
    /// Fused Move + Jump; patched like [`Kind::Jump`] but kept distinct so
    /// second-round terminator fusion only matches plain jumps.
    MoveJump,
    Branch,
    CmpBranch,
    /// Fused Bin+Move (second-round fusion input; no patching).
    BinMove,
    /// Fused Bin+Jump; the flattener patches `d`.
    BinJump,
    /// Fused Bin+Move+Jump; the flattener patches `imm`.
    BinMoveJump,
}

/// A decoded op plus its kind; the kind is dropped once targets are
/// patched.
pub(crate) struct DecOp<S: TraceSink> {
    pub op: Op<S>,
    pub kind: Kind,
}

/// A function body lowered to threaded code. Shared (via `Arc`) between
/// every frame executing the body, across the whole VM, and — through
/// [`crate::Predecoded`] — across VMs on worker threads.
pub(crate) struct ThreadedCode<S: TraceSink> {
    /// The source IR (kept for site registration, GC reg typing via
    /// `reg_template`, external analyses, and re-decoding).
    pub src: Arc<Function>,
    /// The flat op array; block entries are op indices ("pcs").
    pub ops: Box<[Op<S>]>,
    /// Flat pc of the function's entry block.
    pub entry_pc: u32,
    /// Zero values per register, copied into each new frame.
    pub reg_template: Box<[Value]>,
    /// Indices of `Ref`-typed registers (GC root scan set).
    pub ref_regs: Box<[u32]>,
    /// Flattened call argument lists; each call op holds a (start, len)
    /// window.
    pub arg_pool: Box<[u32]>,
    /// Number of call sites; each gets a dense local PIC slot in `ext`,
    /// mapped to a per-VM slot via the installing VM's `pic_base`.
    pub call_sites: u32,
    /// Superinstructions formed by the fusion pass (host-side statistic).
    pub fused: u32,
}

/// Decodes `src` into threaded code. `fuse` enables superinstruction
/// fusion; either way the simulated semantics are identical.
pub(crate) fn decode<S: TraceSink>(
    program: &Program,
    layout: &Layout,
    src: &Arc<Function>,
    fuse: bool,
) -> ThreadedCode<S> {
    let func = src.as_ref();
    let reg_count = func.reg_count();
    let mut arg_pool: Vec<u32> = Vec::new();
    let mut call_sites: u32 = 0;
    let mut blocks: Vec<Vec<DecOp<S>>> = Vec::new();
    for bid in func.block_ids() {
        let block = func.block(bid);
        let mut ops = Vec::with_capacity(block.instrs.len() + 1);
        for (i, instr) in block.instrs.iter().enumerate() {
            let site = InstrRef::new(bid, i).pack();
            let d = lower(
                program,
                layout,
                instr,
                site,
                reg_count,
                &mut arg_pool,
                &mut call_sites,
            );
            ops.push(d);
        }
        ops.push(lower_term(&block.term, reg_count));
        blocks.push(ops);
    }
    let mut fused = 0;
    if fuse {
        for ops in &mut blocks {
            fused += crate::fuse::fuse_block(ops);
        }
    }
    // Flatten blocks in id order, recording each block's entry pc, then
    // patch jump/branch targets from block ids to pcs.
    let mut block_entry = vec![0u32; blocks.len()];
    let mut flat: Vec<DecOp<S>> = Vec::new();
    for (b, ops) in blocks.into_iter().enumerate() {
        block_entry[b] = flat.len() as u32;
        flat.extend(ops);
    }
    let ops: Vec<Op<S>> = flat
        .into_iter()
        .map(|d| {
            let mut op = d.op;
            match d.kind {
                Kind::Jump | Kind::MoveJump => op.a = block_entry[op.a as usize],
                Kind::Branch => {
                    op.b = block_entry[op.b as usize];
                    op.c = block_entry[op.c as usize];
                }
                Kind::CmpBranch => {
                    op.b = block_entry[op.b as usize];
                    op.d = block_entry[op.d as usize];
                }
                Kind::BinJump => op.d = block_entry[op.d as usize],
                Kind::BinMoveJump => {
                    op.imm = block_entry[op.imm as usize] as i64;
                }
                _ => {}
            }
            op
        })
        .collect();
    let reg_template: Box<[Value]> = (0..func.reg_count())
        .map(|i| Value::zero_of(func.reg_ty(Reg::new(i))))
        .collect();
    let ref_regs: Box<[u32]> = (0..func.reg_count())
        .filter(|&i| func.reg_ty(Reg::new(i)) == Ty::Ref)
        .map(|i| i as u32)
        .collect();
    ThreadedCode {
        src: Arc::clone(src),
        entry_pc: block_entry[func.entry().index()],
        ops: ops.into_boxed_slice(),
        reg_template,
        ref_regs,
        arg_pool: arg_pool.into_boxed_slice(),
        call_sites,
        fused,
    }
}

fn lower<S: TraceSink>(
    program: &Program,
    layout: &Layout,
    instr: &Instr,
    site: u64,
    reg_count: usize,
    arg_pool: &mut Vec<u32>,
    call_sites: &mut u32,
) -> DecOp<S> {
    // SAFETY CONTRACT: every register operand packed into an op goes
    // through this validator. Frames allocate their register file at
    // exactly `reg_template.len() == reg_count`, so handlers may index
    // registers unchecked ([`crate::dispatch::Ctx::reg`]). A pass emitting
    // an out-of-range register is caught here, at install time, instead of
    // becoming UB on the hot path.
    let r = move |reg: Reg| -> u32 {
        assert!(
            reg.index() < reg_count,
            "decode: register r{} out of range (function has {reg_count})",
            reg.index()
        );
        reg.index() as u32
    };
    let (mut op, kind) = match *instr {
        // a=dst, imm=payload, ext=const kind (ext is only read by the fused
        // Const+Bin handler; singletons are specialized per kind).
        Instr::Const { dst, value } => {
            let (handler, imm, kind_code): (Handler<S>, i64, u8) = match value {
                Const::I32(x) => (h::h_const_i32, x as i64, packed::CONST_I32),
                Const::I64(x) => (h::h_const_i64, x, packed::CONST_I64),
                Const::F64(x) => (h::h_const_f64, x.to_bits() as i64, packed::CONST_F64),
                Const::Null => (h::h_const_null, 0, packed::CONST_NULL),
            };
            let mut op = Op::new(handler);
            op.a = r(dst);
            op.imm = imm;
            op.ext = kind_code as u32;
            (op, Kind::Const)
        }
        // a=dst, b=src.
        // a=dst, b=src.
        Instr::Move { dst, src } => {
            let mut op = Op::new(h::h_move as Handler<S>);
            op.a = r(dst);
            op.b = r(src);
            (op, Kind::Move)
        }
        // a=dst, b=lhs, c=rhs, ext=binop.
        Instr::Bin { dst, op: bop, a, b } => {
            let mut op = Op::new(h::bin_handler::<S>(bop.code()));
            op.a = r(dst);
            op.b = r(a);
            op.c = r(b);
            op.ext = bop.code() as u32;
            (op, Kind::Bin)
        }
        // a=dst, b=src, ext=unop.
        Instr::Un { dst, op: uop, src } => {
            let mut op = Op::new(h::un_handler::<S>(uop.code()));
            op.a = r(dst);
            op.b = r(src);
            op.ext = uop.code() as u32;
            (op, Kind::Plain)
        }
        // a=dst, b=lhs, c=rhs, ext=cmpop.
        Instr::Cmp { dst, op: cop, a, b } => {
            let mut op = Op::new(h::cmp_handler::<S>(cop.code()));
            op.a = r(dst);
            op.b = r(a);
            op.c = r(b);
            op.ext = cop.code() as u32;
            (op, Kind::Cmp)
        }
        // a=dst, b=src, ext=conv.
        Instr::Convert { dst, conv, src } => {
            let mut op = Op::new(h::conv_handler::<S>(conv.code()));
            op.a = r(dst);
            op.b = r(src);
            op.ext = conv.code() as u32;
            (op, Kind::Plain)
        }
        // a=dst, b=obj, imm=field offset, ext=elem type.
        Instr::GetField { dst, obj, field } => {
            let ty = program.field(field).ty;
            let mut op = Op::new(h::getfield_handler::<S>(ty.code()));
            op.a = r(dst);
            op.b = r(obj);
            op.imm = layout.field_offset(field) as i64;
            op.ext = ty.code() as u32;
            (op, Kind::GetField)
        }
        // a=obj, b=src, imm=field offset, ext=elem type.
        Instr::PutField { obj, field, src } => {
            let ty = program.field(field).ty;
            let mut op = Op::new(h::putfield_handler::<S>(ty.code()));
            op.a = r(obj);
            op.b = r(src);
            op.imm = layout.field_offset(field) as i64;
            op.ext = ty.code() as u32;
            (op, Kind::Plain)
        }
        // a=dst, b=static index, imm=static address.
        Instr::GetStatic { dst, sid } => {
            let mut op = Op::new(h::h_getstatic as Handler<S>);
            op.a = r(dst);
            op.b = sid.index() as u32;
            op.imm = static_addr(sid) as i64;
            (op, Kind::Plain)
        }
        // a=src, b=static index, imm=static address.
        Instr::PutStatic { sid, src } => {
            let mut op = Op::new(h::h_putstatic as Handler<S>);
            op.a = r(src);
            op.b = sid.index() as u32;
            op.imm = static_addr(sid) as i64;
            (op, Kind::Plain)
        }
        // a=dst, b=arr, c=idx, ext=elem type.
        Instr::ALoad {
            dst,
            arr,
            idx,
            elem,
        } => {
            let mut op = Op::new(h::aload_handler::<S>(elem.code()));
            op.a = r(dst);
            op.b = r(arr);
            op.c = r(idx);
            op.ext = elem.code() as u32;
            (op, Kind::ALoad)
        }
        // a=arr, b=idx, c=src, ext=elem type.
        Instr::AStore {
            arr,
            idx,
            src,
            elem,
        } => {
            let mut op = Op::new(h::astore_handler::<S>(elem.code()));
            op.a = r(arr);
            op.b = r(idx);
            op.c = r(src);
            op.ext = elem.code() as u32;
            (op, Kind::Plain)
        }
        // a=dst, b=arr.
        Instr::ArrayLen { dst, arr } => {
            let mut op = Op::new(h::h_arraylen as Handler<S>);
            op.a = r(dst);
            op.b = r(arr);
            (op, Kind::Plain)
        }
        // a=dst, b=class index, imm=class size.
        Instr::New { dst, class } => {
            let mut op = Op::new(h::h_new as Handler<S>);
            op.a = r(dst);
            op.b = class.index() as u32;
            op.imm = layout.class_size(class) as i64;
            (op, Kind::Plain)
        }
        // a=dst, b=len reg, ext=elem type.
        Instr::NewArray { dst, elem, len } => {
            let mut op = Op::new(h::h_newarray as Handler<S>);
            op.a = r(dst);
            op.b = r(len);
            op.ext = elem.code() as u32;
            (op, Kind::Plain)
        }
        // a=dst+1 (0 = none), b=callee index, c=arg pool start, d=arg
        // count, ext=local PIC slot.
        Instr::Call {
            dst,
            callee,
            ref args,
        } => {
            let mut op = Op::new(h::h_call as Handler<S>);
            op.a = dst.map_or(0, |d| r(d) + 1);
            op.b = callee.index() as u32;
            op.c = arg_pool.len() as u32;
            op.d = args.len() as u32;
            arg_pool.extend(args.iter().map(|&a| r(a)));
            op.ext = *call_sites;
            *call_sites += 1;
            (op, Kind::Plain)
        }
        // FieldOf: b=base, imm=delta. ArrayElem: b=arr, c=idx, d=scale,
        // imm=delta. Handler picks the prefetch kind via const generic.
        Instr::Prefetch { addr, kind } => {
            let guarded = kind == PrefetchKind::GuardedLoad;
            let mut op = match addr {
                PrefetchAddr::FieldOf { .. } => {
                    if guarded {
                        Op::new(h::h_prefetch_field::<S, true> as Handler<S>)
                    } else {
                        Op::new(h::h_prefetch_field::<S, false> as Handler<S>)
                    }
                }
                PrefetchAddr::ArrayElem { .. } => {
                    if guarded {
                        Op::new(h::h_prefetch_elem::<S, true> as Handler<S>)
                    } else {
                        Op::new(h::h_prefetch_elem::<S, false> as Handler<S>)
                    }
                }
            };
            pack_prefetch_addr(&mut op, addr, reg_count);
            (op, Kind::Plain)
        }
        // a=dst, address operands as for Prefetch.
        Instr::SpecLoad { dst, addr } => {
            let mut op = match addr {
                PrefetchAddr::FieldOf { .. } => Op::new(h::h_specload_field as Handler<S>),
                PrefetchAddr::ArrayElem { .. } => Op::new(h::h_specload_elem as Handler<S>),
            };
            op.a = r(dst);
            pack_prefetch_addr(&mut op, addr, reg_count);
            (op, Kind::Plain)
        }
    };
    op.site = site;
    DecOp { op, kind }
}

fn pack_prefetch_addr<S: TraceSink>(op: &mut Op<S>, addr: PrefetchAddr, reg_count: usize) {
    let r = |reg: Reg| -> u32 {
        assert!(reg.index() < reg_count, "decode: register out of range");
        reg.index() as u32
    };
    match addr {
        PrefetchAddr::FieldOf { base, delta } => {
            op.b = r(base);
            op.imm = delta;
        }
        PrefetchAddr::ArrayElem {
            arr,
            idx,
            scale,
            delta,
        } => {
            op.b = r(arr);
            op.c = r(idx);
            op.d = scale as u32;
            op.imm = delta;
        }
    }
}

fn lower_term<S: TraceSink>(term: &Terminator, reg_count: usize) -> DecOp<S> {
    let r = |reg: Reg| -> u32 {
        assert!(reg.index() < reg_count, "decode: register out of range");
        reg.index() as u32
    };
    match *term {
        // a=target block (patched to a pc).
        Terminator::Jump(t) => {
            let mut op = Op::new(h::h_jump as Handler<S>);
            op.a = t.index() as u32;
            DecOp {
                op,
                kind: Kind::Jump,
            }
        }
        // a=cond, b=then block, c=else block (both patched to pcs).
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            let mut op = Op::new(h::h_branch as Handler<S>);
            op.a = r(cond);
            op.b = then_bb.index() as u32;
            op.c = else_bb.index() as u32;
            DecOp {
                op,
                kind: Kind::Branch,
            }
        }
        // a=ret reg+1 (0 = none).
        Terminator::Return(v) => {
            let mut op = Op::new(h::h_ret as Handler<S>);
            op.a = v.map_or(0, |x| r(x) + 1);
            DecOp {
                op,
                kind: Kind::Plain,
            }
        }
        Terminator::Unreachable => DecOp {
            op: Op::new(h::h_unreachable as Handler<S>),
            kind: Kind::Plain,
        },
    }
}
