//! Baseline JIT optimization passes.
//!
//! These run on every method the VM compiles, in every configuration
//! (BASELINE, INTER, INTER+INTRA). They exist both to make compiled code
//! behave like compiled code and to give Figure 11's "additional
//! compilation time for prefetching / total JIT compilation time" a real
//! denominator: a JIT that does nothing else would make any pass look
//! expensive.
//!
//! Passes (run to a fixpoint, bounded):
//!
//! * **constant folding** — `Bin`/`Cmp`/`Un`/`Convert` over `Const`
//!   operands fold to `Const`;
//! * **copy propagation** — uses of a register holding a straight-line copy
//!   are rewritten to the source while both stay unchanged (block-local);
//! * **dead code elimination** — pure instructions (arithmetic, constants,
//!   copies) whose results are never used are removed. Loads are *not*
//!   eliminated: in this simulator memory traffic is observable behaviour.

use std::collections::HashMap;

use spf_ir::{BinOp, CmpOp, Conv, Function, Instr, Program, Reg, UnOp};

/// Runs the baseline pass pipeline on a clone of `func`.
pub fn optimize(program: &Program, func: &Function) -> Function {
    let mut f = func.clone();
    for _ in 0..3 {
        let a = fold_constants(&mut f);
        let b = propagate_copies(&mut f);
        let c = eliminate_dead_code(&mut f);
        if !(a || b || c) {
            break;
        }
    }
    debug_assert!(spf_ir::verify::verify(program, &f).is_ok());
    f
}

/// Folds constant expressions; returns whether anything changed.
pub fn fold_constants(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        // Block-local constant environment.
        let mut consts: HashMap<Reg, spf_ir::Const> = HashMap::new();
        let block = f.block_mut(b);
        for instr in &mut block.instrs {
            let folded: Option<(Reg, spf_ir::Const)> = match &*instr {
                Instr::Const { dst, value } => {
                    consts.insert(*dst, *value);
                    None
                }
                Instr::Bin { dst, op, a, b } => match (consts.get(a), consts.get(b)) {
                    (Some(&x), Some(&y)) => fold_bin(*op, x, y).map(|v| (*dst, v)),
                    _ => None,
                },
                Instr::Cmp { dst, op, a, b } => match (consts.get(a), consts.get(b)) {
                    (Some(&x), Some(&y)) => fold_cmp(*op, x, y).map(|v| (*dst, v)),
                    _ => None,
                },
                Instr::Un { dst, op, src } => consts
                    .get(src)
                    .and_then(|&x| fold_un(*op, x))
                    .map(|v| (*dst, v)),
                Instr::Convert { dst, conv, src } => {
                    consts.get(src).map(|&x| (*dst, fold_conv(*conv, x)))
                }
                other => {
                    if let Some(d) = other.dst() {
                        consts.remove(&d);
                    }
                    None
                }
            };
            if let Some((dst, value)) = folded {
                *instr = Instr::Const { dst, value };
                consts.insert(dst, value);
                changed = true;
            } else if let Some(d) = instr.dst() {
                if !matches!(instr, Instr::Const { .. }) {
                    consts.remove(&d);
                }
            }
        }
    }
    changed
}

fn fold_bin(op: BinOp, a: spf_ir::Const, b: spf_ir::Const) -> Option<spf_ir::Const> {
    use spf_ir::Const::*;
    Some(match (a, b) {
        (I32(x), I32(y)) => I32(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u32).wrapping_shr(y as u32)) as i32,
        }),
        (I64(x), I64(y)) => I64(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u64).wrapping_shr(y as u32)) as i64,
        }),
        (F64(x), F64(y)) => F64(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            _ => return None,
        }),
        _ => return None,
    })
}

fn fold_cmp(op: CmpOp, a: spf_ir::Const, b: spf_ir::Const) -> Option<spf_ir::Const> {
    use spf_ir::Const::*;
    let ord = match (a, b) {
        (I32(x), I32(y)) => x.partial_cmp(&y),
        (I64(x), I64(y)) => x.partial_cmp(&y),
        (F64(x), F64(y)) => x.partial_cmp(&y),
        _ => None,
    }?;
    use std::cmp::Ordering::*;
    let v = match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    };
    Some(I32(v as i32))
}

fn fold_un(op: UnOp, v: spf_ir::Const) -> Option<spf_ir::Const> {
    use spf_ir::Const::*;
    Some(match (op, v) {
        (UnOp::Neg, I32(x)) => I32(x.wrapping_neg()),
        (UnOp::Neg, I64(x)) => I64(x.wrapping_neg()),
        (UnOp::Neg, F64(x)) => F64(-x),
        (UnOp::Not, I32(x)) => I32(!x),
        (UnOp::Not, I64(x)) => I64(!x),
        _ => return None,
    })
}

fn fold_conv(conv: Conv, v: spf_ir::Const) -> spf_ir::Const {
    use spf_ir::Const::*;
    match (conv, v) {
        (Conv::I32ToI64, I32(x)) => I64(x as i64),
        (Conv::I64ToI32, I64(x)) => I32(x as i32),
        (Conv::I32ToF64, I32(x)) => F64(x as f64),
        (Conv::F64ToI32, F64(x)) => I32(x as i32),
        (Conv::I64ToF64, I64(x)) => F64(x as f64),
        (Conv::F64ToI64, F64(x)) => I64(x as i64),
        (_, other) => other,
    }
}

/// Block-local copy propagation; returns whether anything changed.
///
/// A use of `dst` after `dst = src` is rewritten to `src` as long as
/// neither register has been redefined since.
pub fn propagate_copies(f: &mut Function) -> bool {
    let mut changed = false;
    let params: Vec<Reg> = f.params().collect();
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut copies: HashMap<Reg, Reg> = HashMap::new();
        let block = f.block_mut(b);
        for instr in &mut block.instrs {
            // Rewrite uses first.
            changed |= rewrite_uses(instr, &copies);
            // Then update the copy environment.
            if let Instr::Move { dst, src } = *instr {
                // The move redefines `dst`: drop every fact about it.
                copies.remove(&dst);
                copies.retain(|_, &mut s| s != dst);
                // Never propagate into parameters (keeps them stable for
                // inspection/debugging).
                if !params.contains(&dst) && dst != src {
                    copies.insert(dst, src);
                }
            } else if let Some(d) = instr.dst() {
                copies.remove(&d);
                copies.retain(|_, &mut s| s != d);
            }
        }
        // Terminator uses.
        let mut term = block.term.clone();
        let t_changed = match &mut term {
            spf_ir::Terminator::Branch { cond, .. } => substitute(cond, &copies),
            spf_ir::Terminator::Return(Some(r)) => substitute(r, &copies),
            _ => false,
        };
        if t_changed {
            block.term = term;
            changed = true;
        }
    }
    changed
}

fn substitute(r: &mut Reg, copies: &HashMap<Reg, Reg>) -> bool {
    if let Some(&s) = copies.get(r) {
        *r = s;
        true
    } else {
        false
    }
}

fn rewrite_uses(instr: &mut Instr, copies: &HashMap<Reg, Reg>) -> bool {
    if copies.is_empty() {
        return false;
    }
    let mut changed = false;
    macro_rules! sub {
        ($($r:expr),*) => {{ $( changed |= substitute($r, copies); )* }};
    }
    match instr {
        Instr::Const { .. } | Instr::GetStatic { .. } | Instr::New { .. } => {}
        Instr::Move { src, .. } | Instr::Un { src, .. } | Instr::Convert { src, .. } => {
            sub!(src);
        }
        Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => sub!(a, b),
        Instr::GetField { obj, .. } => sub!(obj),
        Instr::PutField { obj, src, .. } => sub!(obj, src),
        Instr::PutStatic { src, .. } => sub!(src),
        Instr::ALoad { arr, idx, .. } => sub!(arr, idx),
        Instr::AStore { arr, idx, src, .. } => sub!(arr, idx, src),
        Instr::ArrayLen { arr, .. } => sub!(arr),
        Instr::NewArray { len, .. } => sub!(len),
        Instr::Call { args, .. } => {
            for a in args {
                changed |= substitute(a, copies);
            }
        }
        Instr::Prefetch { addr, .. } => changed |= sub_addr(addr, copies),
        Instr::SpecLoad { addr, .. } => changed |= sub_addr(addr, copies),
    }
    changed
}

fn sub_addr(addr: &mut spf_ir::PrefetchAddr, copies: &HashMap<Reg, Reg>) -> bool {
    match addr {
        spf_ir::PrefetchAddr::FieldOf { base, .. } => substitute(base, copies),
        spf_ir::PrefetchAddr::ArrayElem { arr, idx, .. } => {
            let a = substitute(arr, copies);
            let b = substitute(idx, copies);
            a || b
        }
    }
}

/// Removes pure instructions whose results are never used; returns whether
/// anything changed. Loads, stores, allocations, calls, and prefetches are
/// always kept.
pub fn eliminate_dead_code(f: &mut Function) -> bool {
    let mut used = vec![false; f.reg_count()];
    let mut buf = Vec::new();
    for b in f.block_ids() {
        for instr in &f.block(b).instrs {
            buf.clear();
            instr.uses(&mut buf);
            for r in &buf {
                used[r.index()] = true;
            }
        }
        buf.clear();
        f.block(b).term.uses(&mut buf);
        for r in &buf {
            used[r.index()] = true;
        }
    }
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let block = f.block_mut(b);
        let before = block.instrs.len();
        block.instrs.retain(|instr| match instr {
            Instr::Const { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Convert { dst, .. } => used[dst.index()],
            _ => true,
        });
        changed |= block.instrs.len() != before;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::{ProgramBuilder, Ty};

    fn build_arith() -> (Program, spf_ir::MethodId) {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("f", &[], Some(Ty::I32));
        let two = b.const_i32(2);
        let three = b.const_i32(3);
        let six = b.mul(two, three); // foldable
        let copy = b.new_reg(Ty::I32);
        b.move_(copy, six);
        let out = b.add(copy, two); // copy-propagatable
        let _dead = b.add(three, three); // dead
        b.ret(Some(out));
        let m = b.finish();
        (pb.finish(), m)
    }

    #[test]
    fn folding_and_dce_shrink_the_function() {
        let (p, m) = build_arith();
        let f0 = p.method(m).func();
        let f1 = optimize(&p, f0);
        assert!(f1.instr_count() < f0.instr_count());
        // The multiply folded to a constant.
        let has_mul = f1
            .instr_sites()
            .any(|s| matches!(f1.instr(s), Instr::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul, "2*3 folded");
        // The dead add is gone.
        let adds = f1
            .instr_sites()
            .filter(|&s| matches!(f1.instr(s), Instr::Bin { op: BinOp::Add, .. }))
            .count();
        assert!(adds <= 1);
    }

    #[test]
    fn loads_are_never_eliminated() {
        let mut pb = ProgramBuilder::new();
        let (_c, fs) = pb.add_class("N", &[("v", spf_ir::ElemTy::I32)]);
        let mut b = pb.function("g", &[Ty::Ref], None);
        let o = b.param(0);
        let _dead_load = b.getfield(o, fs[0]);
        let m = b.finish();
        let p = pb.finish();
        let f1 = optimize(&p, p.method(m).func());
        let loads = f1
            .instr_sites()
            .filter(|&s| matches!(f1.instr(s), Instr::GetField { .. }))
            .count();
        assert_eq!(loads, 1, "memory traffic is observable; loads stay");
    }

    #[test]
    fn copy_prop_is_sound_across_redefinition() {
        // x = a; a = b; y = x  -- y must NOT become b.
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("h", &[Ty::I32, Ty::I32], Some(Ty::I32));
        let pa = b.param(0);
        let pb2 = b.param(1);
        let a = b.new_reg(Ty::I32);
        b.move_(a, pa);
        let x = b.new_reg(Ty::I32);
        b.move_(x, a);
        b.move_(a, pb2); // redefine a
        let y = b.new_reg(Ty::I32);
        b.move_(y, x);
        b.ret(Some(y));
        let m = b.finish();
        let p = pb.finish();
        let f1 = optimize(&p, p.method(m).func());
        // Semantic check via the terminator: it must not return pb2.
        for blk in f1.block_ids() {
            if let spf_ir::Terminator::Return(Some(r)) = f1.block(blk).term {
                assert_ne!(r, pb2, "unsound copy propagation");
            }
        }
    }

    #[test]
    fn fold_cmp_and_div_by_zero_safe() {
        assert_eq!(
            fold_bin(BinOp::Div, spf_ir::Const::I32(1), spf_ir::Const::I32(0)),
            None
        );
        assert_eq!(
            fold_cmp(CmpOp::Lt, spf_ir::Const::I32(1), spf_ir::Const::I32(2)),
            Some(spf_ir::Const::I32(1))
        );
    }
}

#[cfg(test)]
mod proptests {
    use crate::config::VmConfig;
    use crate::vm::Vm;
    use spf_heap::Value;
    use spf_ir::{CmpOp, ProgramBuilder, Reg, Ty};
    use spf_memsim::ProcessorConfig;
    use spf_testkit::Rng;

    /// Random straight-line + loop programs over a small register pool.
    #[derive(Clone, Debug)]
    enum Op {
        Const(i32),
        Add(u8, u8),
        Sub(u8, u8),
        Mul(u8, u8),
        Xor(u8, u8),
        Cmp(u8, u8),
        Copy(u8),
    }

    fn arb_ops(rng: &mut Rng) -> Vec<Op> {
        rng.vec(1, 39, |r| {
            let reg = |r: &mut Rng| r.index(8) as u8;
            match r.index(7) {
                0 => Op::Const(r.i32_in(-100, 99)),
                1 => Op::Add(reg(r), reg(r)),
                2 => Op::Sub(reg(r), reg(r)),
                3 => Op::Mul(reg(r), reg(r)),
                4 => Op::Xor(reg(r), reg(r)),
                5 => Op::Cmp(reg(r), reg(r)),
                _ => Op::Copy(reg(r)),
            }
        })
    }

    /// The baseline JIT passes (const folding, copy propagation, DCE)
    /// must preserve the semantics of arbitrary register programs, both
    /// in straight-line code and inside a loop.
    #[test]
    fn passes_preserve_semantics() {
        spf_testkit::cases(48, "passes preserve semantics", |rng| {
            let ops = arb_ops(rng);
            let x = rng.i32_in(-50, 49);
            let mut pb = ProgramBuilder::new();
            let mut b = pb.function("f", &[Ty::I32], Some(Ty::I32));
            // A pool of 8 mutable locals seeded from the parameter.
            let pool: Vec<Reg> = (0..8)
                .map(|i| {
                    let r = b.new_reg(Ty::I32);
                    let c = b.const_i32(i);
                    let s = b.add(b.param(0), c);
                    b.move_(r, s);
                    r
                })
                .collect();
            let emit_ops =
                |b: &mut spf_ir::FunctionBuilder<'_>, ops: &[Op], pool: &[Reg], k: usize| {
                    for (j, op) in ops.iter().enumerate() {
                        let dst = pool[(j + k) % pool.len()];
                        match *op {
                            Op::Const(v) => {
                                let c = b.const_i32(v);
                                b.move_(dst, c);
                            }
                            Op::Add(a, c) => {
                                let r = b.add(pool[a as usize], pool[c as usize]);
                                b.move_(dst, r);
                            }
                            Op::Sub(a, c) => {
                                let r = b.sub(pool[a as usize], pool[c as usize]);
                                b.move_(dst, r);
                            }
                            Op::Mul(a, c) => {
                                let r = b.mul(pool[a as usize], pool[c as usize]);
                                b.move_(dst, r);
                            }
                            Op::Xor(a, c) => {
                                let r = b.xor(pool[a as usize], pool[c as usize]);
                                b.move_(dst, r);
                            }
                            Op::Cmp(a, c) => {
                                let r = b.lt(pool[a as usize], pool[c as usize]);
                                b.move_(dst, r);
                            }
                            Op::Copy(a) => b.move_(dst, pool[a as usize]),
                        }
                    }
                };
            emit_ops(&mut b, &ops, &pool, 0);
            let three = b.const_i32(3);
            b.for_i32(
                0,
                1,
                CmpOp::Lt,
                |_| three,
                |b, _| {
                    emit_ops(b, &ops, &pool, 1);
                },
            );
            // Fold the pool into one result.
            let mut acc = pool[0];
            for &r in &pool[1..] {
                acc = b.xor(acc, r);
            }
            b.ret(Some(acc));
            let f = b.finish();
            let program = pb.finish();

            // Reference: interpret the *original* body.
            let mut vm1 = Vm::new(
                program.clone(),
                VmConfig {
                    compile_threshold: u32::MAX, // never compile
                    ..VmConfig::default()
                },
                ProcessorConfig::pentium4(),
            );
            let interpreted = vm1.call(f, &[Value::I32(x)]).unwrap();

            // Optimized: compile immediately (threshold 1).
            let mut vm2 = Vm::new(
                program,
                VmConfig {
                    compile_threshold: 1,
                    ..VmConfig::default()
                },
                ProcessorConfig::pentium4(),
            );
            let compiled = vm2.call(f, &[Value::I32(x)]).unwrap();
            assert_eq!(interpreted, compiled);
        });
    }
}
