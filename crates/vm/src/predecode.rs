//! Shared pre-decoded programs.
//!
//! Decoding a program's method bodies into threaded code is pure
//! per-program work; [`Predecoded`] does it once and lets any number of
//! VMs — including VMs on different worker threads — share the result via
//! `Arc`. The benchmark matrix prepares one `Predecoded` per workload and
//! constructs all of that workload's cells from it, instead of re-cloning
//! and re-decoding every method body per VM construction.

use std::sync::Arc;

use spf_heap::Layout;
use spf_ir::Program;
use spf_trace::{NoopSink, TraceSink};

use crate::decode::{decode, ThreadedCode};

/// A program plus its pre-decoded method bodies and heap layout, sharable
/// across VMs (and threads: the contents are immutable after
/// construction).
pub struct Predecoded<S: TraceSink = NoopSink> {
    program: Arc<Program>,
    layout: Layout,
    bodies: Vec<Arc<ThreadedCode<S>>>,
    fused: bool,
}

impl<S: TraceSink> Predecoded<S> {
    /// Pre-decodes `program` with superinstruction fusion enabled (the
    /// default configuration).
    pub fn new(program: Program) -> Self {
        Self::with_fusion(program, true)
    }

    /// Pre-decodes `program`, fusing superinstructions iff `fuse`. VMs
    /// built from this `Predecoded` inherit the fusion setting for the
    /// bodies they JIT-install later, keeping one VM internally
    /// consistent.
    pub fn with_fusion(program: Program, fuse: bool) -> Self {
        let program = Arc::new(program);
        let layout = Layout::compute(&program);
        let bodies = program
            .method_ids()
            .map(|m| {
                let src = Arc::new(program.method(m).func().clone());
                Arc::new(decode(&program, &layout, &src, fuse))
            })
            .collect();
        Predecoded {
            program,
            layout,
            bodies,
            fused: fuse,
        }
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    pub(crate) fn program_arc(&self) -> &Arc<Program> {
        &self.program
    }

    pub(crate) fn layout(&self) -> &Layout {
        &self.layout
    }

    pub(crate) fn bodies(&self) -> &[Arc<ThreadedCode<S>>] {
        &self.bodies
    }

    pub(crate) fn fused(&self) -> bool {
        self.fused
    }
}
