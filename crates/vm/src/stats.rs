//! Execution statistics.

/// Per-method cycle attribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MethodCycles {
    /// Cycles spent executing this method's compiled code.
    pub compiled: u64,
    /// Cycles spent interpreting this method.
    pub interpreted: u64,
    /// Times the method was invoked.
    pub invocations: u64,
}

/// Counters accumulated by a [`crate::Vm`] run.
///
/// `PartialEq` compares every field, including the host-time fields
/// (`jit_nanos`, `prefetch_pass_nanos`); differential tests that only care
/// about simulated numbers should compare after `reset_measurement`, where
/// both are zero.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VmStats {
    /// Simulated cycles elapsed (execution + memory stalls + GC + charged
    /// JIT time).
    pub cycles: u64,
    /// Instructions retired (including inserted prefetch instructions).
    pub retired_instructions: u64,
    /// Instructions retired while interpreting.
    pub interpreted_instructions: u64,
    /// Instructions retired in compiled code.
    pub compiled_instructions: u64,
    /// Methods JIT-compiled.
    pub methods_compiled: u64,
    /// Wall-clock nanoseconds spent in JIT compilation (all passes).
    pub jit_nanos: u128,
    /// Wall-clock nanoseconds of `jit_nanos` spent in the prefetching pass.
    pub prefetch_pass_nanos: u128,
    /// Cycles charged to the simulated clock for JIT compilation.
    pub jit_cycles: u64,
    /// Garbage collections performed.
    pub gc_count: u64,
    /// Cycles charged for garbage collection.
    pub gc_cycles: u64,
    /// Whole-method adaptive deoptimizations. Always 0 since staleness
    /// went per-loop (see `loop_deopts`); kept so pre-existing reports
    /// and parsers keep their column.
    pub deopts: u64,
    /// Full adaptive recompilations (a new generation of the whole body,
    /// e.g. after a code-cache eviction re-crosses the threshold).
    pub recompiles: u64,
    /// Per-loop invalidations: loops whose guard went stale and whose
    /// prefetch sites were patched to no-ops. The rest of the compiled
    /// body keeps running (adaptive guards only).
    pub loop_deopts: u64,
    /// Per-loop repatches: invalidated loops re-inspected through the
    /// normal pipeline and their sites re-emitted into the installed
    /// body.
    pub loop_repatches: u64,
    /// Recompilations whose re-inspection re-agreed on prefetchable
    /// strides (the fresh body contains at least one prefetch site).
    pub reagreed: u64,
    /// Compiled bodies evicted by an external code cache
    /// ([`crate::Vm::evict_compiled`]; only the serving layer evicts).
    pub code_evictions: u64,
    /// Deterministic cycles attributed to object inspection across all
    /// compilations (the compile-time cost model). A pure counter, like
    /// `deopts`/`recompiles`: never added to `cycles`, so the simulated
    /// clock of the pre-existing modes is untouched.
    pub inspection_cycles: u64,
    /// Prefetch candidate sites whose stride was statically proved and
    /// therefore excluded from object inspection (STATIC-FIRST only).
    pub static_sites: u64,
    /// Per-method cycles, indexed by method id.
    pub per_method: Vec<MethodCycles>,
}

impl VmStats {
    /// Fraction of execution cycles spent in compiled code (Table 3's last
    /// column). GC and JIT cycles are excluded from the denominator.
    pub fn compiled_code_fraction(&self) -> f64 {
        let compiled: u64 = self.per_method.iter().map(|m| m.compiled).sum();
        let interp: u64 = self.per_method.iter().map(|m| m.interpreted).sum();
        if compiled + interp == 0 {
            0.0
        } else {
            compiled as f64 / (compiled + interp) as f64
        }
    }

    /// Fraction of total execution the JIT compiler accounts for (Figure
    /// 11's right bars).
    pub fn jit_time_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.jit_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of JIT compilation time spent in the prefetching pass
    /// (Figure 11's left bars; the paper's headline is < 3%).
    pub fn prefetch_pass_fraction(&self) -> f64 {
        if self.jit_nanos == 0 {
            0.0
        } else {
            self.prefetch_pass_nanos as f64 / self.jit_nanos as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let mut s = VmStats::default();
        assert_eq!(s.compiled_code_fraction(), 0.0);
        s.per_method.push(MethodCycles {
            compiled: 75,
            interpreted: 25,
            invocations: 1,
        });
        assert!((s.compiled_code_fraction() - 0.75).abs() < 1e-12);
        s.jit_nanos = 1000;
        s.prefetch_pass_nanos = 25;
        assert!((s.prefetch_pass_fraction() - 0.025).abs() < 1e-12);
    }
}
