//! Direct-threaded dispatch: the execution context, the handler functions
//! the decoder threads function bodies onto, and the shared component
//! bodies both singleton and superinstruction handlers are built from.
//!
//! Every handler charges the simulated clock and touches the memory system
//! in exactly the order the old `match *instr` interpreter did; fused
//! handlers are literal concatenations of the same `#[inline(always)]`
//! components, so the cycle/counter/memory-op sequence of a fused pair is
//! bit-identical to executing the two ops singly. The only thing that
//! changes is host-side work per simulated instruction.

use spf_heap::{Value, ARRAY_DATA_OFFSET, NULL};
use spf_ir::{
    packed::{self as packed, unpack_reg_pair},
    BinOp, CmpOp, Conv, ElemTy, InstrRef, MethodId, PrefetchKind, Reg, UnOp,
};
use spf_memsim::CacheLevel;
use spf_trace::{SiteId, TraceSink};

use crate::config::{CALL_OVERHEAD, COMPILED_INSTR_COST};
use crate::decode::{Op, ThreadedCode};
use crate::error::VmError;
use crate::vm::Vm;

/// What the main loop does after a handler returns.
pub(crate) enum Step {
    /// Keep dispatching from the (already advanced or redirected) `pc`.
    Next,
    /// The top frame changed (call or return): re-fetch the threaded code.
    Switch,
    /// Execution finished; the result is in [`Ctx::halt`].
    Halt,
}

/// Handler signature: the op is a borrow into the current frame's threaded
/// code, passed alongside so variable-length operands (call argument lists)
/// can live in the code's side pool.
pub(crate) type Handler<S> = fn(&mut Vm<S>, &mut Ctx, &Op<S>, &ThreadedCode<S>) -> Step;

/// Register-resident interpreter state: the live counters the old loop kept
/// in locals, plus the top frame's registers (taken out of the frame while
/// it is topmost so the hot path never chases `frames.last_mut()`).
pub(crate) struct Ctx {
    /// Index of the next op in the current threaded code.
    pub pc: usize,
    /// Live simulated clock (authoritative; `stats.cycles` is synchronized
    /// at call/alloc boundaries exactly as the old loop did).
    pub cycles: u64,
    /// Value of `cycles` at the last per-method flush; the cycles accrued
    /// by the current frame segment are `cycles - frame_start` (every
    /// charge adds to `cycles`, so the delta needs no second accumulator
    /// on the hot path). Allocation/GC charges, which the old loop kept
    /// out of the frame attribution, advance `frame_start` in lockstep
    /// (`unsync_for_alloc`).
    pub frame_start: u64,
    /// Terminators retired (instructions are counted via `seg_retired`;
    /// the total retired count is derived as interpreted + compiled +
    /// terminators when the counters are written back at halt).
    pub term_retired: u64,
    /// Non-terminator instructions retired since the last per-method
    /// flush; folded into `comp_retired`/`interp_retired` there (the
    /// compiled/interpreted split is constant between frame switches, so
    /// the hot path skips the per-instruction branch).
    pub seg_retired: u64,
    /// Instructions retired while interpreting (terminators excluded).
    pub interp_retired: u64,
    /// Instructions retired in compiled code (terminators excluded).
    pub comp_retired: u64,
    /// Cycle cost per instruction in the current frame.
    pub cur_cost: u64,
    /// Whether the current frame runs compiled code.
    pub cur_compiled: bool,
    /// Method of the current frame.
    pub cur_mid: MethodId,
    /// First global PIC slot of the current frame's code.
    pub cur_pic_base: u32,
    /// The current frame's registers (owned here while the frame is on top).
    pub regs: Vec<Value>,
    /// Set when execution halts (normal return from the entry frame or a
    /// fault).
    pub halt: Option<Result<Option<Value>, VmError>>,
}

impl Ctx {
    /// Reads a register without a bounds check.
    ///
    /// SAFETY: every register operand packed into an op is validated
    /// against the function's register count by `decode::lower`, and every
    /// frame's register file is allocated at exactly
    /// `reg_template.len() == reg_count`, so a decoded operand can never be
    /// out of range. The debug assertion re-checks the contract in debug
    /// builds.
    #[inline(always)]
    pub(crate) fn reg(&self, i: u32) -> Value {
        debug_assert!((i as usize) < self.regs.len());
        unsafe { *self.regs.get_unchecked(i as usize) }
    }

    /// Writes a register without a bounds check (safety as for [`Ctx::reg`]).
    #[inline(always)]
    pub(crate) fn set_reg(&mut self, i: u32, v: Value) {
        debug_assert!((i as usize) < self.regs.len());
        unsafe { *self.regs.get_unchecked_mut(i as usize) = v }
    }
}

/// Charges one instruction: clock, frame attribution, retired counters.
#[inline(always)]
fn charge_instr(ctx: &mut Ctx) {
    ctx.cycles += ctx.cur_cost;
    ctx.seg_retired += 1;
}

/// Charges one terminator: like an instruction but without the
/// compiled/interpreted retirement split (matching the old loop).
#[inline(always)]
fn charge_term(ctx: &mut Ctx) {
    ctx.cycles += ctx.cur_cost;
    ctx.term_retired += 1;
}

/// Flushes `frame_acc` into the current method's per-method attribution
/// (the old `flush_frame!`).
#[inline(always)]
pub(crate) fn flush_frame_acc<S: TraceSink>(vm: &mut Vm<S>, ctx: &mut Ctx) {
    let acc = ctx.cycles - ctx.frame_start;
    let pm = &mut vm.stats.per_method[ctx.cur_mid.index()];
    if ctx.cur_compiled {
        pm.compiled += acc;
        ctx.comp_retired += ctx.seg_retired;
    } else {
        pm.interpreted += acc;
        ctx.interp_retired += ctx.seg_retired;
    }
    ctx.frame_start = ctx.cycles;
    ctx.seg_retired = 0;
}

/// Halts execution with `res`, flushing the pending frame attribution (the
/// old `finish!`; the run loop writes the global counters on `Step::Halt`).
#[cold]
pub(crate) fn halt<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    res: Result<Option<Value>, VmError>,
) -> Step {
    flush_frame_acc(vm, ctx);
    ctx.halt = Some(res);
    Step::Halt
}

/// Faulting component exit: records the error and reports failure.
#[cold]
fn fail<S: TraceSink>(vm: &mut Vm<S>, ctx: &mut Ctx, e: VmError) -> bool {
    halt(vm, ctx, Err(e));
    false
}

/// Refreshes `ctx` from the (new) top frame after a push or pop, taking
/// ownership of its registers (the old `reload!`).
#[inline]
pub(crate) fn reload_ctx<S: TraceSink>(vm: &mut Vm<S>, ctx: &mut Ctx) {
    let interp_mult = vm.config.interp_cost_multiplier;
    let f = vm.frames.last_mut().expect("frame");
    ctx.regs = std::mem::take(&mut f.regs);
    ctx.pc = f.pc;
    ctx.frame_start = ctx.cycles;
    ctx.cur_mid = f.method;
    ctx.cur_compiled = f.code.compiled;
    ctx.cur_pic_base = f.code.pic_base;
    ctx.cur_cost = if f.code.compiled {
        COMPILED_INSTR_COST
    } else {
        COMPILED_INSTR_COST * interp_mult
    };
}

// ---------------------------------------------------------------------------
// Component bodies. Each mirrors one arm of the old `match *instr` exactly
// (same clock charges, same memory-system calls, same error order) and is
// shared between its singleton handler and every superinstruction that
// includes it.
// ---------------------------------------------------------------------------

#[inline(always)]
fn do_bin<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    dst: u32,
    code: u8,
    ra: u32,
    rb: u32,
    site: u64,
) -> bool {
    let (x, y) = (ctx.reg(ra), ctx.reg(rb));
    match exec_bin(BinOp::from_code(code), x, y) {
        Some(v) => {
            ctx.set_reg(dst, v);
            true
        }
        None => fail(
            vm,
            ctx,
            VmError::DivisionByZero {
                at: InstrRef::unpack(site),
            },
        ),
    }
}

#[inline(always)]
fn do_cmp(ctx: &mut Ctx, dst: u32, code: u8, ra: u32, rb: u32) -> i32 {
    let (x, y) = (ctx.reg(ra), ctx.reg(rb));
    let flag = exec_cmp(CmpOp::from_code(code), x, y);
    ctx.set_reg(dst, Value::I32(flag));
    flag
}

/// Materializes a constant from its packed kind code and payload.
#[inline(always)]
fn const_value(kind: u8, imm: i64) -> Value {
    match kind {
        packed::CONST_I32 => Value::I32(imm as i32),
        packed::CONST_I64 => Value::I64(imm),
        packed::CONST_F64 => Value::F64(f64::from_bits(imm as u64)),
        _ => Value::Ref(NULL),
    }
}

#[inline(always)]
fn do_getfield<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    dst: u32,
    obj: u32,
    off: u64,
    ty: ElemTy,
    site: u64,
) -> bool {
    let a = ctx.reg(obj).as_ref_addr();
    if a == NULL {
        return fail(
            vm,
            ctx,
            VmError::NullPointer {
                at: InstrRef::unpack(site),
            },
        );
    }
    let addr = a + off;
    let lat = vm.mem.load(addr, ctx.cycles);
    ctx.cycles += lat;
    if vm.config.collect_offline_profile {
        vm.offline
            .entry(ctx.cur_mid)
            .or_default()
            .record(InstrRef::unpack(site), addr);
    }
    let v = match vm.heap.read(addr, ty) {
        Ok(v) => v,
        Err(_) => return fail(vm, ctx, VmError::BadAccess { addr }),
    };
    ctx.set_reg(dst, v);
    true
}

#[inline(always)]
fn do_aload<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    dst: u32,
    arr: u32,
    idx: u32,
    elem: ElemTy,
    site: u64,
) -> bool {
    let a = ctx.reg(arr).as_ref_addr();
    if a == NULL {
        return fail(
            vm,
            ctx,
            VmError::NullPointer {
                at: InstrRef::unpack(site),
            },
        );
    }
    let i = ctx.reg(idx).as_i32();
    let len = vm.heap.array_len(a);
    if i < 0 || i as u64 >= len {
        return fail(
            vm,
            ctx,
            VmError::IndexOutOfBounds {
                at: InstrRef::unpack(site),
                index: i,
                len,
            },
        );
    }
    let addr = a + ARRAY_DATA_OFFSET + i as u64 * elem.size();
    let lat = vm.mem.load(addr, ctx.cycles);
    ctx.cycles += lat;
    if vm.config.collect_offline_profile {
        vm.offline
            .entry(ctx.cur_mid)
            .or_default()
            .record(InstrRef::unpack(site), addr);
    }
    let v = match vm.heap.read(addr, elem) {
        Ok(v) => v,
        Err(_) => return fail(vm, ctx, VmError::BadAccess { addr }),
    };
    ctx.set_reg(dst, v);
    true
}

/// Shared prefetch-issue tail: site attribution for tracing, adaptive
/// usefulness probing, then the actual memory-system prefetch.
#[inline(always)]
fn prefetch_issue<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    site: u64,
    target: spf_heap::Addr,
    kind: PrefetchKind,
) {
    if S::ENABLED {
        let site_ref = InstrRef::unpack(site);
        let id = vm.site_ids.get(&(ctx.cur_mid, site_ref));
        vm.mem.set_site(id.copied().unwrap_or(SiteId::UNKNOWN));
    }
    if vm.adaptive {
        // A prefetch whose line is already cached at the fill target is
        // useless — the same test the memory system applies internally,
        // probed non-mutatingly so simulated numbers are untouched.
        let level = match kind {
            PrefetchKind::Hardware => vm.mem.config().swpf_target,
            PrefetchKind::GuardedLoad => CacheLevel::L1,
        };
        let useless = vm.mem.line_present(level, target);
        let s = InstrRef::unpack(site);
        vm.adapt.record_issue(
            ctx.cur_mid.index(),
            (s.block.index() as u32, s.index),
            useless,
        );
    }
    let cost = match kind {
        PrefetchKind::Hardware => vm.mem.software_prefetch(target, ctx.cycles),
        PrefetchKind::GuardedLoad => vm.mem.guarded_load(target, ctx.cycles),
    };
    ctx.cycles += cost;
}

/// `FieldOf { base, delta }` address computation; `None` when the base is
/// not a non-null reference (the prefetch is then silently skipped).
#[inline(always)]
fn field_addr(ctx: &Ctx, base: u32, delta: i64) -> Option<spf_heap::Addr> {
    match ctx.reg(base) {
        Value::Ref(a) if a != NULL => Some(a.wrapping_add(delta as u64)),
        _ => None,
    }
}

/// `ArrayElem { arr, idx, scale, delta }` address computation.
#[inline(always)]
fn elem_addr(ctx: &Ctx, arr: u32, idx: u32, scale: u32, delta: i64) -> Option<spf_heap::Addr> {
    match (ctx.reg(arr), ctx.reg(idx)) {
        (Value::Ref(a), Value::I32(i)) if a != NULL => Some(
            a.wrapping_add((i as i64).wrapping_mul(scale as i64) as u64)
                .wrapping_add(delta as u64),
        ),
        _ => None,
    }
}

#[inline(always)]
fn do_specload<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    dst: u32,
    site: u64,
    target: Option<spf_heap::Addr>,
) {
    let v = match target {
        Some(target) => {
            prefetch_issue(vm, ctx, site, target, PrefetchKind::GuardedLoad);
            match spf_heap::HeapRead::try_read(&vm.heap, target, ElemTy::Ref) {
                Some(Value::Ref(a)) => Value::Ref(a),
                _ => Value::Ref(NULL),
            }
        }
        None => Value::Ref(NULL),
    };
    ctx.set_reg(dst, v);
}

// ---------------------------------------------------------------------------
// Singleton handlers, one per decoded opcode.
// Operand packing per handler is documented in `decode::lower`.
// ---------------------------------------------------------------------------

pub(crate) fn h_const_i32<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    ctx.set_reg(op.a, Value::I32(op.imm as i32));
    Step::Next
}

pub(crate) fn h_const_i64<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    ctx.set_reg(op.a, Value::I64(op.imm));
    Step::Next
}

pub(crate) fn h_const_f64<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    ctx.set_reg(op.a, Value::F64(f64::from_bits(op.imm as u64)));
    Step::Next
}

pub(crate) fn h_const_null<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    ctx.set_reg(op.a, Value::Ref(NULL));
    Step::Next
}

pub(crate) fn h_move<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let v = ctx.reg(op.b);
    ctx.set_reg(op.a, v);
    Step::Next
}

pub(crate) fn h_bin<S: TraceSink, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if do_bin(vm, ctx, op.a, B, op.b, op.c, op.site) {
        Step::Next
    } else {
        Step::Halt
    }
}

pub(crate) fn h_un<S: TraceSink, const U: u8>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let v = exec_un(UnOp::from_code(U), ctx.reg(op.b));
    ctx.set_reg(op.a, v);
    Step::Next
}

pub(crate) fn h_cmp<S: TraceSink, const C: u8>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    do_cmp(ctx, op.a, C, op.b, op.c);
    Step::Next
}

pub(crate) fn h_convert<S: TraceSink, const C: u8>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let v = exec_conv(Conv::from_code(C), ctx.reg(op.b));
    ctx.set_reg(op.a, v);
    Step::Next
}

pub(crate) fn h_getfield<S: TraceSink, const TY: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if do_getfield(
        vm,
        ctx,
        op.a,
        op.b,
        op.imm as u64,
        ElemTy::from_code(TY),
        op.site,
    ) {
        Step::Next
    } else {
        Step::Halt
    }
}

pub(crate) fn h_putfield<S: TraceSink, const TY: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let a = ctx.reg(op.a).as_ref_addr();
    if a == NULL {
        return halt(
            vm,
            ctx,
            Err(VmError::NullPointer {
                at: InstrRef::unpack(op.site),
            }),
        );
    }
    let ty = ElemTy::from_code(TY);
    let addr = a + op.imm as u64;
    let lat = vm.mem.store(addr, ctx.cycles);
    ctx.cycles += lat;
    let v = coerce_store(ctx.reg(op.b), ty);
    if vm.heap.write(addr, ty, v).is_err() {
        return halt(vm, ctx, Err(VmError::BadAccess { addr }));
    }
    Step::Next
}

pub(crate) fn h_getstatic<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let lat = vm.mem.load(op.imm as u64, ctx.cycles);
    ctx.cycles += lat;
    ctx.set_reg(op.a, vm.statics[op.b as usize]);
    Step::Next
}

pub(crate) fn h_putstatic<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let lat = vm.mem.store(op.imm as u64, ctx.cycles);
    ctx.cycles += lat;
    vm.statics[op.b as usize] = ctx.reg(op.a);
    Step::Next
}

pub(crate) fn h_aload<S: TraceSink, const TY: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if do_aload(vm, ctx, op.a, op.b, op.c, ElemTy::from_code(TY), op.site) {
        Step::Next
    } else {
        Step::Halt
    }
}

/// The AStore component: null/bounds checks, the store access, and the
/// element write. Shared verbatim between the singleton and fused forms.
#[inline(always)]
fn do_astore<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    arr: u32,
    idx: u32,
    src: u32,
    elem: ElemTy,
    site: u64,
) -> bool {
    let a = ctx.reg(arr).as_ref_addr();
    if a == NULL {
        return fail(
            vm,
            ctx,
            VmError::NullPointer {
                at: InstrRef::unpack(site),
            },
        );
    }
    let i = ctx.reg(idx).as_i32();
    let len = vm.heap.array_len(a);
    if i < 0 || i as u64 >= len {
        return fail(
            vm,
            ctx,
            VmError::IndexOutOfBounds {
                at: InstrRef::unpack(site),
                index: i,
                len,
            },
        );
    }
    let addr = a + ARRAY_DATA_OFFSET + i as u64 * elem.size();
    let lat = vm.mem.store(addr, ctx.cycles);
    ctx.cycles += lat;
    let v = coerce_store(ctx.reg(src), elem);
    if vm.heap.write(addr, elem, v).is_err() {
        return fail(vm, ctx, VmError::BadAccess { addr });
    }
    true
}

pub(crate) fn h_astore<S: TraceSink, const TY: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if do_astore(vm, ctx, op.a, op.b, op.c, ElemTy::from_code(TY), op.site) {
        Step::Next
    } else {
        Step::Halt
    }
}

pub(crate) fn h_arraylen<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let a = ctx.reg(op.b).as_ref_addr();
    if a == NULL {
        return halt(
            vm,
            ctx,
            Err(VmError::NullPointer {
                at: InstrRef::unpack(op.site),
            }),
        );
    }
    let lat = vm.mem.load(a + 8, ctx.cycles);
    ctx.cycles += lat;
    if vm.config.collect_offline_profile {
        vm.offline
            .entry(ctx.cur_mid)
            .or_default()
            .record(InstrRef::unpack(op.site), a + 8);
    }
    ctx.set_reg(op.a, Value::I32(vm.heap.array_len(a) as i32));
    Step::Next
}

/// Syncs the live clock and the top frame's registers back into the VM so
/// the allocator (which may GC: roots, forwarding, clock charges) sees
/// consistent state; inverse of `unsync_for_alloc`.
#[inline(always)]
fn sync_for_alloc<S: TraceSink>(vm: &mut Vm<S>, ctx: &mut Ctx) {
    let f = vm.frames.last_mut().expect("frame");
    f.regs = std::mem::take(&mut ctx.regs);
    vm.stats.cycles = ctx.cycles;
}

#[inline(always)]
fn unsync_for_alloc<S: TraceSink>(vm: &mut Vm<S>, ctx: &mut Ctx) {
    // Allocation/GC cycles stay out of the per-method frame attribution
    // (as in the old loop): advance `frame_start` by the same amount the
    // allocator advanced the clock.
    ctx.frame_start += vm.stats.cycles - ctx.cycles;
    ctx.cycles = vm.stats.cycles;
    let f = vm.frames.last_mut().expect("frame");
    ctx.regs = std::mem::take(&mut f.regs);
}

pub(crate) fn h_new<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    // The allocator may GC, which charges the clock and moves objects.
    sync_for_alloc(vm, ctx);
    let res = vm.alloc_object(spf_ir::ClassId::new(op.b as usize));
    unsync_for_alloc(vm, ctx);
    let a = match res {
        Ok(a) => a,
        Err(e) => return halt(vm, ctx, Err(e)),
    };
    let size = op.imm as u64;
    let lat = vm.mem.store(a, ctx.cycles);
    let cost = lat + 4 + size / 32;
    ctx.cycles += cost;
    ctx.set_reg(op.a, Value::Ref(a));
    Step::Next
}

pub(crate) fn h_newarray<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let n = ctx.reg(op.b).as_i32();
    if n < 0 {
        return halt(
            vm,
            ctx,
            Err(VmError::IndexOutOfBounds {
                at: InstrRef::unpack(op.site),
                index: n,
                len: 0,
            }),
        );
    }
    let elem = ElemTy::from_code(op.ext as u8);
    // The allocator may GC, which charges the clock and moves objects.
    sync_for_alloc(vm, ctx);
    let res = vm.alloc_array(elem, n as u64);
    unsync_for_alloc(vm, ctx);
    let a = match res {
        Ok(a) => a,
        Err(e) => return halt(vm, ctx, Err(e)),
    };
    let size = spf_heap::Layout::array_size(elem, n as u64);
    let lat = vm.mem.store(a, ctx.cycles);
    let cost = lat + 4 + size / 32;
    ctx.cycles += cost;
    ctx.set_reg(op.a, Value::Ref(a));
    Step::Next
}

pub(crate) fn h_call<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    ctx.cycles += CALL_OVERHEAD;
    let mut argv = std::mem::take(&mut vm.argv_scratch);
    argv.clear();
    argv.extend(
        tc.arg_pool[op.c as usize..(op.c + op.d) as usize]
            .iter()
            .map(|&r| ctx.reg(r)),
    );
    flush_frame_acc(vm, ctx);
    {
        // Persist the cursor (and registers) so the callee's return resumes
        // after this call.
        let f = vm.frames.last_mut().expect("frame");
        f.pc = ctx.pc;
        f.regs = std::mem::take(&mut ctx.regs);
    }
    // `call_into` may JIT-compile, which charges the clock.
    vm.stats.cycles = ctx.cycles;
    let callee = MethodId::new(op.b as usize);
    let ret_dst = if op.a == 0 {
        None
    } else {
        Some(Reg::new((op.a - 1) as usize))
    };
    let slot = ctx.cur_pic_base + op.ext;
    let res = vm.call_into(callee, &argv, ret_dst, Some(slot));
    vm.argv_scratch = argv;
    match res {
        Ok(()) => {
            ctx.cycles = vm.stats.cycles;
            reload_ctx(vm, ctx);
            Step::Switch
        }
        Err(e) => {
            // The clock grew by the (failed) resolution's charges after the
            // flush above; keep them out of the frame attribution, exactly
            // as the old loop's zeroed accumulator did.
            ctx.cycles = vm.stats.cycles;
            ctx.frame_start = ctx.cycles;
            halt(vm, ctx, Err(e))
        }
    }
}

pub(crate) fn h_prefetch_field<S: TraceSink, const GUARDED: bool>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if let Some(target) = field_addr(ctx, op.b, op.imm) {
        let kind = if GUARDED {
            PrefetchKind::GuardedLoad
        } else {
            PrefetchKind::Hardware
        };
        prefetch_issue(vm, ctx, op.site, target, kind);
    }
    Step::Next
}

pub(crate) fn h_prefetch_elem<S: TraceSink, const GUARDED: bool>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if let Some(target) = elem_addr(ctx, op.b, op.c, op.d, op.imm) {
        let kind = if GUARDED {
            PrefetchKind::GuardedLoad
        } else {
            PrefetchKind::Hardware
        };
        prefetch_issue(vm, ctx, op.site, target, kind);
    }
    Step::Next
}

pub(crate) fn h_specload_field<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let target = field_addr(ctx, op.b, op.imm);
    do_specload(vm, ctx, op.a, op.site, target);
    Step::Next
}

pub(crate) fn h_specload_elem<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let target = elem_addr(ctx, op.b, op.c, op.d, op.imm);
    do_specload(vm, ctx, op.a, op.site, target);
    Step::Next
}

// --------------------------------- Terminators -----------------------------

pub(crate) fn h_jump<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_term(ctx);
    ctx.pc = op.a as usize;
    Step::Next
}

pub(crate) fn h_branch<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_term(ctx);
    let taken = ctx.reg(op.a).as_i32() != 0;
    ctx.pc = (if taken { op.b } else { op.c }) as usize;
    Step::Next
}

pub(crate) fn h_ret<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_term(ctx);
    flush_frame_acc(vm, ctx);
    let f = vm.frames.pop().expect("frame");
    let value = if op.a == 0 {
        None
    } else {
        Some(ctx.reg(op.a - 1))
    };
    // Recycle the returning frame's register buffer.
    let buf = std::mem::take(&mut ctx.regs);
    if buf.capacity() > 0 {
        vm.reg_pool.push(buf);
    }
    match vm.frames.last_mut() {
        Some(caller) => {
            if let (Some(dst), Some(val)) = (f.ret_dst, value) {
                caller.regs[dst.index()] = val;
            }
        }
        None => {
            ctx.halt = Some(Ok(value));
            return Step::Halt;
        }
    }
    reload_ctx(vm, ctx);
    Step::Switch
}

pub(crate) fn h_unreachable<S: TraceSink>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    _op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_term(ctx);
    halt(vm, ctx, Err(VmError::UnreachableExecuted))
}

// ------------------------------ Superinstructions --------------------------
//
// Each fused handler is the exact concatenation of its components,
// including both charge steps, so counters and memory-op interleavings are
// bit-identical to the unfused pair. Operand packings are documented in
// `fuse`.

/// `Cmp` + `Branch` on the comparison result (the loop back-edge pattern).
pub(crate) fn h_cmp_branch<S: TraceSink, const C: u8>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let (ra, rb) = unpack_reg_pair(op.c);
    let flag = do_cmp(ctx, op.a, C, ra.index() as u32, rb.index() as u32);
    charge_term(ctx);
    ctx.pc = (if flag != 0 { op.b } else { op.d }) as usize;
    Step::Next
}

/// `Const` + `Bin` (constant-operand arithmetic).
pub(crate) fn h_const_bin<S: TraceSink, const K: u8, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    ctx.set_reg(op.a, const_value(K, op.imm));
    charge_instr(ctx);
    if do_bin(vm, ctx, op.b, B, op.c, op.d, op.site2) {
        Step::Next
    } else {
        Step::Halt
    }
}

/// `GetField` + `Bin` (load-then-compute).
pub(crate) fn h_getfield_bin<S: TraceSink, const TY: u8, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if !do_getfield(
        vm,
        ctx,
        op.a,
        op.b,
        op.imm as u64,
        ElemTy::from_code(TY),
        op.site,
    ) {
        return Step::Halt;
    }
    charge_instr(ctx);
    let (ra, rb) = unpack_reg_pair(op.d);
    if do_bin(
        vm,
        ctx,
        op.c,
        B,
        ra.index() as u32,
        rb.index() as u32,
        op.site2,
    ) {
        Step::Next
    } else {
        Step::Halt
    }
}

/// `Bin` + `ALoad` (index-then-load).
pub(crate) fn h_bin_aload<S: TraceSink, const TY: u8, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let (ra, rb) = unpack_reg_pair(op.d);
    if !do_bin(
        vm,
        ctx,
        op.a,
        B,
        ra.index() as u32,
        rb.index() as u32,
        op.site,
    ) {
        return Step::Halt;
    }
    charge_instr(ctx);
    let (dst, arr) = unpack_reg_pair(op.b);
    if do_aload(
        vm,
        ctx,
        dst.index() as u32,
        arr.index() as u32,
        op.c,
        ElemTy::from_code(TY),
        op.site2,
    ) {
        Step::Next
    } else {
        Step::Halt
    }
}

/// Fused Bin + Move: a=bin dst, b=bin lhs, c=bin rhs, ext=binop,
/// d=pack(move dst, move src), site=bin's, site2=move's.
pub(crate) fn h_bin_move<S: TraceSink, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if !do_bin(vm, ctx, op.a, B, op.b, op.c, op.site) {
        return Step::Halt;
    }
    charge_instr(ctx);
    let (dst, src) = unpack_reg_pair(op.d);
    let v = ctx.reg(src.index() as u32);
    ctx.set_reg(dst.index() as u32, v);
    Step::Next
}

/// Fused Move + Jump terminator: b=move dst, c=move src, a=jump target
/// (block id until the flattener patches it — the merged op keeps
/// `Kind::Jump`), site=move's.
pub(crate) fn h_move_jump<S: TraceSink>(
    _vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let v = ctx.reg(op.c);
    ctx.set_reg(op.b, v);
    charge_term(ctx);
    ctx.pc = op.a as usize;
    Step::Next
}

/// Fused ALoad + Bin: a=aload dst, b=pack(arr, idx), c=bin dst,
/// d=pack(bin lhs, bin rhs), ext=elem | binop<<8, site=aload's,
/// site2=bin's.
pub(crate) fn h_aload_bin<S: TraceSink, const TY: u8, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let (arr, idx) = unpack_reg_pair(op.b);
    if !do_aload(
        vm,
        ctx,
        op.a,
        arr.index() as u32,
        idx.index() as u32,
        ElemTy::from_code(TY),
        op.site,
    ) {
        return Step::Halt;
    }
    charge_instr(ctx);
    let (ra, rb) = unpack_reg_pair(op.d);
    if do_bin(
        vm,
        ctx,
        op.c,
        B,
        ra.index() as u32,
        rb.index() as u32,
        op.site2,
    ) {
        Step::Next
    } else {
        Step::Halt
    }
}

/// Fused Bin + Jump terminator: a=bin dst, b=bin lhs, c=bin rhs,
/// ext=binop, d=jump target (block id until patched — `Kind::BinJump`),
/// site=bin's.
pub(crate) fn h_bin_jump<S: TraceSink, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if !do_bin(vm, ctx, op.a, B, op.b, op.c, op.site) {
        return Step::Halt;
    }
    charge_term(ctx);
    ctx.pc = op.d as usize;
    Step::Next
}

/// Fused Move + ALoad: c=pack(move dst, move src), a=aload dst,
/// b=pack(arr, idx), ext=elem, site=move's, site2=aload's.
pub(crate) fn h_move_aload<S: TraceSink, const TY: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    let (dst, src) = unpack_reg_pair(op.c);
    let v = ctx.reg(src.index() as u32);
    ctx.set_reg(dst.index() as u32, v);
    charge_instr(ctx);
    let (arr, idx) = unpack_reg_pair(op.b);
    if do_aload(
        vm,
        ctx,
        op.a,
        arr.index() as u32,
        idx.index() as u32,
        ElemTy::from_code(TY),
        op.site2,
    ) {
        Step::Next
    } else {
        Step::Halt
    }
}

/// Second-round fusion of [`h_bin_move`] + Jump terminator: the operand
/// layout of `h_bin_move` unchanged, with the jump target (block id until
/// patched — `Kind::BinMoveJump`) in `imm`.
pub(crate) fn h_bin_move_jump<S: TraceSink, const B: u8>(
    vm: &mut Vm<S>,
    ctx: &mut Ctx,
    op: &Op<S>,
    _tc: &ThreadedCode<S>,
) -> Step {
    charge_instr(ctx);
    if !do_bin(vm, ctx, op.a, B, op.b, op.c, op.site) {
        return Step::Halt;
    }
    charge_instr(ctx);
    let (dst, src) = unpack_reg_pair(op.d);
    let v = ctx.reg(src.index() as u32);
    ctx.set_reg(dst.index() as u32, v);
    charge_term(ctx);
    ctx.pc = op.imm as usize;
    Step::Next
}

// ------------------------ Decode-time specialization ------------------------
//
// The decoder picks a handler instance with the operation / element-type
// code baked in as a const generic, so `from_code` and the operation match
// const-fold into straight-line code per opcode. The generic bodies above
// remain the single source of semantics; these selectors only enumerate
// the (small, closed) code spaces.

/// Selects the [`h_bin`] instance for a `BinOp` code.
pub(crate) fn bin_handler<S: TraceSink>(code: u8) -> Handler<S> {
    match code {
        0 => h_bin::<S, 0>,
        1 => h_bin::<S, 1>,
        2 => h_bin::<S, 2>,
        3 => h_bin::<S, 3>,
        4 => h_bin::<S, 4>,
        5 => h_bin::<S, 5>,
        6 => h_bin::<S, 6>,
        7 => h_bin::<S, 7>,
        8 => h_bin::<S, 8>,
        9 => h_bin::<S, 9>,
        _ => h_bin::<S, 10>,
    }
}

/// Selects the [`h_cmp`] instance for a `CmpOp` code.
pub(crate) fn cmp_handler<S: TraceSink>(code: u8) -> Handler<S> {
    match code {
        0 => h_cmp::<S, 0>,
        1 => h_cmp::<S, 1>,
        2 => h_cmp::<S, 2>,
        3 => h_cmp::<S, 3>,
        4 => h_cmp::<S, 4>,
        _ => h_cmp::<S, 5>,
    }
}

/// Selects the [`h_un`] instance for a `UnOp` code.
pub(crate) fn un_handler<S: TraceSink>(code: u8) -> Handler<S> {
    match code {
        0 => h_un::<S, 0>,
        _ => h_un::<S, 1>,
    }
}

/// Selects the [`h_convert`] instance for a `Conv` code.
pub(crate) fn conv_handler<S: TraceSink>(code: u8) -> Handler<S> {
    match code {
        0 => h_convert::<S, 0>,
        1 => h_convert::<S, 1>,
        2 => h_convert::<S, 2>,
        3 => h_convert::<S, 3>,
        4 => h_convert::<S, 4>,
        _ => h_convert::<S, 5>,
    }
}

/// Expands a 5-way `ElemTy`-code match selecting `$h::<S, TY>`.
macro_rules! elem_select {
    ($code:expr, $h:ident) => {
        match $code {
            0 => $h::<S, 0>,
            1 => $h::<S, 1>,
            2 => $h::<S, 2>,
            3 => $h::<S, 3>,
            _ => $h::<S, 4>,
        }
    };
}

/// Selects the [`h_getfield`] instance for an `ElemTy` code.
pub(crate) fn getfield_handler<S: TraceSink>(code: u8) -> Handler<S> {
    elem_select!(code, h_getfield)
}

/// Selects the [`h_putfield`] instance for an `ElemTy` code.
pub(crate) fn putfield_handler<S: TraceSink>(code: u8) -> Handler<S> {
    elem_select!(code, h_putfield)
}

/// Selects the [`h_aload`] instance for an `ElemTy` code.
pub(crate) fn aload_handler<S: TraceSink>(code: u8) -> Handler<S> {
    elem_select!(code, h_aload)
}

/// Selects the [`h_astore`] instance for an `ElemTy` code.
pub(crate) fn astore_handler<S: TraceSink>(code: u8) -> Handler<S> {
    elem_select!(code, h_astore)
}

/// Selects the [`h_cmp_branch`] instance for a `CmpOp` code.
pub(crate) fn cmp_branch_handler<S: TraceSink>(code: u8) -> Handler<S> {
    match code {
        0 => h_cmp_branch::<S, 0>,
        1 => h_cmp_branch::<S, 1>,
        2 => h_cmp_branch::<S, 2>,
        3 => h_cmp_branch::<S, 3>,
        4 => h_cmp_branch::<S, 4>,
        _ => h_cmp_branch::<S, 5>,
    }
}

/// Expands an 11-way `BinOp`-code match selecting `$h::<S, $($pre,)* B>`.
macro_rules! bin_select {
    ($code:expr, $h:ident $(, $pre:literal)*) => {
        match $code {
            0 => $h::<S, $($pre,)* 0>,
            1 => $h::<S, $($pre,)* 1>,
            2 => $h::<S, $($pre,)* 2>,
            3 => $h::<S, $($pre,)* 3>,
            4 => $h::<S, $($pre,)* 4>,
            5 => $h::<S, $($pre,)* 5>,
            6 => $h::<S, $($pre,)* 6>,
            7 => $h::<S, $($pre,)* 7>,
            8 => $h::<S, $($pre,)* 8>,
            9 => $h::<S, $($pre,)* 9>,
            _ => $h::<S, $($pre,)* 10>,
        }
    };
}

/// Selects the [`h_const_bin`] instance for a const-kind and `BinOp` code.
pub(crate) fn const_bin_handler<S: TraceSink>(kind: u8, bop: u8) -> Handler<S> {
    match kind {
        0 => bin_select!(bop, h_const_bin, 0),
        1 => bin_select!(bop, h_const_bin, 1),
        2 => bin_select!(bop, h_const_bin, 2),
        _ => bin_select!(bop, h_const_bin, 3),
    }
}

/// Selects the [`h_getfield_bin`] instance for an `ElemTy` and `BinOp` code.
pub(crate) fn getfield_bin_handler<S: TraceSink>(elem: u8, bop: u8) -> Handler<S> {
    match elem {
        0 => bin_select!(bop, h_getfield_bin, 0),
        1 => bin_select!(bop, h_getfield_bin, 1),
        2 => bin_select!(bop, h_getfield_bin, 2),
        3 => bin_select!(bop, h_getfield_bin, 3),
        _ => bin_select!(bop, h_getfield_bin, 4),
    }
}

/// Selects the [`h_bin_aload`] instance for an `ElemTy` and `BinOp` code.
pub(crate) fn bin_aload_handler<S: TraceSink>(elem: u8, bop: u8) -> Handler<S> {
    match elem {
        0 => bin_select!(bop, h_bin_aload, 0),
        1 => bin_select!(bop, h_bin_aload, 1),
        2 => bin_select!(bop, h_bin_aload, 2),
        3 => bin_select!(bop, h_bin_aload, 3),
        _ => bin_select!(bop, h_bin_aload, 4),
    }
}

/// Selects the [`h_bin_move`] instance for a `BinOp` code.
pub(crate) fn bin_move_handler<S: TraceSink>(bop: u8) -> Handler<S> {
    bin_select!(bop, h_bin_move)
}

/// Selects the [`h_aload_bin`] instance for an `ElemTy` and `BinOp` code.
pub(crate) fn aload_bin_handler<S: TraceSink>(elem: u8, bop: u8) -> Handler<S> {
    match elem {
        0 => bin_select!(bop, h_aload_bin, 0),
        1 => bin_select!(bop, h_aload_bin, 1),
        2 => bin_select!(bop, h_aload_bin, 2),
        3 => bin_select!(bop, h_aload_bin, 3),
        _ => bin_select!(bop, h_aload_bin, 4),
    }
}

/// Selects the [`h_bin_jump`] instance for a `BinOp` code.
pub(crate) fn bin_jump_handler<S: TraceSink>(bop: u8) -> Handler<S> {
    bin_select!(bop, h_bin_jump)
}

/// Selects the [`h_move_aload`] instance for an `ElemTy` code.
pub(crate) fn move_aload_handler<S: TraceSink>(elem: u8) -> Handler<S> {
    elem_select!(elem, h_move_aload)
}

/// Selects the [`h_bin_move_jump`] instance for a `BinOp` code.
pub(crate) fn bin_move_jump_handler<S: TraceSink>(bop: u8) -> Handler<S> {
    bin_select!(bop, h_bin_move_jump)
}

// ------------------------------- Pure helpers ------------------------------

#[inline(always)]
pub(crate) fn coerce_store(v: Value, _ty: ElemTy) -> Value {
    v
}

#[inline(always)]
pub(crate) fn exec_bin(op: BinOp, a: Value, b: Value) -> Option<Value> {
    Some(match (a, b) {
        (Value::I32(x), Value::I32(y)) => Value::I32(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u32).wrapping_shr(y as u32)) as i32,
        }),
        (Value::I64(x), Value::I64(y)) => Value::I64(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u64).wrapping_shr(y as u32)) as i64,
        }),
        (Value::F64(x), Value::F64(y)) => Value::F64(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            _ => unreachable!("verifier rejects float bit-ops"),
        }),
        _ => unreachable!("verifier rejects mixed-type binops"),
    })
}

#[inline(always)]
pub(crate) fn exec_un(op: UnOp, v: Value) -> Value {
    match (op, v) {
        (UnOp::Neg, Value::I32(x)) => Value::I32(x.wrapping_neg()),
        (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
        (UnOp::Neg, Value::F64(x)) => Value::F64(-x),
        (UnOp::Not, Value::I32(x)) => Value::I32(!x),
        (UnOp::Not, Value::I64(x)) => Value::I64(!x),
        _ => unreachable!("verifier rejects other unops"),
    }
}

#[inline(always)]
pub(crate) fn exec_cmp(op: CmpOp, a: Value, b: Value) -> i32 {
    let ord = match (a, b) {
        (Value::I32(x), Value::I32(y)) => x.partial_cmp(&y),
        (Value::I64(x), Value::I64(y)) => x.partial_cmp(&y),
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(&y),
        (Value::Ref(x), Value::Ref(y)) => x.partial_cmp(&y),
        _ => unreachable!("verifier rejects mixed-type compares"),
    };
    let Some(ord) = ord else {
        // NaN comparisons are all false except Ne.
        return matches!(op, CmpOp::Ne) as i32;
    };
    use std::cmp::Ordering::*;
    (match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }) as i32
}

#[inline(always)]
pub(crate) fn exec_conv(conv: Conv, v: Value) -> Value {
    match (conv, v) {
        (Conv::I32ToI64, Value::I32(x)) => Value::I64(x as i64),
        (Conv::I64ToI32, Value::I64(x)) => Value::I32(x as i32),
        (Conv::I32ToF64, Value::I32(x)) => Value::F64(x as f64),
        (Conv::F64ToI32, Value::F64(x)) => Value::I32(x as i32),
        (Conv::I64ToF64, Value::I64(x)) => Value::F64(x as f64),
        (Conv::F64ToI64, Value::F64(x)) => Value::I64(x as i64),
        _ => unreachable!("verifier rejects other conversions"),
    }
}
