//! The virtual machine: iterative interpreter with JIT hook, GC glue, and
//! cycle accounting.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use spf_adapt::AdaptState;
use spf_core::offline::OfflineProfile;
use spf_core::{MethodReport, PrefetchMode, StridePrefetcher};
use spf_heap::{static_addr, Addr, Heap, Layout, Value, ARRAY_DATA_OFFSET, NULL};
use spf_ir::{
    BinOp, BlockId, CmpOp, Conv, ElemTy, Function, Instr, InstrRef, MethodId, PrefetchAddr,
    PrefetchKind, Program, Reg, Terminator, Ty, UnOp,
};
use spf_memsim::{CacheLevel, MemorySystem, ProcessorConfig};
use spf_trace::{NoopSink, SiteId, SiteInfo, SiteKind, SiteTable, TraceEvent, TraceSink};

use crate::config::{
    VmConfig, CALL_OVERHEAD, COMPILED_INSTR_COST, CYCLES_PER_NANO, RECOMPILE_BASE_CYCLES,
    RECOMPILE_CYCLES_PER_INSTR,
};
use crate::error::VmError;
use crate::passes;
use crate::stats::{MethodCycles, VmStats};

struct Frame {
    method: MethodId,
    code: Rc<Function>,
    compiled: bool,
    regs: Vec<Value>,
    block: BlockId,
    idx: usize,
    ret_dst: Option<Reg>,
}

/// The mixed-mode virtual machine.
///
/// # Example
///
/// ```
/// use spf_ir::{ProgramBuilder, Ty};
/// use spf_memsim::ProcessorConfig;
/// use spf_vm::{Vm, VmConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
/// let x = b.param(0);
/// let y = b.add(x, x);
/// b.ret(Some(y));
/// let main = b.finish();
/// let mut vm = Vm::new(pb.finish(), VmConfig::default(), ProcessorConfig::pentium4());
/// let out = vm.call(main, &[spf_heap::Value::I32(21)]).unwrap();
/// assert_eq!(out, Some(spf_heap::Value::I32(42)));
/// ```
pub struct Vm<S: TraceSink = NoopSink> {
    program: Program,
    config: VmConfig,
    heap: Heap,
    statics: Vec<Value>,
    mem: MemorySystem<S>,
    originals: Vec<Rc<Function>>,
    compiled: Vec<Option<Rc<Function>>>,
    invocations: Vec<u32>,
    reports: Vec<MethodReport>,
    stats: VmStats,
    offline: HashMap<MethodId, OfflineProfile>,
    sites: SiteTable,
    site_ids: HashMap<(MethodId, InstrRef), SiteId>,
    frames: Vec<Frame>,
    adapt: AdaptState,
    adaptive: bool,
    history: Vec<(MethodId, u32, Rc<Function>)>,
}

impl<S: TraceSink> std::fmt::Debug for Vm<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("methods", &self.program.method_count())
            .field("cycles", &self.stats.cycles)
            .finish_non_exhaustive()
    }
}

impl Vm {
    /// Creates an untraced VM for `program` on the processor `proc`.
    pub fn new(program: Program, config: VmConfig, proc: ProcessorConfig) -> Self {
        Vm::with_sink(program, config, proc, NoopSink)
    }
}

impl<S: TraceSink> Vm<S> {
    /// Creates a VM for `program` on the processor `proc`, emitting trace
    /// events into `sink`. With [`NoopSink`] every emission site compiles
    /// out and this is exactly [`Vm::new`].
    pub fn with_sink(program: Program, config: VmConfig, proc: ProcessorConfig, sink: S) -> Self {
        let layout = Layout::compute(&program);
        let heap = Heap::new(layout, config.heap_bytes);
        let statics = program
            .static_ids()
            .map(|sid| Value::zero_of(program.static_def(sid).ty.reg_ty()))
            .collect();
        let originals: Vec<Rc<Function>> = program
            .method_ids()
            .map(|m| Rc::new(program.method(m).func().clone()))
            .collect();
        let n = program.method_count();
        let stats = VmStats {
            per_method: vec![MethodCycles::default(); n],
            ..VmStats::default()
        };
        let adaptive = config.prefetch.mode == PrefetchMode::Adaptive;
        let adapt = AdaptState::new(config.adapt);
        Vm {
            program,
            heap,
            statics,
            mem: MemorySystem::with_sink(proc, sink),
            originals,
            compiled: vec![None; n],
            invocations: vec![0; n],
            reports: Vec::new(),
            stats,
            offline: HashMap::new(),
            sites: SiteTable::new(),
            site_ids: HashMap::new(),
            frames: Vec::new(),
            adapt,
            adaptive,
            history: Vec::new(),
            config,
        }
    }

    /// The trace sink (read access, e.g. to drain collected events).
    pub fn sink(&self) -> &S {
        self.mem.sink()
    }

    /// The table of prefetch sites registered by JIT compilations so far.
    /// Empty while tracing is disabled.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Memory-system statistics so far.
    pub fn mem_stats(&self) -> &spf_memsim::MemStats {
        self.mem.stats()
    }

    /// The heap (read access, e.g. for assertions in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Optimization reports of all JIT compilations performed.
    pub fn reports(&self) -> &[MethodReport] {
        &self.reports
    }

    /// Off-line address profiles (only populated when
    /// [`VmConfig::collect_offline_profile`] is set).
    pub fn offline_profiles(&self) -> &HashMap<MethodId, OfflineProfile> {
        &self.offline
    }

    /// Installs a pre-optimized body for `mid`, bypassing the JIT trigger
    /// (used by the off-line profiling ablation).
    pub fn install_compiled(&mut self, mid: MethodId, func: Function) {
        let func = Rc::new(func);
        if S::ENABLED {
            self.register_sites(mid, &func, 0);
        }
        self.history.push((mid, 0, Rc::clone(&func)));
        self.compiled[mid.index()] = Some(func);
    }

    /// The adaptive-reprofiling guard state (per-method generations,
    /// per-site useless counters). Inert unless the VM runs in
    /// [`PrefetchMode::Adaptive`].
    pub fn adapt_state(&self) -> &AdaptState {
        &self.adapt
    }

    /// Every compiled body installed so far, as `(method, generation,
    /// body)` in installation order. Adaptive recompilations append one
    /// entry per generation, so external analyses (e.g. `spf-lint`) can
    /// check every compilation the VM ever ran, not just the bodies still
    /// installed.
    pub fn compiled_generations(&self) -> impl Iterator<Item = (MethodId, u32, &Function)> {
        self.history.iter().map(|(m, g, f)| (*m, *g, f.as_ref()))
    }

    /// Registers every `Prefetch`/`SpecLoad` instruction of a freshly
    /// installed body so runtime events can be attributed back to the IR
    /// site and its loop. Only called when tracing is enabled.
    fn register_sites(&mut self, mid: MethodId, func: &Function, generation: u32) {
        let cfg = spf_ir::cfg::Cfg::compute(func);
        let dom = spf_ir::dom::DomTree::compute(func, &cfg);
        let forest = spf_ir::loops::LoopForest::compute(func, &cfg, &dom);
        for site in func.instr_sites() {
            let kind = match func.instr(site) {
                Instr::Prefetch {
                    kind: PrefetchKind::Hardware,
                    ..
                } => SiteKind::Swpf,
                Instr::Prefetch {
                    kind: PrefetchKind::GuardedLoad,
                    ..
                } => SiteKind::Guarded,
                Instr::SpecLoad { .. } => SiteKind::SpecLoad,
                _ => continue,
            };
            let loop_header = forest
                .innermost(site.block)
                .map(|l| forest.info(l).header.index() as u32);
            let id = self.sites.register(SiteInfo {
                id: SiteId::UNKNOWN,
                method: func.name().to_string(),
                method_index: mid.index() as u32,
                block: site.block.index() as u32,
                index: site.index,
                loop_header,
                kind,
                generation,
            });
            self.site_ids.insert((mid, site), id);
            self.mem.sink_mut().emit(TraceEvent::SiteRegistered {
                site: id,
                method: mid.index() as u32,
                block: site.block.index() as u32,
                index: site.index,
                generation,
            });
        }
    }

    /// Whether `mid` has been JIT-compiled.
    pub fn is_compiled(&self, mid: MethodId) -> bool {
        self.compiled[mid.index()].is_some()
    }

    /// The installed compiled body of `mid`, if any (for external analyses
    /// such as the `spf-lint` tool).
    pub fn compiled_body(&self, mid: MethodId) -> Option<&Function> {
        self.compiled[mid.index()].as_deref()
    }

    /// Clears the memory system and measurement counters while keeping
    /// compiled code, the heap, and statics — the "steady state" protocol:
    /// the paper reports best run times under continuous execution, where
    /// JIT compilation no longer occurs.
    pub fn reset_measurement(&mut self) {
        self.mem.reset();
        let n = self.program.method_count();
        self.stats = VmStats {
            per_method: vec![MethodCycles::default(); n],
            ..VmStats::default()
        };
    }

    /// Calls method `name` with `args`.
    ///
    /// # Errors
    ///
    /// [`VmError`] on runtime faults.
    ///
    /// # Panics
    ///
    /// Panics if no method has that name.
    pub fn call_by_name(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let mid = self
            .program
            .method_by_name(name)
            .unwrap_or_else(|| panic!("no method named {name}"));
        self.call(mid, args)
    }

    /// Calls method `mid` with `args` and runs to completion.
    ///
    /// # Errors
    ///
    /// [`VmError`] on runtime faults.
    pub fn call(&mut self, mid: MethodId, args: &[Value]) -> Result<Option<Value>, VmError> {
        assert!(self.frames.is_empty(), "vm is not reentrant");
        self.push_frame(mid, args, None)?;
        let result = self.run();
        if result.is_err() {
            self.frames.clear();
        }
        result
    }

    fn push_frame(
        &mut self,
        mid: MethodId,
        args: &[Value],
        ret_dst: Option<Reg>,
    ) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_stack_depth {
            return Err(VmError::StackOverflow);
        }
        self.invocations[mid.index()] += 1;
        self.stats.per_method[mid.index()].invocations += 1;
        if self.adaptive && self.compiled[mid.index()].is_some() {
            if let Some(reason) = self.adapt.check_stale(mid.index(), self.heap.gc_epoch()) {
                let generation = self.adapt.guard(mid.index()).map_or(0, |g| g.generation);
                if S::ENABLED {
                    let now = self.stats.cycles;
                    self.mem.sink_mut().emit(TraceEvent::SiteStale {
                        method: mid.index() as u32,
                        generation,
                        reason,
                        now,
                    });
                    self.mem.sink_mut().emit(TraceEvent::Deopt {
                        method: mid.index() as u32,
                        generation,
                        now,
                    });
                }
                // Deopt: drop back to the unprefetched original body (the
                // interpreter runs it) until the backoff window elapses.
                self.compiled[mid.index()] = None;
                self.stats.deopts += 1;
                self.adapt
                    .on_deopt(mid.index(), u64::from(self.invocations[mid.index()]));
            }
        }
        if self.compiled[mid.index()].is_none()
            && self.invocations[mid.index()] >= self.config.compile_threshold
            && (!self.adaptive
                || self
                    .adapt
                    .may_recompile(mid.index(), u64::from(self.invocations[mid.index()])))
        {
            self.jit_compile(mid, args);
        }
        let (code, compiled) = match &self.compiled[mid.index()] {
            Some(c) => (Rc::clone(c), true),
            None => (Rc::clone(&self.originals[mid.index()]), false),
        };
        let mut regs: Vec<Value> = (0..code.reg_count())
            .map(|i| Value::zero_of(code.reg_ty(Reg::new(i))))
            .collect();
        regs[..args.len()].copy_from_slice(args);
        let entry = code.entry();
        self.frames.push(Frame {
            method: mid,
            code,
            compiled,
            regs,
            block: entry,
            idx: 0,
            ret_dst,
        });
        Ok(())
    }

    /// JIT-compiles `mid`: baseline passes, then the stride-prefetching
    /// pass with the actual `args` of the pending invocation.
    fn jit_compile(&mut self, mid: MethodId, args: &[Value]) {
        let t0 = Instant::now();
        if S::ENABLED {
            self.mem.sink_mut().emit(TraceEvent::JitBegin {
                method: mid.index() as u32,
            });
        }
        let original = Rc::clone(&self.originals[mid.index()]);
        let pre_inlined;
        let input: &Function = if self.config.inline_small_methods {
            pre_inlined = crate::inline::inline_small_calls(
                &self.program,
                &original,
                mid,
                crate::inline::DEFAULT_MAX_CALLEE_INSTRS,
                crate::inline::DEFAULT_MAX_GROWTH,
            );
            &pre_inlined
        } else {
            &original
        };
        let unrolled;
        let input: &Function = if self.config.unroll_factor > 1 {
            unrolled = crate::unroll::unroll_innermost_loops(
                &self.program,
                input,
                self.config.unroll_factor,
                2048,
            );
            &unrolled
        } else {
            input
        };
        let base = passes::optimize(&self.program, input);
        let prefetcher = StridePrefetcher::new(self.config.prefetch.clone());
        // Clone the processor description so the optimizer can borrow the
        // memory system's sink mutably at the same time.
        let proc = self.mem.config().clone();
        let mut outcome = prefetcher.optimize_traced(
            &self.program,
            &base,
            &self.heap,
            &self.statics,
            args,
            &proc,
            self.mem.sink_mut(),
        );
        // Stamp the compilation generation and the GC epoch the inspected
        // strides belong to (no GC can run inside `jit_compile`, so the
        // epoch read here is the one inspection saw).
        let generation = if self.adaptive {
            self.adapt.on_compile(mid.index(), self.heap.gc_epoch())
        } else {
            0
        };
        outcome.report.generation = generation;
        // Debug builds run the static lint over every JIT output: nothing
        // the pipeline emits after inline/unroll/DCE may use a register
        // before assignment, leak a speculative value, or break the
        // prefetch-kind policy. (Kept out of release builds and of
        // `pass_nanos`, so measured numbers are untouched.)
        #[cfg(debug_assertions)]
        {
            let policy = self
                .config
                .prefetch
                .guarded_policy
                .lint_check(self.mem.config().swpf_drops_on_tlb_miss);
            let findings = spf_analysis::lint(&outcome.func, &spf_analysis::LintConfig { policy });
            assert!(
                findings.is_empty(),
                "JIT output for {} fails the static lint: {findings:?}",
                outcome.func.name()
            );
        }
        let total_nanos = t0.elapsed().as_nanos();
        self.stats.jit_nanos += total_nanos;
        self.stats.prefetch_pass_nanos += outcome.report.pass_nanos;
        let jit_cycles = if generation > 0 {
            // Adaptive recompilations run inside measured steady-state
            // windows; charge a size-proportional deterministic cost so
            // the simulated clock never depends on host wall-clock time.
            RECOMPILE_BASE_CYCLES
                + RECOMPILE_CYCLES_PER_INSTR * outcome.func.instr_sites().count() as u64
        } else {
            (total_nanos as f64 * CYCLES_PER_NANO) as u64
        };
        self.stats.jit_cycles += jit_cycles;
        self.stats.cycles += jit_cycles;
        self.stats.methods_compiled += 1;
        if generation > 0 {
            self.stats.recompiles += 1;
            if outcome.report.total_prefetches > 0 {
                // Re-inspection re-agreed on prefetchable strides.
                self.stats.reagreed += 1;
            }
            if S::ENABLED {
                self.mem.sink_mut().emit(TraceEvent::Recompile {
                    method: mid.index() as u32,
                    generation,
                    now: self.stats.cycles,
                });
            }
        }
        let func = Rc::new(outcome.func);
        if S::ENABLED {
            self.register_sites(mid, &func, generation);
        }
        self.history.push((mid, generation, Rc::clone(&func)));
        self.compiled[mid.index()] = Some(func);
        self.reports.push(outcome.report);
    }

    fn gc(&mut self) {
        let mut roots: Vec<Addr> = Vec::new();
        for f in &self.frames {
            for (i, v) in f.regs.iter().enumerate() {
                if f.code.reg_ty(Reg::new(i)) == Ty::Ref {
                    if let Value::Ref(a) = v {
                        if *a != NULL && self.heap.contains(*a) {
                            roots.push(*a);
                        }
                    }
                }
            }
        }
        for v in &self.statics {
            if let Value::Ref(a) = v {
                if *a != NULL && self.heap.contains(*a) {
                    roots.push(*a);
                }
            }
        }
        let (cstats, fwd) = self.heap.collect(&roots);
        if S::ENABLED {
            self.mem.sink_mut().emit(TraceEvent::GcSlide {
                now: self.stats.cycles,
                live_bytes: cstats.live_bytes,
                freed_bytes: cstats.freed_bytes,
                moved_objects: cstats.moved_objects,
            });
        }
        for f in &mut self.frames {
            for v in f.regs.iter_mut() {
                if let Value::Ref(a) = v {
                    *a = fwd.forward(*a);
                }
            }
        }
        for v in &mut self.statics {
            if let Value::Ref(a) = v {
                *a = fwd.forward(*a);
            }
        }
        let cost = 200 + cstats.live_bytes / 4 + cstats.freed_bytes / 16;
        self.stats.cycles += cost;
        self.stats.gc_cycles += cost;
        self.stats.gc_count += 1;
    }

    fn alloc_object(&mut self, class: spf_ir::ClassId) -> Result<Addr, VmError> {
        if let Some(a) = self.heap.alloc_object(class) {
            return Ok(a);
        }
        self.gc();
        self.heap.alloc_object(class).ok_or(VmError::OutOfMemory {
            requested: self.heap.layout_tables().class_size(class),
        })
    }

    fn alloc_array(&mut self, elem: ElemTy, len: u64) -> Result<Addr, VmError> {
        if let Some(a) = self.heap.alloc_array(elem, len) {
            return Ok(a);
        }
        self.gc();
        self.heap
            .alloc_array(elem, len)
            .ok_or(VmError::OutOfMemory {
                requested: Layout::array_size(elem, len),
            })
    }

    fn prefetch_addr(&self, frame: &Frame, addr: &PrefetchAddr) -> Option<Addr> {
        match *addr {
            PrefetchAddr::FieldOf { base, delta } => match frame.regs[base.index()] {
                Value::Ref(a) if a != NULL => Some(a.wrapping_add(delta as u64)),
                _ => None,
            },
            PrefetchAddr::ArrayElem {
                arr,
                idx,
                scale,
                delta,
            } => match (frame.regs[arr.index()], frame.regs[idx.index()]) {
                (Value::Ref(a), Value::I32(i)) if a != NULL => Some(
                    a.wrapping_add((i as i64).wrapping_mul(scale as i64) as u64)
                        .wrapping_add(delta as u64),
                ),
                _ => None,
            },
        }
    }

    /// The dispatch loop.
    ///
    /// Hot-path structure: the top frame's code (one `Rc` clone per frame
    /// switch instead of one `Instr` clone per instruction), block cursor,
    /// and per-instruction cost are cached in locals, and all counters —
    /// the simulated clock, retired-instruction counts, and per-method
    /// attribution — accumulate in registers. They are flushed to
    /// [`VmStats`] only at call boundaries and on exit. The memory
    /// simulator still observes the exact simulated clock: `cycles` is the
    /// live counter and is synchronized with `self.stats.cycles` around
    /// every operation that charges the clock elsewhere (JIT compilation
    /// in `push_frame`, GC in the allocators), so every latency and every
    /// cycle total is bit-identical to the per-instruction bookkeeping
    /// this replaces.
    #[allow(clippy::too_many_lines)]
    fn run(&mut self) -> Result<Option<Value>, VmError> {
        // Counter registers, flushed by `finish!`.
        let mut cycles = self.stats.cycles;
        let mut retired: u64 = 0;
        let mut interp_retired: u64 = 0;
        let mut comp_retired: u64 = 0;
        // Cycles charged to the current frame, not yet attributed to
        // `per_method`; flushed by `flush_frame!` at frame switches.
        let mut frame_acc: u64 = 0;
        // Top-frame cache, refreshed by `reload!` after push/pop.
        let (mut code, mut cur_block, mut idx, mut cur_mid, mut cur_compiled) = {
            let f = self.frames.last().expect("frame");
            (Rc::clone(&f.code), f.block, f.idx, f.method, f.compiled)
        };
        let mut cur_cost = if cur_compiled {
            COMPILED_INSTR_COST
        } else {
            COMPILED_INSTR_COST * self.config.interp_cost_multiplier
        };

        macro_rules! flush_frame {
            () => {{
                let pm = &mut self.stats.per_method[cur_mid.index()];
                if cur_compiled {
                    pm.compiled += frame_acc;
                } else {
                    pm.interpreted += frame_acc;
                }
                frame_acc = 0;
            }};
        }
        macro_rules! reload {
            () => {{
                let f = self.frames.last().expect("frame");
                code = Rc::clone(&f.code);
                cur_block = f.block;
                idx = f.idx;
                cur_mid = f.method;
                cur_compiled = f.compiled;
                cur_cost = if cur_compiled {
                    COMPILED_INSTR_COST
                } else {
                    COMPILED_INSTR_COST * self.config.interp_cost_multiplier
                };
            }};
        }
        macro_rules! finish {
            ($res:expr) => {{
                let pm = &mut self.stats.per_method[cur_mid.index()];
                if cur_compiled {
                    pm.compiled += frame_acc;
                } else {
                    pm.interpreted += frame_acc;
                }
                self.stats.cycles = cycles;
                self.stats.retired_instructions += retired;
                self.stats.interpreted_instructions += interp_retired;
                self.stats.compiled_instructions += comp_retired;
                return $res;
            }};
        }
        macro_rules! frame {
            () => {
                self.frames.last().expect("frame")
            };
        }
        macro_rules! set {
            ($dst:expr, $v:expr) => {{
                let v = $v;
                self.frames.last_mut().expect("frame").regs[$dst.index()] = v;
            }};
        }

        loop {
            // Fetch.
            let block = code.block(cur_block);
            if idx >= block.instrs.len() {
                // Terminator.
                let term = block.term.clone();
                cycles += cur_cost;
                frame_acc += cur_cost;
                retired += 1;
                match term {
                    Terminator::Jump(t) => {
                        cur_block = t;
                        idx = 0;
                    }
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let taken = frame!().regs[cond.index()].as_i32() != 0;
                        cur_block = if taken { then_bb } else { else_bb };
                        idx = 0;
                    }
                    Terminator::Return(v) => {
                        flush_frame!();
                        let f = self.frames.pop().expect("frame");
                        let value = v.map(|r| f.regs[r.index()]);
                        match self.frames.last_mut() {
                            Some(caller) => {
                                if let (Some(dst), Some(val)) = (f.ret_dst, value) {
                                    caller.regs[dst.index()] = val;
                                }
                            }
                            None => finish!(Ok(value)),
                        }
                        reload!();
                    }
                    Terminator::Unreachable => finish!(Err(VmError::UnreachableExecuted)),
                }
                continue;
            }

            let site = InstrRef::new(cur_block, idx);
            let instr = &block.instrs[idx];
            cycles += cur_cost;
            frame_acc += cur_cost;
            retired += 1;
            if cur_compiled {
                comp_retired += 1;
            } else {
                interp_retired += 1;
            }
            idx += 1;

            match *instr {
                Instr::Const { dst, value } => {
                    let v = match value {
                        spf_ir::Const::I32(x) => Value::I32(x),
                        spf_ir::Const::I64(x) => Value::I64(x),
                        spf_ir::Const::F64(x) => Value::F64(x),
                        spf_ir::Const::Null => Value::Ref(NULL),
                    };
                    set!(dst, v);
                }
                Instr::Move { dst, src } => {
                    let v = frame!().regs[src.index()];
                    set!(dst, v);
                }
                Instr::Bin { dst, op, a, b } => {
                    let (x, y) = (frame!().regs[a.index()], frame!().regs[b.index()]);
                    let v = match exec_bin(op, x, y) {
                        Some(v) => v,
                        None => finish!(Err(VmError::DivisionByZero { at: site })),
                    };
                    set!(dst, v);
                }
                Instr::Un { dst, op, src } => {
                    let v = exec_un(op, frame!().regs[src.index()]);
                    set!(dst, v);
                }
                Instr::Cmp { dst, op, a, b } => {
                    let (x, y) = (frame!().regs[a.index()], frame!().regs[b.index()]);
                    set!(dst, Value::I32(exec_cmp(op, x, y)));
                }
                Instr::Convert { dst, conv, src } => {
                    let v = exec_conv(conv, frame!().regs[src.index()]);
                    set!(dst, v);
                }
                Instr::GetField { dst, obj, field } => {
                    let a = frame!().regs[obj.index()].as_ref_addr();
                    if a == NULL {
                        finish!(Err(VmError::NullPointer { at: site }));
                    }
                    let ty = self.program.field(field).ty;
                    let addr = a + self.heap.layout_tables().field_offset(field);
                    let lat = self.mem.load(addr, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    if self.config.collect_offline_profile {
                        self.offline.entry(cur_mid).or_default().record(site, addr);
                    }
                    let v = match self.heap.read(addr, ty) {
                        Ok(v) => v,
                        Err(_) => finish!(Err(VmError::BadAccess { addr })),
                    };
                    set!(dst, v);
                }
                Instr::PutField { obj, field, src } => {
                    let a = frame!().regs[obj.index()].as_ref_addr();
                    if a == NULL {
                        finish!(Err(VmError::NullPointer { at: site }));
                    }
                    let ty = self.program.field(field).ty;
                    let addr = a + self.heap.layout_tables().field_offset(field);
                    let lat = self.mem.store(addr, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    let v = frame!().regs[src.index()];
                    let v = coerce_store(v, ty);
                    if self.heap.write(addr, ty, v).is_err() {
                        finish!(Err(VmError::BadAccess { addr }));
                    }
                }
                Instr::GetStatic { dst, sid } => {
                    let addr = static_addr(sid);
                    let lat = self.mem.load(addr, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    let v = self.statics[sid.index()];
                    set!(dst, v);
                }
                Instr::PutStatic { sid, src } => {
                    let addr = static_addr(sid);
                    let lat = self.mem.store(addr, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    self.statics[sid.index()] = frame!().regs[src.index()];
                }
                Instr::ALoad {
                    dst,
                    arr,
                    idx,
                    elem,
                } => {
                    let a = frame!().regs[arr.index()].as_ref_addr();
                    if a == NULL {
                        finish!(Err(VmError::NullPointer { at: site }));
                    }
                    let i = frame!().regs[idx.index()].as_i32();
                    let len = self.heap.array_len(a);
                    if i < 0 || i as u64 >= len {
                        finish!(Err(VmError::IndexOutOfBounds {
                            at: site,
                            index: i,
                            len,
                        }));
                    }
                    let addr = a + ARRAY_DATA_OFFSET + i as u64 * elem.size();
                    let lat = self.mem.load(addr, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    if self.config.collect_offline_profile {
                        self.offline.entry(cur_mid).or_default().record(site, addr);
                    }
                    let v = match self.heap.read(addr, elem) {
                        Ok(v) => v,
                        Err(_) => finish!(Err(VmError::BadAccess { addr })),
                    };
                    set!(dst, v);
                }
                Instr::AStore {
                    arr,
                    idx,
                    src,
                    elem,
                } => {
                    let a = frame!().regs[arr.index()].as_ref_addr();
                    if a == NULL {
                        finish!(Err(VmError::NullPointer { at: site }));
                    }
                    let i = frame!().regs[idx.index()].as_i32();
                    let len = self.heap.array_len(a);
                    if i < 0 || i as u64 >= len {
                        finish!(Err(VmError::IndexOutOfBounds {
                            at: site,
                            index: i,
                            len,
                        }));
                    }
                    let addr = a + ARRAY_DATA_OFFSET + i as u64 * elem.size();
                    let lat = self.mem.store(addr, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    let v = coerce_store(frame!().regs[src.index()], elem);
                    if self.heap.write(addr, elem, v).is_err() {
                        finish!(Err(VmError::BadAccess { addr }));
                    }
                }
                Instr::ArrayLen { dst, arr } => {
                    let a = frame!().regs[arr.index()].as_ref_addr();
                    if a == NULL {
                        finish!(Err(VmError::NullPointer { at: site }));
                    }
                    let lat = self.mem.load(a + 8, cycles);
                    cycles += lat;
                    frame_acc += lat;
                    if self.config.collect_offline_profile {
                        self.offline.entry(cur_mid).or_default().record(site, a + 8);
                    }
                    set!(dst, Value::I32(self.heap.array_len(a) as i32));
                }
                Instr::New { dst, class } => {
                    // The allocator may GC, which charges the clock.
                    self.stats.cycles = cycles;
                    let a = match self.alloc_object(class) {
                        Ok(a) => a,
                        Err(e) => {
                            cycles = self.stats.cycles;
                            finish!(Err(e));
                        }
                    };
                    cycles = self.stats.cycles;
                    let size = self.heap.layout_tables().class_size(class);
                    let lat = self.mem.store(a, cycles);
                    let cost = lat + 4 + size / 32;
                    cycles += cost;
                    frame_acc += cost;
                    set!(dst, Value::Ref(a));
                }
                Instr::NewArray { dst, elem, len } => {
                    let n = frame!().regs[len.index()].as_i32();
                    if n < 0 {
                        finish!(Err(VmError::IndexOutOfBounds {
                            at: site,
                            index: n,
                            len: 0,
                        }));
                    }
                    // The allocator may GC, which charges the clock.
                    self.stats.cycles = cycles;
                    let a = match self.alloc_array(elem, n as u64) {
                        Ok(a) => a,
                        Err(e) => {
                            cycles = self.stats.cycles;
                            finish!(Err(e));
                        }
                    };
                    cycles = self.stats.cycles;
                    let size = Layout::array_size(elem, n as u64);
                    let lat = self.mem.store(a, cycles);
                    let cost = lat + 4 + size / 32;
                    cycles += cost;
                    frame_acc += cost;
                    set!(dst, Value::Ref(a));
                }
                Instr::Call {
                    dst,
                    callee,
                    ref args,
                } => {
                    cycles += CALL_OVERHEAD;
                    frame_acc += CALL_OVERHEAD;
                    let argv: Vec<Value> = {
                        let f = frame!();
                        args.iter().map(|r| f.regs[r.index()]).collect()
                    };
                    flush_frame!();
                    {
                        // Persist the cursor so the callee's return resumes
                        // after this call.
                        let f = self.frames.last_mut().expect("frame");
                        f.block = cur_block;
                        f.idx = idx;
                    }
                    // `push_frame` may JIT-compile, which charges the clock.
                    self.stats.cycles = cycles;
                    if let Err(e) = self.push_frame(callee, &argv, dst) {
                        cycles = self.stats.cycles;
                        finish!(Err(e));
                    }
                    cycles = self.stats.cycles;
                    reload!();
                }
                Instr::Prefetch { addr, kind } => {
                    if let Some(target) = self.prefetch_addr(frame!(), &addr) {
                        if S::ENABLED {
                            let id = self.site_ids.get(&(cur_mid, site));
                            self.mem.set_site(id.copied().unwrap_or(SiteId::UNKNOWN));
                        }
                        if self.adaptive {
                            // A prefetch whose line is already cached at
                            // the fill target is useless — the same test
                            // the memory system applies internally, probed
                            // non-mutatingly so simulated numbers are
                            // untouched.
                            let level = match kind {
                                PrefetchKind::Hardware => self.mem.config().swpf_target,
                                PrefetchKind::GuardedLoad => CacheLevel::L1,
                            };
                            let useless = self.mem.line_present(level, target);
                            self.adapt.record_issue(
                                cur_mid.index(),
                                (site.block.index() as u32, site.index),
                                useless,
                            );
                        }
                        let cost = match kind {
                            PrefetchKind::Hardware => self.mem.software_prefetch(target, cycles),
                            PrefetchKind::GuardedLoad => self.mem.guarded_load(target, cycles),
                        };
                        cycles += cost;
                        frame_acc += cost;
                    }
                }
                Instr::SpecLoad { dst, addr } => {
                    let v = match self.prefetch_addr(frame!(), &addr) {
                        Some(target) => {
                            if S::ENABLED {
                                let id = self.site_ids.get(&(cur_mid, site));
                                self.mem.set_site(id.copied().unwrap_or(SiteId::UNKNOWN));
                            }
                            if self.adaptive {
                                let useless = self.mem.line_present(CacheLevel::L1, target);
                                self.adapt.record_issue(
                                    cur_mid.index(),
                                    (site.block.index() as u32, site.index),
                                    useless,
                                );
                            }
                            let cost = self.mem.guarded_load(target, cycles);
                            cycles += cost;
                            frame_acc += cost;
                            match spf_heap::HeapRead::try_read(&self.heap, target, ElemTy::Ref) {
                                Some(Value::Ref(a)) => Value::Ref(a),
                                _ => Value::Ref(NULL),
                            }
                        }
                        None => Value::Ref(NULL),
                    };
                    set!(dst, v);
                }
            }
        }
    }
}

fn coerce_store(v: Value, _ty: ElemTy) -> Value {
    v
}

fn exec_bin(op: BinOp, a: Value, b: Value) -> Option<Value> {
    Some(match (a, b) {
        (Value::I32(x), Value::I32(y)) => Value::I32(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u32).wrapping_shr(y as u32)) as i32,
        }),
        (Value::I64(x), Value::I64(y)) => Value::I64(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::UShr => ((x as u64).wrapping_shr(y as u32)) as i64,
        }),
        (Value::F64(x), Value::F64(y)) => Value::F64(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            _ => unreachable!("verifier rejects float bit-ops"),
        }),
        _ => unreachable!("verifier rejects mixed-type binops"),
    })
}

fn exec_un(op: UnOp, v: Value) -> Value {
    match (op, v) {
        (UnOp::Neg, Value::I32(x)) => Value::I32(x.wrapping_neg()),
        (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
        (UnOp::Neg, Value::F64(x)) => Value::F64(-x),
        (UnOp::Not, Value::I32(x)) => Value::I32(!x),
        (UnOp::Not, Value::I64(x)) => Value::I64(!x),
        _ => unreachable!("verifier rejects other unops"),
    }
}

fn exec_cmp(op: CmpOp, a: Value, b: Value) -> i32 {
    let ord = match (a, b) {
        (Value::I32(x), Value::I32(y)) => x.partial_cmp(&y),
        (Value::I64(x), Value::I64(y)) => x.partial_cmp(&y),
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(&y),
        (Value::Ref(x), Value::Ref(y)) => x.partial_cmp(&y),
        _ => unreachable!("verifier rejects mixed-type compares"),
    };
    let Some(ord) = ord else {
        // NaN comparisons are all false except Ne.
        return matches!(op, CmpOp::Ne) as i32;
    };
    use std::cmp::Ordering::*;
    (match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }) as i32
}

fn exec_conv(conv: Conv, v: Value) -> Value {
    match (conv, v) {
        (Conv::I32ToI64, Value::I32(x)) => Value::I64(x as i64),
        (Conv::I64ToI32, Value::I64(x)) => Value::I32(x as i32),
        (Conv::I32ToF64, Value::I32(x)) => Value::F64(x as f64),
        (Conv::F64ToI32, Value::F64(x)) => Value::I32(x as i32),
        (Conv::I64ToF64, Value::I64(x)) => Value::F64(x as f64),
        (Conv::F64ToI64, Value::F64(x)) => Value::I64(x as i64),
        _ => unreachable!("verifier rejects other conversions"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::ProgramBuilder;

    fn vm_for(pb: ProgramBuilder) -> Vm {
        Vm::new(
            pb.finish(),
            VmConfig::default(),
            ProcessorConfig::pentium4(),
        )
    }

    #[test]
    fn arithmetic_and_calls() {
        let mut pb = ProgramBuilder::new();
        let sq = {
            let mut b = pb.function("sq", &[Ty::I32], Some(Ty::I32));
            let x = b.param(0);
            let y = b.mul(x, x);
            b.ret(Some(y));
            b.finish()
        };
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let s = b.call(sq, &[x]);
        let one = b.const_i32(1);
        let out = b.add(s, one);
        b.ret(Some(out));
        let main = b.finish();
        let mut vm = vm_for(pb);
        assert_eq!(
            vm.call(main, &[Value::I32(6)]).unwrap(),
            Some(Value::I32(37))
        );
        assert!(vm.stats().retired_instructions > 0);
        assert!(vm.stats().cycles > 0);
    }

    #[test]
    fn heap_objects_and_arrays() {
        let mut pb = ProgramBuilder::new();
        let (cls, fs) = pb.add_class("P", &[("x", ElemTy::I32), ("next", ElemTy::Ref)]);
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let p1 = b.new_object(cls);
        let p2 = b.new_object(cls);
        let seven = b.const_i32(7);
        b.putfield(p2, fs[0], seven);
        b.putfield(p1, fs[1], p2);
        let q = b.getfield(p1, fs[1]);
        let v = b.getfield(q, fs[0]);
        let n = b.const_i32(3);
        let arr = b.new_array(ElemTy::I32, n);
        let zero = b.const_i32(0);
        b.astore(arr, zero, v, ElemTy::I32);
        let got = b.aload(arr, zero, ElemTy::I32);
        let len = b.arraylen(arr);
        let out = b.add(got, len);
        b.ret(Some(out));
        let main = b.finish();
        let mut vm = vm_for(pb);
        assert_eq!(vm.call(main, &[]).unwrap(), Some(Value::I32(10)));
    }

    #[test]
    fn null_pointer_and_bounds_errors() {
        let mut pb = ProgramBuilder::new();
        let (_cls, fs) = pb.add_class("P", &[("x", ElemTy::I32)]);
        let mut b = pb.function("npe", &[], Some(Ty::I32));
        let nl = b.null();
        let v = b.getfield(nl, fs[0]);
        b.ret(Some(v));
        let npe = b.finish();
        let mut b = pb.function("oob", &[], Some(Ty::I32));
        let n = b.const_i32(2);
        let arr = b.new_array(ElemTy::I32, n);
        let five = b.const_i32(5);
        let v = b.aload(arr, five, ElemTy::I32);
        b.ret(Some(v));
        let oob = b.finish();
        let mut vm = vm_for(pb);
        assert!(matches!(
            vm.call(npe, &[]),
            Err(VmError::NullPointer { .. })
        ));
        assert!(matches!(
            vm.call(oob, &[]),
            Err(VmError::IndexOutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn division_by_zero() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("d", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let q = b.div(x, zero);
        b.ret(Some(q));
        let d = b.finish();
        let mut vm = vm_for(pb);
        assert!(matches!(
            vm.call(d, &[Value::I32(1)]),
            Err(VmError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn methods_compile_at_threshold() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("hot", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.ret(Some(x));
        let hot = b.finish();
        let mut vm = vm_for(pb);
        assert!(!vm.is_compiled(hot));
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(!vm.is_compiled(hot), "first call is interpreted");
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(vm.is_compiled(hot), "threshold 2 compiles on second call");
        assert_eq!(vm.stats().methods_compiled, 1);
        assert!(vm.stats().jit_nanos > 0);
    }

    #[test]
    fn interpreted_code_costs_more() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("work", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.add(acc, i);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let work = b.finish();
        let mut vm = vm_for(pb);
        vm.call(work, &[Value::I32(1000)]).unwrap();
        let interp_cycles = vm.stats().per_method[work.index()].interpreted;
        vm.reset_measurement();
        vm.call(work, &[Value::I32(1000)]).unwrap(); // compiled now
        let compiled_cycles = vm.stats().per_method[work.index()].compiled;
        assert!(vm.is_compiled(work));
        assert!(
            interp_cycles > compiled_cycles * 3,
            "interp {interp_cycles} vs compiled {compiled_cycles}"
        );
    }

    #[test]
    fn gc_triggers_and_preserves_live_data() {
        let mut pb = ProgramBuilder::new();
        let (cls, fs) = pb.add_class("Cell", &[("v", ElemTy::I32)]);
        // Allocates `n` cells, keeps only one, returns its value.
        let mut b = pb.function("churn", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let keep = b.new_object(cls);
        let answer = b.const_i32(99);
        b.putfield(keep, fs[0], answer);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let tmp = b.new_object(cls);
                let one = b.const_i32(1);
                b.putfield(tmp, fs[0], one);
            },
        );
        let v = b.getfield(keep, fs[0]);
        b.ret(Some(v));
        let churn = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                heap_bytes: 64 << 10, // tiny heap: forces GC
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let out = vm.call(churn, &[Value::I32(10_000)]).unwrap();
        assert_eq!(out, Some(Value::I32(99)));
        assert!(vm.stats().gc_count > 0, "GC must have run");
    }

    #[test]
    fn stack_overflow_is_reported() {
        let mut pb = ProgramBuilder::new();
        let inf = pb.declare("inf", &[Ty::I32], Some(Ty::I32));
        {
            let mut b = pb.define(inf);
            let n = b.param(0);
            let r = b.call(inf, &[n]); // unconditional recursion
            b.ret(Some(r));
            b.finish();
        }
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                max_stack_depth: 64,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        assert!(matches!(
            vm.call(inf, &[Value::I32(0)]),
            Err(VmError::StackOverflow)
        ));
        // The VM is usable again after the fault.
        assert!(vm.call(inf, &[Value::I32(0)]).is_err());
    }

    #[test]
    fn statics_round_trip() {
        let mut pb = ProgramBuilder::new();
        let sid = pb.add_static("g", ElemTy::I32);
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.putstatic(sid, x);
        let v = b.getstatic(sid);
        b.ret(Some(v));
        let main = b.finish();
        let mut vm = vm_for(pb);
        assert_eq!(
            vm.call(main, &[Value::I32(55)]).unwrap(),
            Some(Value::I32(55))
        );
    }

    #[test]
    fn offline_profile_collection() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(64);
        let arr = b.new_array(ElemTy::I32, n);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let v = b.aload(arr, i, ElemTy::I32);
                let s = b.add(acc, v);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let main = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                collect_offline_profile: true,
                prefetch: spf_core::PrefetchOptions::off(),
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(main, &[]).unwrap();
        let profiles = vm.offline_profiles();
        assert!(profiles.contains_key(&main));
        assert!(profiles[&main].site_count() >= 2); // aload + arraylength
    }

    use spf_ir::CmpOp;
}
