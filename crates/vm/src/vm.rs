//! The virtual machine: direct-threaded interpreter with JIT hook, GC
//! glue, and cycle accounting.
//!
//! Function bodies are pre-decoded (the `decode` module) into flat arrays of
//! handler `fn`-pointers with packed operands, optionally peephole-fused
//! into superinstructions (the `fuse` module); the run loop is one indirect
//! call per op. Call sites resolve their target bodies through 2-way
//! polymorphic inline caches keyed by code revision ([`crate::pic`]). All
//! of this is host-side machinery only: every simulated number — cycles,
//! memory latencies, retired counts, per-method attribution — is computed
//! by the same component sequences the old `match *instr` interpreter
//! ran, in the same order, and is bit-identical to it.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use spf_adapt::AdaptState;
use spf_core::offline::OfflineProfile;
use spf_core::{MethodReport, PrefetchMode, StridePrefetcher};
use spf_heap::{Addr, Heap, Layout, Value, NULL};
use spf_ir::{ElemTy, Function, Instr, InstrRef, MethodId, PrefetchKind, Program, Reg};
use spf_memsim::{MemorySystem, ProcessorConfig};
use spf_trace::{NoopSink, SiteId, SiteInfo, SiteKind, SiteTable, TraceEvent, TraceSink};

use crate::config::{
    VmConfig, CYCLES_PER_NANO, LOOP_PATCH_CYCLES, LOOP_RECOMPILE_BASE_CYCLES,
    RECOMPILE_BASE_CYCLES, RECOMPILE_CYCLES_PER_INSTR,
};
use crate::decode::{decode, ThreadedCode};
use crate::dispatch::{self, Ctx, Step};
use crate::error::VmError;
use crate::passes;
use crate::pic::{CallPic, PicStats};
use crate::predecode::Predecoded;
use crate::stats::{MethodCycles, VmStats};

/// An installed, executable body: shared threaded code plus this VM's PIC
/// slot allocation for its call sites.
pub(crate) struct Installed<S: TraceSink> {
    pub tcode: Arc<ThreadedCode<S>>,
    pub pic_base: u32,
    pub compiled: bool,
}

impl<S: TraceSink> Clone for Installed<S> {
    fn clone(&self) -> Self {
        Installed {
            tcode: Arc::clone(&self.tcode),
            pic_base: self.pic_base,
            compiled: self.compiled,
        }
    }
}

pub(crate) struct Frame<S: TraceSink> {
    pub method: MethodId,
    pub code: Installed<S>,
    /// Registers; empty while the frame is topmost (the run loop owns them
    /// in its [`Ctx`], and syncs them back at call/alloc boundaries).
    pub regs: Vec<Value>,
    pub pc: usize,
    pub ret_dst: Option<Reg>,
}

/// The mixed-mode virtual machine.
///
/// # Example
///
/// ```
/// use spf_ir::{ProgramBuilder, Ty};
/// use spf_memsim::ProcessorConfig;
/// use spf_vm::{Vm, VmConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
/// let x = b.param(0);
/// let y = b.add(x, x);
/// b.ret(Some(y));
/// let main = b.finish();
/// let mut vm = Vm::new(pb.finish(), VmConfig::default(), ProcessorConfig::pentium4());
/// let out = vm.call(main, &[spf_heap::Value::I32(21)]).unwrap();
/// assert_eq!(out, Some(spf_heap::Value::I32(42)));
/// ```
pub struct Vm<S: TraceSink = NoopSink> {
    pub(crate) program: Arc<Program>,
    pub(crate) config: VmConfig,
    pub(crate) heap: Heap,
    pub(crate) statics: Vec<Value>,
    pub(crate) mem: MemorySystem<S>,
    originals: Vec<Installed<S>>,
    compiled: Vec<Option<Installed<S>>>,
    /// Per-method code revision; bumped on every mutation of the installed
    /// body (JIT install, external install, deopt). PIC ways are keyed by
    /// it, so stale cache entries miss by construction.
    code_rev: Vec<u32>,
    invocations: Vec<u32>,
    reports: Vec<MethodReport>,
    pub(crate) stats: VmStats,
    pub(crate) offline: HashMap<MethodId, OfflineProfile>,
    sites: SiteTable,
    pub(crate) site_ids: HashMap<(MethodId, InstrRef), SiteId>,
    pub(crate) frames: Vec<Frame<S>>,
    pub(crate) adapt: AdaptState,
    pub(crate) adaptive: bool,
    history: Vec<(MethodId, u32, Arc<Function>)>,
    /// Whether installed bodies are decoded with superinstruction fusion.
    fuse: bool,
    pics: Vec<CallPic<S>>,
    pic_hits: u64,
    pic_misses: u64,
    /// Recycled register buffers (frame pop → next frame push).
    pub(crate) reg_pool: Vec<Vec<Value>>,
    /// Reused call-argument buffer for the call handler.
    pub(crate) argv_scratch: Vec<Value>,
    /// Async-compile mode: methods awaiting background compilation, with
    /// the arguments of the invocation that crossed the threshold (the
    /// inspector will run with them). Args may hold heap references, so
    /// [`Vm::gc`] treats them as roots. A `Vec` (not a map) so iteration
    /// order is insertion order — deterministic across runs.
    pending: Vec<(MethodId, Vec<Value>)>,
    /// Async-compile mode: requests enqueued since the last
    /// [`Vm::take_compile_requests`] drain.
    fresh_requests: Vec<MethodId>,
    /// Arguments of the invocation that triggered each method's last
    /// deopt, retained only under [`VmConfig::retain_deopt_args`] so a
    /// serving-layer recovery sweep can recompile stranded methods
    /// without waiting for them to re-cross the compile threshold. Like
    /// `pending`, entries may hold heap references: [`Vm::gc`] roots and
    /// forwards them. Insertion-ordered for determinism.
    deopt_args: Vec<(MethodId, Vec<Value>)>,
}

impl<S: TraceSink> std::fmt::Debug for Vm<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("methods", &self.program.method_count())
            .field("cycles", &self.stats.cycles)
            .finish_non_exhaustive()
    }
}

impl Vm {
    /// Creates an untraced VM for `program` on the processor `proc`.
    pub fn new(program: Program, config: VmConfig, proc: ProcessorConfig) -> Self {
        Vm::with_sink(program, config, proc, NoopSink)
    }
}

impl<S: TraceSink> Vm<S> {
    /// Creates a VM for `program` on the processor `proc`, emitting trace
    /// events into `sink`. With [`NoopSink`] every emission site compiles
    /// out and this is exactly [`Vm::new`].
    pub fn with_sink(program: Program, config: VmConfig, proc: ProcessorConfig, sink: S) -> Self {
        let pre = Arc::new(Predecoded::with_fusion(
            program,
            config.fuse_superinstructions,
        ));
        Vm::from_predecoded(&pre, config, proc, sink)
    }

    /// Creates a VM from a shared pre-decoded program, skipping per-VM
    /// body cloning and decoding entirely (the benchmark matrix builds one
    /// [`Predecoded`] per workload and all cells from it). The
    /// `Predecoded`'s fusion setting applies to bodies this VM JIT-installs
    /// later, superseding [`VmConfig::fuse_superinstructions`].
    pub fn from_predecoded(
        pre: &Arc<Predecoded<S>>,
        config: VmConfig,
        proc: ProcessorConfig,
        sink: S,
    ) -> Self {
        let program = Arc::clone(pre.program_arc());
        let heap = Heap::new(pre.layout().clone(), config.heap_bytes);
        let statics = program
            .static_ids()
            .map(|sid| Value::zero_of(program.static_def(sid).ty.reg_ty()))
            .collect();
        let n = program.method_count();
        let stats = VmStats {
            per_method: vec![MethodCycles::default(); n],
            ..VmStats::default()
        };
        // STATIC-FIRST carries the adaptive guards too: a deopt there
        // recompiles through the static-first pipeline, which re-proves
        // affine sites instead of re-running the inspector on them.
        let adaptive = config.prefetch.mode.adaptive_guards();
        let adapt = AdaptState::new(config.adapt);
        let mut pics: Vec<CallPic<S>> = Vec::new();
        let originals = pre
            .bodies()
            .iter()
            .map(|t| {
                let pic_base = pics.len() as u32;
                pics.extend((0..t.call_sites).map(|_| CallPic::default()));
                Installed {
                    tcode: Arc::clone(t),
                    pic_base,
                    compiled: false,
                }
            })
            .collect();
        Vm {
            program,
            heap,
            statics,
            mem: MemorySystem::with_sink(proc, sink),
            originals,
            compiled: (0..n).map(|_| None).collect(),
            code_rev: vec![0; n],
            invocations: vec![0; n],
            reports: Vec::new(),
            stats,
            offline: HashMap::new(),
            sites: SiteTable::new(),
            site_ids: HashMap::new(),
            frames: Vec::new(),
            adapt,
            adaptive,
            history: Vec::new(),
            fuse: pre.fused(),
            pics,
            pic_hits: 0,
            pic_misses: 0,
            reg_pool: Vec::new(),
            argv_scratch: Vec::new(),
            pending: Vec::new(),
            fresh_requests: Vec::new(),
            deopt_args: Vec::new(),
            config,
        }
    }

    /// The trace sink (read access, e.g. to drain collected events).
    pub fn sink(&self) -> &S {
        self.mem.sink()
    }

    /// The table of prefetch sites registered by JIT compilations so far.
    /// Empty while tracing is disabled.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Memory-system statistics so far.
    pub fn mem_stats(&self) -> &spf_memsim::MemStats {
        self.mem.stats()
    }

    /// The heap (read access, e.g. for assertions in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Optimization reports of all JIT compilations performed.
    pub fn reports(&self) -> &[MethodReport] {
        &self.reports
    }

    /// Off-line address profiles (only populated when
    /// [`VmConfig::collect_offline_profile`] is set).
    pub fn offline_profiles(&self) -> &HashMap<MethodId, OfflineProfile> {
        &self.offline
    }

    /// Installs a pre-optimized body for `mid`, bypassing the JIT trigger
    /// (used by the off-line profiling ablation).
    pub fn install_compiled(&mut self, mid: MethodId, func: Function) {
        let func = Arc::new(func);
        if S::ENABLED {
            self.register_sites(mid, &func, 0);
        }
        let tcode = Arc::new(decode(
            &self.program,
            self.heap.layout_tables(),
            &func,
            self.fuse,
        ));
        let installed = self.register_installed(tcode, true);
        self.history.push((mid, 0, func));
        self.compiled[mid.index()] = Some(installed);
        self.code_rev[mid.index()] = self.code_rev[mid.index()].wrapping_add(1);
    }

    /// The adaptive-reprofiling guard state (per-method generations,
    /// per-site useless counters). Inert unless the VM runs in
    /// [`PrefetchMode::Adaptive`].
    pub fn adapt_state(&self) -> &AdaptState {
        &self.adapt
    }

    /// Every compiled body installed so far, as `(method, generation,
    /// body)` in installation order. Adaptive recompilations append one
    /// entry per generation, so external analyses (e.g. `spf-lint`) can
    /// check every compilation the VM ever ran, not just the bodies still
    /// installed.
    pub fn compiled_generations(&self) -> impl Iterator<Item = (MethodId, u32, &Function)> {
        self.history.iter().map(|(m, g, f)| (*m, *g, f.as_ref()))
    }

    /// Host-side inline-cache effectiveness counters: call-site PIC hits,
    /// misses, and megamorphic overflows. Purely observational — cache
    /// state never affects simulated numbers.
    pub fn pic_stats(&self) -> PicStats {
        PicStats {
            hits: self.pic_hits,
            misses: self.pic_misses,
            sites: self.pics.len(),
            megamorphic_sites: self.pics.iter().filter(|p| p.megamorphic).count(),
        }
    }

    /// Total superinstructions across all currently installed bodies
    /// (host-side statistic, for tests and diagnostics).
    pub fn fused_op_count(&self) -> u64 {
        let originals: u64 = self
            .originals
            .iter()
            .map(|i| u64::from(i.tcode.fused))
            .sum();
        let compiled: u64 = self
            .compiled
            .iter()
            .flatten()
            .map(|i| u64::from(i.tcode.fused))
            .sum();
        originals + compiled
    }

    /// Registers every `Prefetch`/`SpecLoad` instruction of a freshly
    /// installed body so runtime events can be attributed back to the IR
    /// site and its loop. Only called when tracing is enabled.
    fn register_sites(&mut self, mid: MethodId, func: &Function, generation: u32) {
        let cfg = spf_ir::cfg::Cfg::compute(func);
        let dom = spf_ir::dom::DomTree::compute(func, &cfg);
        let forest = spf_ir::loops::LoopForest::compute(func, &cfg, &dom);
        for site in func.instr_sites() {
            let kind = match func.instr(site) {
                Instr::Prefetch {
                    kind: PrefetchKind::Hardware,
                    ..
                } => SiteKind::Swpf,
                Instr::Prefetch {
                    kind: PrefetchKind::GuardedLoad,
                    ..
                } => SiteKind::Guarded,
                Instr::SpecLoad { .. } => SiteKind::SpecLoad,
                _ => continue,
            };
            let loop_header = forest
                .innermost(site.block)
                .map(|l| forest.info(l).header.index() as u32);
            let id = self.sites.register(SiteInfo {
                id: SiteId::UNKNOWN,
                method: func.name().to_string(),
                method_index: mid.index() as u32,
                block: site.block.index() as u32,
                index: site.index,
                loop_header,
                kind,
                generation,
            });
            self.site_ids.insert((mid, site), id);
            self.mem.sink_mut().emit(TraceEvent::SiteRegistered {
                site: id,
                method: mid.index() as u32,
                block: site.block.index() as u32,
                index: site.index,
                generation,
            });
        }
    }

    /// Whether `mid` has been JIT-compiled.
    pub fn is_compiled(&self, mid: MethodId) -> bool {
        self.compiled[mid.index()].is_some()
    }

    /// The installed compiled body of `mid`, if any (for external analyses
    /// such as the `spf-lint` tool).
    pub fn compiled_body(&self, mid: MethodId) -> Option<&Function> {
        self.compiled[mid.index()]
            .as_ref()
            .map(|c| c.tcode.src.as_ref())
    }

    /// Clears the memory system and measurement counters while keeping
    /// compiled code, the heap, and statics — the "steady state" protocol:
    /// the paper reports best run times under continuous execution, where
    /// JIT compilation no longer occurs.
    pub fn reset_measurement(&mut self) {
        self.mem.reset();
        let n = self.program.method_count();
        self.stats = VmStats {
            per_method: vec![MethodCycles::default(); n],
            ..VmStats::default()
        };
    }

    /// Calls method `name` with `args`.
    ///
    /// # Errors
    ///
    /// [`VmError`] on runtime faults.
    ///
    /// # Panics
    ///
    /// Panics if no method has that name.
    pub fn call_by_name(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, VmError> {
        let mid = self
            .program
            .method_by_name(name)
            .unwrap_or_else(|| panic!("no method named {name}"));
        self.call(mid, args)
    }

    /// Calls method `mid` with `args` and runs to completion.
    ///
    /// # Errors
    ///
    /// [`VmError`] on runtime faults.
    pub fn call(&mut self, mid: MethodId, args: &[Value]) -> Result<Option<Value>, VmError> {
        assert!(self.frames.is_empty(), "vm is not reentrant");
        self.call_into(mid, args, None, None)?;
        let result = self.run();
        if result.is_err() {
            self.frames.clear();
        }
        result
    }

    /// Invokes `mid`: depth check, invocation accounting, body resolution
    /// (through the call site's PIC when `pic` names a slot), frame push.
    /// The check/JIT/resolve order matches the old `push_frame` exactly;
    /// PIC hits resolve to the identical body the slow path would pick.
    pub(crate) fn call_into(
        &mut self,
        mid: MethodId,
        args: &[Value],
        ret_dst: Option<Reg>,
        pic: Option<u32>,
    ) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_stack_depth {
            return Err(VmError::StackOverflow);
        }
        self.invocations[mid.index()] += 1;
        self.stats.per_method[mid.index()].invocations += 1;
        if let Some(slot) = pic {
            let rev = self.code_rev[mid.index()];
            if let Some(target) = self.pics[slot as usize].lookup(rev) {
                if target.compiled {
                    // Cached compiled body. In adaptive mode the per-loop
                    // staleness check still runs on every invocation,
                    // exactly as the slow path does; a loop patch or
                    // repatch bumps the revision, so the way dies and
                    // resolution falls through (with the stale check
                    // already consumed).
                    if !self.adaptive || !self.maybe_patch(mid, args) {
                        self.pic_hits += 1;
                        self.activate(target, mid, args, ret_dst);
                        return Ok(());
                    }
                    self.pic_misses += 1;
                    return self.resolve_and_push(mid, args, ret_dst, Some(slot), true);
                }
                // Cached interpreted body: only valid while the method
                // stays under the compile threshold (adaptive backoff can
                // hold it there arbitrarily long, so re-check per call).
                if self.invocations[mid.index()] < self.config.compile_threshold {
                    self.pic_hits += 1;
                    self.activate(target, mid, args, ret_dst);
                    return Ok(());
                }
            }
            self.pic_misses += 1;
            return self.resolve_and_push(mid, args, ret_dst, Some(slot), false);
        }
        self.resolve_and_push(mid, args, ret_dst, None, false)
    }

    /// Slow-path resolution: adaptive staleness check (unless the caller
    /// already ran it), JIT trigger, body selection, PIC fill, activation.
    fn resolve_and_push(
        &mut self,
        mid: MethodId,
        args: &[Value],
        ret_dst: Option<Reg>,
        pic: Option<u32>,
        deopt_checked: bool,
    ) -> Result<(), VmError> {
        if !deopt_checked && self.adaptive && self.compiled[mid.index()].is_some() {
            self.maybe_patch(mid, args);
        }
        if self.compiled[mid.index()].is_none()
            && self.invocations[mid.index()] >= self.config.compile_threshold
        {
            if self.config.async_compile {
                // Production-JVM style: request a background compile and
                // keep interpreting until the driver installs it.
                self.enqueue_compile(mid, args);
            } else {
                self.jit_compile(mid, args, false);
            }
        }
        let installed = match &self.compiled[mid.index()] {
            Some(c) => c.clone(),
            None => self.originals[mid.index()].clone(),
        };
        if let Some(slot) = pic {
            self.pics[slot as usize].insert(self.code_rev[mid.index()], installed.clone());
        }
        self.activate(installed, mid, args, ret_dst);
        Ok(())
    }

    /// Runs the adaptive per-loop maintenance for `mid` (which must have
    /// a compiled body installed): first repatches invalidated loops
    /// whose backoff has been served (tier-2 re-entry), then checks the
    /// loop guards and patches newly stale loops' prefetch sites to
    /// no-ops (tier-1 invalidation). Returns whether the installed body
    /// changed (the caller's PIC way is then dead). `args` are the
    /// current invocation's arguments: the repatch re-inspects with them,
    /// and a patch retains them under [`VmConfig::retain_deopt_args`] so
    /// the serving recovery sweep can repatch the method later.
    fn maybe_patch(&mut self, mid: MethodId, args: &[Value]) -> bool {
        let epoch = self.heap.gc_epoch();
        let invocations = u64::from(self.invocations[mid.index()]);
        let mut changed = false;
        let due = self.adapt.loops_due(mid.index(), invocations, epoch);
        if !due.is_empty() {
            self.repatch_loops(mid, args, &due, false);
            changed = true;
        }
        let stale = self.adapt.check_stale(mid.index(), epoch);
        if S::ENABLED {
            // `check_stale` may have re-armed a disarmed loop guard even
            // when it returned no verdict; surface that to the trace.
            let now = self.stats.cycles;
            for (method, generation) in self.adapt.take_rearmed() {
                self.mem.sink_mut().emit(TraceEvent::GuardRearmed {
                    tenant: u32::MAX,
                    method,
                    generation,
                    now,
                });
            }
        }
        if stale.is_empty() {
            return changed;
        }
        self.patch_loops(mid, args, &stale);
        true
    }

    /// Tier-1 invalidation: strips the `Prefetch`/`SpecLoad` instructions
    /// from the blocks of the given stale loops and reinstalls the body.
    /// Everything else — the other loops' sites included — keeps running
    /// compiled; only the stale loops drop to plain (unprefetched)
    /// compiled code until their repatch is due.
    fn patch_loops(&mut self, mid: MethodId, args: &[Value], stale: &[spf_adapt::StaleLoop]) {
        let src = Arc::clone(
            &self.compiled[mid.index()]
                .as_ref()
                .expect("staleness requires a compiled body")
                .tcode
                .src,
        );
        let cfg = spf_ir::cfg::Cfg::compute(&src);
        let dom = spf_ir::dom::DomTree::compute(&src, &cfg);
        let forest = spf_ir::loops::LoopForest::compute(&src, &cfg, &dom);
        let stale_headers: std::collections::HashSet<u32> =
            stale.iter().map(|s| s.header).collect();
        let mut func = (*src).clone();
        for b in func.block_ids() {
            let owner = forest
                .innermost(b)
                .map_or(spf_adapt::NO_LOOP, |l| forest.info(l).header.index() as u32);
            if !stale_headers.contains(&owner) {
                continue;
            }
            func.block_mut(b)
                .instrs
                .retain(|i| !matches!(i, Instr::Prefetch { .. } | Instr::SpecLoad { .. }));
        }
        // A patch is a deterministic code edit, far cheaper than any
        // recompile; charged per stale loop.
        let patch_cycles = LOOP_PATCH_CYCLES * stale.len() as u64;
        self.stats.jit_cycles += patch_cycles;
        self.stats.cycles += patch_cycles;
        self.stats.loop_deopts += stale.len() as u64;
        if S::ENABLED {
            let now = self.stats.cycles;
            for s in stale {
                self.mem.sink_mut().emit(TraceEvent::LoopInvalidated {
                    method: mid.index() as u32,
                    loop_header: s.header,
                    generation: s.generation,
                    reason: s.reason,
                    now,
                });
            }
        }
        let generation = self.adapt.on_patch(
            mid.index(),
            &stale.iter().map(|s| s.header).collect::<Vec<_>>(),
            u64::from(self.invocations[mid.index()]),
            self.heap.gc_epoch(),
        );
        if S::ENABLED {
            self.register_sites(mid, &func, generation);
        }
        let func = Arc::new(func);
        let tcode = Arc::new(decode(
            &self.program,
            self.heap.layout_tables(),
            &func,
            self.fuse,
        ));
        let installed = self.register_installed(tcode, true);
        self.history.push((mid, generation, func));
        self.compiled[mid.index()] = Some(installed);
        self.code_rev[mid.index()] = self.code_rev[mid.index()].wrapping_add(1);
        if self.config.retain_deopt_args {
            // Keep this invocation's arguments so a recovery sweep can
            // repatch the stranded loops without waiting for the backoff.
            // Retaining values extends their GC liveness, so this is
            // strictly opt-in (chaos/serving runs only).
            if let Some(entry) = self.deopt_args.iter_mut().find(|(m, _)| *m == mid) {
                entry.1.clear();
                entry.1.extend_from_slice(args);
            } else {
                self.deopt_args.push((mid, args.to_vec()));
            }
        }
    }

    /// Tier-2 re-entry: re-runs the prefetch pipeline for the given
    /// invalidated loops only — static-first re-proves, dynamic
    /// re-inspects the live heap with `args` — splices the fresh sites
    /// into the installed body, and reinstalls it. Charges a
    /// deterministic per-loop cost far below a full recompile unless
    /// `background` (a compilation-queue worker accounts for latency on
    /// its own clock). Returns the installed body's instruction count.
    fn repatch_loops(
        &mut self,
        mid: MethodId,
        args: &[Value],
        due: &[u32],
        background: bool,
    ) -> u64 {
        let t0 = Instant::now();
        let src = Arc::clone(
            &self.compiled[mid.index()]
                .as_ref()
                .expect("repatch requires a compiled body")
                .tcode
                .src,
        );
        let due_set: std::collections::HashSet<u32> = due.iter().copied().collect();
        let prefetcher = StridePrefetcher::new(self.config.prefetch.clone());
        let proc = self.mem.config().clone();
        let mut outcome = prefetcher.reoptimize_loops(
            &self.program,
            &src,
            &self.heap,
            &self.statics,
            args,
            &proc,
            &due_set,
            self.mem.sink_mut(),
        );
        // Deterministic repatch cost: per due loop, a base charge plus
        // the per-instruction rate over that loop's own blocks — always
        // far below RECOMPILE_BASE_CYCLES + per-instr over the whole
        // body, which is the point of per-loop re-entry.
        let cfg = spf_ir::cfg::Cfg::compute(&src);
        let dom = spf_ir::dom::DomTree::compute(&src, &cfg);
        let forest = spf_ir::loops::LoopForest::compute(&src, &cfg, &dom);
        let mut loop_instrs: HashMap<u32, u64> = HashMap::new();
        for b in src.block_ids() {
            let owner = forest
                .innermost(b)
                .map_or(spf_adapt::NO_LOOP, |l| forest.info(l).header.index() as u32);
            if due_set.contains(&owner) {
                *loop_instrs.entry(owner).or_default() += src.block(b).instrs.len() as u64;
            }
        }
        let repatch_cycles: u64 = due
            .iter()
            .map(|h| {
                LOOP_RECOMPILE_BASE_CYCLES
                    + RECOMPILE_CYCLES_PER_INSTR * loop_instrs.get(h).copied().unwrap_or(0)
            })
            .sum();
        let total_nanos = t0.elapsed().as_nanos();
        self.stats.jit_nanos += total_nanos;
        self.stats.prefetch_pass_nanos += outcome.report.pass_nanos;
        self.stats.inspection_cycles += outcome.report.inspection_cycles();
        self.stats.static_sites += outcome.report.static_sites() as u64;
        if !background {
            self.stats.jit_cycles += repatch_cycles;
            self.stats.cycles += repatch_cycles;
        }
        if outcome.report.total_prefetches > 0 {
            // Re-inspection re-agreed on prefetchable strides.
            self.stats.reagreed += 1;
        }
        #[cfg(debug_assertions)]
        {
            let policy = self
                .config
                .prefetch
                .guarded_policy
                .lint_check(self.mem.config().swpf_drops_on_tlb_miss);
            let findings = spf_analysis::lint(&outcome.func, &spf_analysis::LintConfig { policy });
            assert!(
                findings.is_empty(),
                "repatched body for {} fails the static lint: {findings:?}",
                outcome.func.name()
            );
        }
        let epoch = self.heap.gc_epoch();
        let new_sites = Self::loop_sites_of(&outcome.func);
        for &h in due {
            let sites = new_sites
                .iter()
                .find(|ls| ls.header == h)
                .map_or(&[][..], |ls| ls.sites.as_slice());
            let loop_generation = self.adapt.on_repatch(mid.index(), h, epoch, sites);
            self.stats.loop_repatches += 1;
            if S::ENABLED {
                let now = self.stats.cycles;
                self.mem.sink_mut().emit(TraceEvent::LoopRepatched {
                    method: mid.index() as u32,
                    loop_header: h,
                    generation: loop_generation,
                    now,
                });
            }
        }
        let generation = self.adapt.on_repatch_install(mid.index());
        outcome.report.generation = generation;
        let func = Arc::new(outcome.func);
        if S::ENABLED {
            self.register_sites(mid, &func, generation);
        }
        let tcode = Arc::new(decode(
            &self.program,
            self.heap.layout_tables(),
            &func,
            self.fuse,
        ));
        let installed = self.register_installed(tcode, true);
        let instrs = func.instr_sites().count() as u64;
        self.history.push((mid, generation, func));
        self.compiled[mid.index()] = Some(installed);
        self.code_rev[mid.index()] = self.code_rev[mid.index()].wrapping_add(1);
        self.reports.push(outcome.report);
        // Once no loop of the method is stranded anymore, the retained
        // invalidation arguments are no longer needed (and must stop
        // extending GC liveness).
        if self
            .adapt
            .guard(mid.index())
            .is_none_or(|g| g.stale_loops().is_empty())
        {
            self.deopt_args.retain(|(m, _)| *m != mid);
        }
        instrs
    }

    /// Groups the `Prefetch`/`SpecLoad` sites of a freshly built body by
    /// the innermost loop owning their block ([`spf_adapt::NO_LOOP`] for
    /// straight-line sites) — the ownership key of the per-loop guards.
    /// Host-side analysis only; never charged to the simulated clock.
    fn loop_sites_of(func: &Function) -> Vec<spf_adapt::LoopSites> {
        let cfg = spf_ir::cfg::Cfg::compute(func);
        let dom = spf_ir::dom::DomTree::compute(func, &cfg);
        let forest = spf_ir::loops::LoopForest::compute(func, &cfg, &dom);
        let mut by_loop: std::collections::BTreeMap<u32, Vec<(u32, u32)>> =
            std::collections::BTreeMap::new();
        for site in func.instr_sites() {
            if !matches!(
                func.instr(site),
                Instr::Prefetch { .. } | Instr::SpecLoad { .. }
            ) {
                continue;
            }
            let owner = forest
                .innermost(site.block)
                .map_or(spf_adapt::NO_LOOP, |l| forest.info(l).header.index() as u32);
            by_loop
                .entry(owner)
                .or_default()
                .push((site.block.index() as u32, site.index));
        }
        by_loop
            .into_iter()
            .map(|(header, sites)| spf_adapt::LoopSites { header, sites })
            .collect()
    }

    /// Pushes a frame executing `code`, copying `args` over the zeroed
    /// register template.
    fn activate(
        &mut self,
        code: Installed<S>,
        mid: MethodId,
        args: &[Value],
        ret_dst: Option<Reg>,
    ) {
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.extend_from_slice(&code.tcode.reg_template);
        regs[..args.len()].copy_from_slice(args);
        let pc = code.tcode.entry_pc as usize;
        self.frames.push(Frame {
            method: mid,
            code,
            regs,
            pc,
            ret_dst,
        });
    }

    /// Wraps freshly decoded threaded code as an installed body, giving
    /// its call sites dense PIC slots in this VM.
    fn register_installed(&mut self, tcode: Arc<ThreadedCode<S>>, compiled: bool) -> Installed<S> {
        let pic_base = self.pics.len() as u32;
        self.pics
            .extend((0..tcode.call_sites).map(|_| CallPic::default()));
        Installed {
            tcode,
            pic_base,
            compiled,
        }
    }

    /// Records a background-compile request for `mid` (at most one
    /// outstanding per method), remembering the triggering invocation's
    /// arguments for the eventual inspection.
    fn enqueue_compile(&mut self, mid: MethodId, args: &[Value]) {
        if self.pending.iter().any(|(m, _)| *m == mid) {
            return;
        }
        self.pending.push((mid, args.to_vec()));
        self.fresh_requests.push(mid);
    }

    /// Drains the compile requests enqueued since the last drain, in
    /// request order. Only ever non-empty with
    /// [`VmConfig::async_compile`] set.
    pub fn take_compile_requests(&mut self) -> Vec<MethodId> {
        std::mem::take(&mut self.fresh_requests)
    }

    /// Number of methods awaiting background compilation.
    pub fn pending_compile_count(&self) -> usize {
        self.pending.len()
    }

    /// Forces a GC-epoch advance without moving any object: models an
    /// external compaction decision (e.g. a fleet-wide GC storm injected
    /// by the chaos harness). Every epoch-stamped guard becomes stale on
    /// its next staleness check, exactly as a real sliding compaction
    /// would make it.
    pub fn inject_heap_move(&mut self) {
        self.heap.force_move_epoch();
    }

    /// Re-enqueues background compiles for every method with stranded
    /// loops (invalidated and never repatched) whose invalidation-time
    /// arguments were retained under [`VmConfig::retain_deopt_args`].
    /// This *is* the serving layer's recovery path, so it deliberately
    /// bypasses the per-loop backoff — the stranded set must drain even
    /// when invocation counts never serve the backoff. Requests surface
    /// through the normal [`Vm::take_compile_requests`] drain (the
    /// eventual [`Vm::compile_pending`] repatches the stale loops of a
    /// still-compiled method, or full-compiles an evicted one); returns
    /// the methods enqueued (ascending, deterministic).
    pub fn reenqueue_stranded(&mut self) -> Vec<MethodId> {
        let mut out = Vec::new();
        for idx in self.adapt.stranded_methods() {
            let mid = MethodId::new(idx);
            if self.pending.iter().any(|(m, _)| *m == mid) {
                continue;
            }
            let Some((_, args)) = self.deopt_args.iter().find(|(m, _)| *m == mid) else {
                continue;
            };
            self.pending.push((mid, args.clone()));
            self.fresh_requests.push(mid);
            out.push(mid);
        }
        out
    }

    /// Number of loops currently stranded: invalidated by a stale guard
    /// (their prefetch sites patched out) and not repatched since.
    pub fn stranded_count(&self) -> u64 {
        self.adapt.stranded()
    }

    /// Drains `(method, generation)` guard re-arms since the last drain
    /// (see [`spf_adapt::AdaptState::take_rearmed`]). Traced VMs emit
    /// these as [`TraceEvent::GuardRearmed`] instead; this accessor is
    /// for untraced serving tenants that report re-arms at epoch
    /// barriers.
    pub fn take_rearmed(&mut self) -> Vec<(u32, u32)> {
        self.adapt.take_rearmed()
    }

    /// Deterministic cycle cost of compiling `mid` on a background
    /// compiler worker, derived from the *original* body's size plus an
    /// inspection estimate — known before the compile runs, so a
    /// compilation queue can schedule the job's completion time up front.
    pub fn compile_cost_estimate(&self, mid: MethodId) -> u64 {
        let src = Arc::clone(&self.originals[mid.index()].tcode.src);
        let instrs = src.instr_sites().count() as u64;
        RECOMPILE_BASE_CYCLES
            + RECOMPILE_CYCLES_PER_INSTR * instrs
            + self.inspection_cost_estimate(&src)
    }

    /// Deterministic estimate of the object-inspection share of compiling
    /// `func`: per candidate-bearing loop, interpreting the body for the
    /// configured iterations costs roughly one step per candidate load per
    /// iteration plus one recorded sample per inspected load per
    /// iteration. OFF inspects nothing; STATIC-FIRST discounts the sample
    /// term by the statically proved sites and skips fully proved loops
    /// outright, so its queue estimates come in below the legacy modes'.
    fn inspection_cost_estimate(&self, func: &Function) -> u64 {
        use spf_ir::{cfg::Cfg, defuse::UseDef, dom::DomTree, loops::LoopForest};
        let opts = &self.config.prefetch;
        if opts.mode == PrefetchMode::Off {
            return 0;
        }
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let ud = UseDef::compute(func, &cfg);
        let iters = u64::from(opts.inspect_iterations);
        let mut cycles = 0u64;
        for target in forest.postorder() {
            let ldg = spf_core::Ldg::build(func, &ud, &forest, target);
            if ldg.is_empty() {
                continue;
            }
            let inspected = if opts.mode.static_first() {
                let proved =
                    spf_analysis::scev::loop_static_strides(func, &cfg, &dom, &forest, &ud, target);
                ldg.node_ids()
                    .filter(|&id| !proved.contains_key(&ldg.node(id).site))
                    .count() as u64
            } else {
                ldg.len() as u64
            };
            if inspected == 0 {
                // Fully proved loop: the record set is empty and the
                // static-first pipeline never runs the inspector.
                continue;
            }
            cycles += iters
                * (spf_core::INSPECT_CYCLES_PER_STEP * ldg.len() as u64
                    + spf_core::INSPECT_CYCLES_PER_SAMPLE * inspected);
        }
        cycles
    }

    /// Runs the pending background compilation of `mid` and installs the
    /// result, charging *nothing* to this VM's simulated clock (the
    /// compilation queue accounts for compile latency on its own clock).
    /// Returns the installed body's instruction count (the code-cache
    /// footprint), or `None` when no request is pending or the method got
    /// compiled some other way in the meantime.
    pub fn compile_pending(&mut self, mid: MethodId) -> Option<u64> {
        let idx = self.pending.iter().position(|(m, _)| *m == mid)?;
        let (_, args) = self.pending.remove(idx);
        if self.compiled[mid.index()].is_some() {
            // Compiled but possibly carrying stranded (invalidated, never
            // repatched) loops: the background job repatches them all,
            // waiving the invocation backoff — this is an explicit
            // recovery decision by the serving layer, not the adaptive
            // policy firing early.
            if self.adaptive {
                let stale = self
                    .adapt
                    .guard(mid.index())
                    .map_or(Vec::new(), |g| g.stale_loops());
                if !stale.is_empty() {
                    return Some(self.repatch_loops(mid, &args, &stale, true));
                }
            }
            return None;
        }
        Some(self.jit_compile(mid, &args, true))
    }

    /// Evicts `mid`'s compiled body (shared code cache capacity decision):
    /// the method falls back to the interpreted original and will re-cross
    /// the compile threshold naturally, re-enqueueing a compile request.
    /// Returns the evicted body's instruction count, or `None` if nothing
    /// was installed. In adaptive mode the guard earns an eviction credit
    /// so the forced recompile does not burn the staleness budget.
    pub fn evict_compiled(&mut self, mid: MethodId) -> Option<u64> {
        let installed = self.compiled[mid.index()].take()?;
        let instrs = installed.tcode.src.instr_sites().count() as u64;
        self.code_rev[mid.index()] = self.code_rev[mid.index()].wrapping_add(1);
        self.stats.code_evictions += 1;
        if self.adaptive {
            self.adapt.on_evicted(mid.index());
        }
        Some(instrs)
    }

    /// JIT-compiles `mid`: baseline passes, then the stride-prefetching
    /// pass with the actual `args` of the pending invocation. In
    /// `background` mode (the serving layer's compiler workers) no cycles
    /// are charged to this VM's simulated clock. Returns the compiled
    /// body's instruction count.
    fn jit_compile(&mut self, mid: MethodId, args: &[Value], background: bool) -> u64 {
        let t0 = Instant::now();
        if S::ENABLED {
            self.mem.sink_mut().emit(TraceEvent::JitBegin {
                method: mid.index() as u32,
            });
        }
        let original = Arc::clone(&self.originals[mid.index()].tcode.src);
        let pre_inlined;
        let input: &Function = if self.config.inline_small_methods {
            pre_inlined = crate::inline::inline_small_calls(
                &self.program,
                &original,
                mid,
                crate::inline::DEFAULT_MAX_CALLEE_INSTRS,
                crate::inline::DEFAULT_MAX_GROWTH,
            );
            &pre_inlined
        } else {
            &original
        };
        let unrolled;
        let input: &Function = if self.config.unroll_factor > 1 {
            unrolled = crate::unroll::unroll_innermost_loops(
                &self.program,
                input,
                self.config.unroll_factor,
                2048,
            );
            &unrolled
        } else {
            input
        };
        let base = passes::optimize(&self.program, input);
        let prefetcher = StridePrefetcher::new(self.config.prefetch.clone());
        // Clone the processor description so the optimizer can borrow the
        // memory system's sink mutably at the same time.
        let proc = self.mem.config().clone();
        let mut outcome = prefetcher.optimize_traced(
            &self.program,
            &base,
            &self.heap,
            &self.statics,
            args,
            &proc,
            self.mem.sink_mut(),
        );
        // Stamp the compilation generation and the GC epoch the inspected
        // strides belong to (no GC can run inside `jit_compile`, so the
        // epoch read here is the one inspection saw). The per-loop guards
        // key off which loop owns each emitted site.
        let generation = if self.adaptive {
            let loops = Self::loop_sites_of(&outcome.func);
            self.adapt
                .on_compile(mid.index(), self.heap.gc_epoch(), &loops)
        } else {
            0
        };
        outcome.report.generation = generation;
        // Debug builds run the static lint over every JIT output: nothing
        // the pipeline emits after inline/unroll/DCE may use a register
        // before assignment, leak a speculative value, or break the
        // prefetch-kind policy. (Kept out of release builds and of
        // `pass_nanos`, so measured numbers are untouched.)
        #[cfg(debug_assertions)]
        {
            let policy = self
                .config
                .prefetch
                .guarded_policy
                .lint_check(self.mem.config().swpf_drops_on_tlb_miss);
            let findings = spf_analysis::lint(&outcome.func, &spf_analysis::LintConfig { policy });
            assert!(
                findings.is_empty(),
                "JIT output for {} fails the static lint: {findings:?}",
                outcome.func.name()
            );
            // The provenance lint runs on every compilation generation:
            // a statically-proved site may not also burn inspection
            // budget, a proof may not disagree with the installed stride,
            // and static-first address computations must be taint-free.
            let records: Vec<spf_analysis::SiteProvenance> =
                outcome.report.provenance_records().cloned().collect();
            let pcfg = spf_analysis::ProvenanceConfig {
                static_first: self.config.prefetch.mode.static_first(),
            };
            let findings = spf_analysis::provenance::check(&outcome.func, &pcfg, &records);
            assert!(
                findings.is_empty(),
                "JIT output for {} (generation {generation}) fails the provenance lint: \
                 {findings:?}",
                outcome.func.name()
            );
        }
        let total_nanos = t0.elapsed().as_nanos();
        self.stats.jit_nanos += total_nanos;
        self.stats.prefetch_pass_nanos += outcome.report.pass_nanos;
        // Compile-time cost model: deterministic inspection cycles are
        // charged as counters (like `recompiles`), never onto `cycles`.
        self.stats.inspection_cycles += outcome.report.inspection_cycles();
        self.stats.static_sites += outcome.report.static_sites() as u64;
        if !background {
            let jit_cycles = if generation > 0 {
                // Adaptive recompilations run inside measured steady-state
                // windows; charge a size-proportional deterministic cost so
                // the simulated clock never depends on host wall-clock time.
                RECOMPILE_BASE_CYCLES
                    + RECOMPILE_CYCLES_PER_INSTR * outcome.func.instr_sites().count() as u64
            } else {
                (total_nanos as f64 * CYCLES_PER_NANO) as u64
            };
            self.stats.jit_cycles += jit_cycles;
            self.stats.cycles += jit_cycles;
        }
        self.stats.methods_compiled += 1;
        if generation > 0 {
            self.stats.recompiles += 1;
            if outcome.report.total_prefetches > 0 {
                // Re-inspection re-agreed on prefetchable strides.
                self.stats.reagreed += 1;
            }
            if S::ENABLED {
                self.mem.sink_mut().emit(TraceEvent::Recompile {
                    method: mid.index() as u32,
                    generation,
                    now: self.stats.cycles,
                });
            }
        }
        let func = Arc::new(outcome.func);
        if S::ENABLED {
            self.register_sites(mid, &func, generation);
        }
        // Decode strictly after the elapsed-time capture: generation-0
        // compilations charge host nanos to the simulated clock, and
        // decode time must not leak into simulated numbers.
        let tcode = Arc::new(decode(
            &self.program,
            self.heap.layout_tables(),
            &func,
            self.fuse,
        ));
        let installed = self.register_installed(tcode, true);
        let instrs = func.instr_sites().count() as u64;
        self.history.push((mid, generation, func));
        self.compiled[mid.index()] = Some(installed);
        self.code_rev[mid.index()] = self.code_rev[mid.index()].wrapping_add(1);
        self.reports.push(outcome.report);
        // A successful compile ends the method's stranding; the retained
        // deopt arguments are no longer needed (and must stop extending
        // GC liveness).
        self.deopt_args.retain(|(m, _)| *m != mid);
        instrs
    }

    fn gc(&mut self) {
        let mut roots: Vec<Addr> = Vec::new();
        for f in &self.frames {
            for &i in f.code.tcode.ref_regs.iter() {
                if let Value::Ref(a) = f.regs[i as usize] {
                    if a != NULL && self.heap.contains(a) {
                        roots.push(a);
                    }
                }
            }
        }
        for v in &self.statics {
            if let Value::Ref(a) = v {
                if *a != NULL && self.heap.contains(*a) {
                    roots.push(*a);
                }
            }
        }
        // Arguments held for pending background compiles stay live until
        // the compile runs (the inspector dereferences them).
        for (_, args) in &self.pending {
            for v in args {
                if let Value::Ref(a) = v {
                    if *a != NULL && self.heap.contains(*a) {
                        roots.push(*a);
                    }
                }
            }
        }
        // Retained deopt arguments (recovery-sweep inputs) likewise stay
        // live until the method is recompiled. Empty unless
        // `retain_deopt_args` is set, so legacy GC liveness is untouched.
        for (_, args) in &self.deopt_args {
            for v in args {
                if let Value::Ref(a) = v {
                    if *a != NULL && self.heap.contains(*a) {
                        roots.push(*a);
                    }
                }
            }
        }
        let (cstats, fwd) = self.heap.collect(&roots);
        if S::ENABLED {
            self.mem.sink_mut().emit(TraceEvent::GcSlide {
                now: self.stats.cycles,
                live_bytes: cstats.live_bytes,
                freed_bytes: cstats.freed_bytes,
                moved_objects: cstats.moved_objects,
            });
        }
        for f in &mut self.frames {
            for v in f.regs.iter_mut() {
                if let Value::Ref(a) = v {
                    *a = fwd.forward(*a);
                }
            }
        }
        for v in &mut self.statics {
            if let Value::Ref(a) = v {
                *a = fwd.forward(*a);
            }
        }
        for (_, args) in &mut self.pending {
            for v in args.iter_mut() {
                if let Value::Ref(a) = v {
                    *a = fwd.forward(*a);
                }
            }
        }
        for (_, args) in &mut self.deopt_args {
            for v in args.iter_mut() {
                if let Value::Ref(a) = v {
                    *a = fwd.forward(*a);
                }
            }
        }
        let cost = 200 + cstats.live_bytes / 4 + cstats.freed_bytes / 16;
        self.stats.cycles += cost;
        self.stats.gc_cycles += cost;
        self.stats.gc_count += 1;
    }

    pub(crate) fn alloc_object(&mut self, class: spf_ir::ClassId) -> Result<Addr, VmError> {
        if let Some(a) = self.heap.alloc_object(class) {
            return Ok(a);
        }
        self.gc();
        self.heap.alloc_object(class).ok_or(VmError::OutOfMemory {
            requested: self.heap.layout_tables().class_size(class),
        })
    }

    pub(crate) fn alloc_array(&mut self, elem: ElemTy, len: u64) -> Result<Addr, VmError> {
        if let Some(a) = self.heap.alloc_array(elem, len) {
            return Ok(a);
        }
        self.gc();
        self.heap
            .alloc_array(elem, len)
            .ok_or(VmError::OutOfMemory {
                requested: Layout::array_size(elem, len),
            })
    }

    /// The dispatch loop: fetch the op at `pc`, advance, indirect-call the
    /// handler. Counters live in the [`Ctx`] (register-resident, flushed
    /// to [`VmStats`] at frame switches and on halt, exactly as the old
    /// loop's locals were), and the top frame's registers are owned by the
    /// `Ctx` while it runs.
    fn run(&mut self) -> Result<Option<Value>, VmError> {
        let mut ctx = Ctx {
            pc: 0,
            cycles: self.stats.cycles,
            frame_start: self.stats.cycles,
            term_retired: 0,
            seg_retired: 0,
            interp_retired: 0,
            comp_retired: 0,
            cur_cost: 0,
            cur_compiled: false,
            cur_mid: MethodId::new(0),
            cur_pic_base: 0,
            regs: Vec::new(),
            halt: None,
        };
        dispatch::reload_ctx(self, &mut ctx);
        // The threaded code is accessed through a raw pointer instead of
        // cloning the `Arc` on every frame switch (two atomic RMWs per
        // call/return otherwise). SAFETY: the pointer is only dereferenced
        // while the frame it was fetched from is the top frame, and that
        // frame's own `Installed.tcode` Arc keeps the allocation alive
        // (pushing frames may reallocate the frame vec, but never moves the
        // Arc'd `ThreadedCode`); every handler that pushes or pops a frame
        // returns `Step::Switch`, which re-fetches the pointer before the
        // next dereference. `ThreadedCode` is immutable once built.
        let mut tcode_ptr: *const ThreadedCode<S> =
            Arc::as_ptr(&self.frames.last().expect("frame").code.tcode);
        loop {
            let step = {
                let tcode = unsafe { &*tcode_ptr };
                // SAFETY: `pc` is always in range: decode guarantees every
                // block ends in a terminator whose handler either redirects
                // `pc` to a patched (valid) block entry or leaves the frame,
                // so sequential `pc + 1` never walks past the last op.
                debug_assert!(ctx.pc < tcode.ops.len());
                let op = unsafe { tcode.ops.get_unchecked(ctx.pc) };
                ctx.pc += 1;
                (op.handler)(self, &mut ctx, op, tcode)
            };
            match step {
                Step::Next => {}
                Step::Switch => {
                    tcode_ptr = Arc::as_ptr(&self.frames.last().expect("frame").code.tcode);
                }
                Step::Halt => {
                    self.stats.cycles = ctx.cycles;
                    // `halt`/`flush_frame_acc` has folded the last segment,
                    // so the split counters are complete and the total is
                    // their sum plus terminators.
                    self.stats.retired_instructions +=
                        ctx.interp_retired + ctx.comp_retired + ctx.term_retired;
                    self.stats.interpreted_instructions += ctx.interp_retired;
                    self.stats.compiled_instructions += ctx.comp_retired;
                    let buf = std::mem::take(&mut ctx.regs);
                    if buf.capacity() > 0 {
                        self.reg_pool.push(buf);
                    }
                    return ctx.halt.take().expect("halt result");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::{ProgramBuilder, Ty};

    fn vm_for(pb: ProgramBuilder) -> Vm {
        Vm::new(
            pb.finish(),
            VmConfig::default(),
            ProcessorConfig::pentium4(),
        )
    }

    #[test]
    fn arithmetic_and_calls() {
        let mut pb = ProgramBuilder::new();
        let sq = {
            let mut b = pb.function("sq", &[Ty::I32], Some(Ty::I32));
            let x = b.param(0);
            let y = b.mul(x, x);
            b.ret(Some(y));
            b.finish()
        };
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let s = b.call(sq, &[x]);
        let one = b.const_i32(1);
        let out = b.add(s, one);
        b.ret(Some(out));
        let main = b.finish();
        let mut vm = vm_for(pb);
        assert_eq!(
            vm.call(main, &[Value::I32(6)]).unwrap(),
            Some(Value::I32(37))
        );
        assert!(vm.stats().retired_instructions > 0);
        assert!(vm.stats().cycles > 0);
    }

    #[test]
    fn heap_objects_and_arrays() {
        let mut pb = ProgramBuilder::new();
        let (cls, fs) = pb.add_class("P", &[("x", ElemTy::I32), ("next", ElemTy::Ref)]);
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let p1 = b.new_object(cls);
        let p2 = b.new_object(cls);
        let seven = b.const_i32(7);
        b.putfield(p2, fs[0], seven);
        b.putfield(p1, fs[1], p2);
        let q = b.getfield(p1, fs[1]);
        let v = b.getfield(q, fs[0]);
        let n = b.const_i32(3);
        let arr = b.new_array(ElemTy::I32, n);
        let zero = b.const_i32(0);
        b.astore(arr, zero, v, ElemTy::I32);
        let got = b.aload(arr, zero, ElemTy::I32);
        let len = b.arraylen(arr);
        let out = b.add(got, len);
        b.ret(Some(out));
        let main = b.finish();
        let mut vm = vm_for(pb);
        assert_eq!(vm.call(main, &[]).unwrap(), Some(Value::I32(10)));
    }

    #[test]
    fn null_pointer_and_bounds_errors() {
        let mut pb = ProgramBuilder::new();
        let (_cls, fs) = pb.add_class("P", &[("x", ElemTy::I32)]);
        let mut b = pb.function("npe", &[], Some(Ty::I32));
        let nl = b.null();
        let v = b.getfield(nl, fs[0]);
        b.ret(Some(v));
        let npe = b.finish();
        let mut b = pb.function("oob", &[], Some(Ty::I32));
        let n = b.const_i32(2);
        let arr = b.new_array(ElemTy::I32, n);
        let five = b.const_i32(5);
        let v = b.aload(arr, five, ElemTy::I32);
        b.ret(Some(v));
        let oob = b.finish();
        let mut vm = vm_for(pb);
        assert!(matches!(
            vm.call(npe, &[]),
            Err(VmError::NullPointer { .. })
        ));
        assert!(matches!(
            vm.call(oob, &[]),
            Err(VmError::IndexOutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn division_by_zero() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("d", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let q = b.div(x, zero);
        b.ret(Some(q));
        let d = b.finish();
        let mut vm = vm_for(pb);
        assert!(matches!(
            vm.call(d, &[Value::I32(1)]),
            Err(VmError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn methods_compile_at_threshold() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("hot", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.ret(Some(x));
        let hot = b.finish();
        let mut vm = vm_for(pb);
        assert!(!vm.is_compiled(hot));
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(!vm.is_compiled(hot), "first call is interpreted");
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(vm.is_compiled(hot), "threshold 2 compiles on second call");
        assert_eq!(vm.stats().methods_compiled, 1);
        assert!(vm.stats().jit_nanos > 0);
    }

    #[test]
    fn static_first_vm_skips_inspection_and_cheapens_compile_estimates() {
        use spf_core::PrefetchOptions;
        use spf_ir::CmpOp;
        // A fully provable affine walk: step 8 over i64 elements.
        let build = || {
            let mut pb = ProgramBuilder::new();
            let mut b = pb.function("affine", &[], Some(Ty::I64));
            let n = b.const_i32(4096);
            let arr = b.new_array(ElemTy::I64, n);
            let sum = b.new_reg(Ty::I64);
            let z = b.const_i64(0);
            b.move_(sum, z);
            b.for_i32(
                0,
                8,
                CmpOp::Lt,
                |b| b.arraylen(arr),
                |b, i| {
                    let v = b.aload(arr, i, ElemTy::I64);
                    let s = b.add(sum, v);
                    b.move_(sum, s);
                },
            );
            b.ret(Some(sum));
            let m = b.finish();
            (pb.finish(), m)
        };
        let run = |opts: PrefetchOptions| {
            let (p, m) = build();
            let mut vm = Vm::new(
                p,
                VmConfig {
                    prefetch: opts,
                    ..VmConfig::default()
                },
                ProcessorConfig::pentium4(),
            );
            vm.call(m, &[]).unwrap();
            vm.call(m, &[]).unwrap(); // second call crosses the threshold
            assert!(vm.is_compiled(m));
            let est = vm.compile_cost_estimate(m);
            (vm.stats().clone(), est)
        };
        let (sf, sf_est) = run(PrefetchOptions::static_first());
        let (ii, ii_est) = run(PrefetchOptions::inter_intra());
        // STATIC-FIRST proves every candidate, skips the inspector, and
        // charges zero inspection cycles; the legacy pipeline pays.
        assert!(sf.static_sites > 0);
        assert_eq!(sf.inspection_cycles, 0);
        assert_eq!(ii.static_sites, 0);
        assert!(ii.inspection_cycles > 0);
        // The background-compile queue estimate sees the same discount.
        assert!(sf_est < ii_est, "{sf_est} !< {ii_est}");
    }

    #[test]
    fn async_compile_defers_until_driver_installs() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("hot", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let y = b.add(x, x);
        b.ret(Some(y));
        let hot = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                async_compile: true,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(hot, &[Value::I32(1)]).unwrap();
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(
            !vm.is_compiled(hot),
            "crossing the threshold only enqueues a request"
        );
        assert_eq!(vm.take_compile_requests(), vec![hot]);
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(
            vm.take_compile_requests().is_empty(),
            "at most one outstanding request per method"
        );
        assert_eq!(vm.pending_compile_count(), 1);
        assert!(vm.compile_cost_estimate(hot) >= RECOMPILE_BASE_CYCLES);

        let cycles_before = vm.stats().cycles;
        let instrs = vm.compile_pending(hot).expect("pending request");
        assert!(instrs > 0);
        assert!(vm.is_compiled(hot));
        assert_eq!(vm.pending_compile_count(), 0);
        assert_eq!(
            vm.stats().cycles,
            cycles_before,
            "background compiles charge nothing to the tenant clock"
        );
        assert_eq!(vm.stats().jit_cycles, 0);
        assert_eq!(
            vm.call(hot, &[Value::I32(21)]).unwrap(),
            Some(Value::I32(42)),
            "compiled body runs after install"
        );
        assert!(vm.compile_pending(hot).is_none(), "nothing left to compile");
    }

    #[test]
    fn eviction_forces_reenqueue() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("hot", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.ret(Some(x));
        let hot = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                async_compile: true,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(hot, &[Value::I32(1)]).unwrap();
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert_eq!(vm.take_compile_requests(), vec![hot]);
        vm.compile_pending(hot).unwrap();
        assert!(vm.is_compiled(hot));
        assert!(vm.evict_compiled(hot).is_some());
        assert!(!vm.is_compiled(hot));
        assert_eq!(vm.stats().code_evictions, 1);
        assert!(vm.evict_compiled(hot).is_none(), "already evicted");
        // The next over-threshold invocation re-requests compilation and
        // runs interpreted meanwhile.
        vm.call(hot, &[Value::I32(5)]).unwrap();
        assert_eq!(vm.take_compile_requests(), vec![hot]);
        assert!(!vm.is_compiled(hot));
    }

    #[test]
    fn sync_mode_never_enqueues() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("hot", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.ret(Some(x));
        let hot = b.finish();
        let mut vm = vm_for(pb);
        vm.call(hot, &[Value::I32(1)]).unwrap();
        vm.call(hot, &[Value::I32(1)]).unwrap();
        assert!(vm.is_compiled(hot));
        assert!(vm.take_compile_requests().is_empty());
        assert_eq!(vm.pending_compile_count(), 0);
    }

    #[test]
    fn interpreted_code_costs_more() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("work", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.add(acc, i);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let work = b.finish();
        let mut vm = vm_for(pb);
        vm.call(work, &[Value::I32(1000)]).unwrap();
        let interp_cycles = vm.stats().per_method[work.index()].interpreted;
        vm.reset_measurement();
        vm.call(work, &[Value::I32(1000)]).unwrap(); // compiled now
        let compiled_cycles = vm.stats().per_method[work.index()].compiled;
        assert!(vm.is_compiled(work));
        assert!(
            interp_cycles > compiled_cycles * 3,
            "interp {interp_cycles} vs compiled {compiled_cycles}"
        );
    }

    #[test]
    fn gc_triggers_and_preserves_live_data() {
        let mut pb = ProgramBuilder::new();
        let (cls, fs) = pb.add_class("Cell", &[("v", ElemTy::I32)]);
        // Allocates `n` cells, keeps only one, returns its value.
        let mut b = pb.function("churn", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let keep = b.new_object(cls);
        let answer = b.const_i32(99);
        b.putfield(keep, fs[0], answer);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let tmp = b.new_object(cls);
                let one = b.const_i32(1);
                b.putfield(tmp, fs[0], one);
            },
        );
        let v = b.getfield(keep, fs[0]);
        b.ret(Some(v));
        let churn = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                heap_bytes: 64 << 10, // tiny heap: forces GC
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        let out = vm.call(churn, &[Value::I32(10_000)]).unwrap();
        assert_eq!(out, Some(Value::I32(99)));
        assert!(vm.stats().gc_count > 0, "GC must have run");
    }

    #[test]
    fn stack_overflow_is_reported() {
        let mut pb = ProgramBuilder::new();
        let inf = pb.declare("inf", &[Ty::I32], Some(Ty::I32));
        {
            let mut b = pb.define(inf);
            let n = b.param(0);
            let r = b.call(inf, &[n]); // unconditional recursion
            b.ret(Some(r));
            b.finish();
        }
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                max_stack_depth: 64,
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        assert!(matches!(
            vm.call(inf, &[Value::I32(0)]),
            Err(VmError::StackOverflow)
        ));
        // The VM is usable again after the fault.
        assert!(vm.call(inf, &[Value::I32(0)]).is_err());
    }

    #[test]
    fn statics_round_trip() {
        let mut pb = ProgramBuilder::new();
        let sid = pb.add_static("g", ElemTy::I32);
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        b.putstatic(sid, x);
        let v = b.getstatic(sid);
        b.ret(Some(v));
        let main = b.finish();
        let mut vm = vm_for(pb);
        assert_eq!(
            vm.call(main, &[Value::I32(55)]).unwrap(),
            Some(Value::I32(55))
        );
    }

    #[test]
    fn offline_profile_collection() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("main", &[], Some(Ty::I32));
        let n = b.const_i32(64);
        let arr = b.new_array(ElemTy::I32, n);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |b| b.arraylen(arr),
            |b, i| {
                let v = b.aload(arr, i, ElemTy::I32);
                let s = b.add(acc, v);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let main = b.finish();
        let mut vm = Vm::new(
            pb.finish(),
            VmConfig {
                collect_offline_profile: true,
                prefetch: spf_core::PrefetchOptions::off(),
                ..VmConfig::default()
            },
            ProcessorConfig::pentium4(),
        );
        vm.call(main, &[]).unwrap();
        let profiles = vm.offline_profiles();
        assert!(profiles.contains_key(&main));
        assert!(profiles[&main].site_count() >= 2); // aload + arraylength
    }

    #[test]
    fn loop_bodies_get_fused_superinstructions() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("work", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.add(acc, i);
                b.move_(acc, s);
            },
        );
        b.ret(Some(acc));
        let work = b.finish();
        let mut vm = vm_for(pb);
        assert!(
            vm.fused_op_count() > 0,
            "for-loops must fuse at least the Cmp+Branch back edge"
        );
        assert_eq!(
            vm.call(work, &[Value::I32(10)]).unwrap(),
            Some(Value::I32(45))
        );
    }

    #[test]
    fn call_sites_hit_their_inline_caches() {
        let mut pb = ProgramBuilder::new();
        let sq = {
            let mut b = pb.function("sq", &[Ty::I32], Some(Ty::I32));
            let x = b.param(0);
            let y = b.mul(x, x);
            b.ret(Some(y));
            b.finish()
        };
        let mut b = pb.function("main", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let acc = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(acc, z);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let s = b.call(sq, &[i]);
                let t = b.add(acc, s);
                b.move_(acc, t);
            },
        );
        b.ret(Some(acc));
        let main = b.finish();
        let mut vm = vm_for(pb);
        vm.call(main, &[Value::I32(100)]).unwrap();
        let pic = vm.pic_stats();
        assert!(pic.sites > 0);
        assert!(
            pic.hits > pic.misses,
            "a hot monomorphic call site must mostly hit: {pic:?}"
        );
        assert_eq!(pic.megamorphic_sites, 0);
    }

    use spf_ir::CmpOp;
}
