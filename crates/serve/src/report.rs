//! `SERVE_summary.json` — the serving simulation's latency and
//! compilation-queue report.
//!
//! Every statistic is an integer computed from simulated quantities
//! (nearest-rank percentiles, floored means, milli-scaled queue depth), so
//! the emitted file is byte-identical for byte-identical simulations —
//! CI compares two `--jobs` runs with `cmp`, no tolerance needed. Like the
//! rest of the repo's artifacts, emitter and parser are hand-rolled (no
//! JSON dependency) and promise only to round-trip each other's output.

use std::fmt::Write as _;

use crate::sim::ServeOutcome;

/// One prefetch mode's serving statistics. All latency fields are in
/// simulated cycles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModeReport {
    /// Prefetch mode (display form, e.g. `BASELINE` or `ADAPTIVE`).
    pub mode: String,
    /// Requests served.
    pub completed: u64,
    /// Median request latency.
    pub p50: u64,
    /// 99th-percentile request latency.
    pub p99: u64,
    /// 99.9th-percentile request latency.
    pub p999: u64,
    /// Worst request latency.
    pub max: u64,
    /// Mean request latency, floored.
    pub mean: u64,
    /// Deepest compilation queue observed at any epoch.
    pub queue_depth_max: u32,
    /// Mean compilation-queue depth × 1000, floored (integer so the file
    /// stays byte-comparable).
    pub queue_depth_mean_milli: u64,
    /// Background compilations installed.
    pub compiles: u64,
    /// Code-cache capacity evictions.
    pub evictions: u64,
    /// Whole-method adaptive deoptimizations across the fleet (always 0
    /// since invalidation went per-loop; kept for old readers).
    pub deopts: u64,
    /// Full adaptive recompilations across the fleet.
    pub recompiles: u64,
    /// Per-loop invalidations across the fleet.
    pub loop_deopts: u64,
    /// Per-loop repatches (tier-2 re-entries) across the fleet.
    pub loop_repatches: u64,
    /// Loops still stranded (invalidated, never repatched) at run end —
    /// the `deopt-summary` stranding diagnostic made machine-checkable.
    /// Nonzero on a fault-free ADAPTIVE row is the db-blow-up signature.
    pub stranded: u64,
    /// Fleet checksum (must agree across modes).
    pub checksum: i64,
}

/// Nearest-rank percentile: the smallest element with at least
/// `num/den` of the distribution at or below it. `sorted` must be
/// ascending.
pub fn percentile(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (num * n).div_ceil(den).max(1);
    sorted[(rank - 1) as usize]
}

impl ModeReport {
    /// Condenses one simulation run into its report row. Shed requests
    /// never ran, so they are excluded from the latency distribution
    /// (the shed count is reported in the chaos section instead).
    pub fn from_outcome(mode: &str, out: &ServeOutcome) -> ModeReport {
        let shed: std::collections::HashSet<u32> = out.shed.iter().copied().collect();
        let mut sorted: Vec<u64> = out
            .latencies
            .iter()
            .enumerate()
            .filter(|(id, _)| !shed.contains(&(*id as u32)))
            .map(|(_, &l)| l)
            .collect();
        sorted.sort_unstable();
        let depth_sum: u64 = out.queue_depth_samples.iter().map(|&d| u64::from(d)).sum();
        ModeReport {
            mode: mode.to_string(),
            completed: sorted.len() as u64,
            p50: percentile(&sorted, 50, 100),
            p99: percentile(&sorted, 99, 100),
            p999: percentile(&sorted, 999, 1000),
            max: sorted.last().copied().unwrap_or(0),
            mean: if sorted.is_empty() {
                0
            } else {
                sorted.iter().sum::<u64>() / sorted.len() as u64
            },
            queue_depth_max: out.queue_depth_samples.iter().copied().max().unwrap_or(0),
            queue_depth_mean_milli: if out.queue_depth_samples.is_empty() {
                0
            } else {
                depth_sum * 1000 / out.queue_depth_samples.len() as u64
            },
            compiles: out.compiles,
            evictions: out.evictions,
            deopts: out.deopts,
            recompiles: out.recompiles,
            loop_deopts: out.loop_deopts,
            loop_repatches: out.loop_repatches,
            stranded: out.stranded_final,
            checksum: out.checksum,
        }
    }
}

/// One prefetch mode's chaos-run statistics: the fault mix that fired,
/// the degradation it triggered, and what [`crate::verify_recovery`]
/// measured. Only present when the run injected faults.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChaosRow {
    /// Prefetch mode (display form).
    pub mode: String,
    /// Fault windows that activated.
    pub faults: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Compile jobs re-queued after missing their deadline.
    pub retries: u64,
    /// Adaptive guard re-arms across the fleet.
    pub rearms: u64,
    /// Methods still stranded at run end (must be 0 after recovery).
    pub stranded_final: u64,
    /// Requests served (non-shed) in the fault run.
    pub completed: u64,
    /// Served-request p99 in the fault run.
    pub p99: u64,
    /// Cycle at which the recovery invariants were checked.
    pub recovery_at: u64,
    /// Base requests arriving after the recovery point.
    pub post_requests: u64,
    /// Post-recovery p99 as milli-ratio of the fault-free run's (1000 =
    /// parity; bounded by [`crate::faults::RECOVERY_P99_RATIO_MILLI`]).
    pub post_p99_ratio_milli: u64,
}

/// The full `SERVE_summary.json`: the configuration that produced the
/// numbers plus one row per mode. Host-only facts (`--jobs`, wall-clock)
/// are deliberately absent — two runs that should be bit-identical
/// produce byte-identical files.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServeSummary {
    /// Processor model name.
    pub processor: String,
    /// Tenant VM count.
    pub tenants: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Mean inter-arrival gap in cycles.
    pub mean_interarrival: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Epoch length in cycles.
    pub slot_cycles: u64,
    /// Background compiler workers.
    pub compile_workers: u64,
    /// Shared code-cache capacity in instructions.
    pub cache_capacity_instrs: u64,
    /// One row per prefetch mode, in run order.
    pub modes: Vec<ModeReport>,
    /// One chaos row per mode, in run order; empty for fault-free runs
    /// (and then absent from the emitted file).
    pub chaos: Vec<ChaosRow>,
}

/// Renders the summary as `SERVE_summary.json`.
pub fn emit(s: &ServeSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"spf-serve-summary-v1\",");
    let _ = writeln!(out, "  \"processor\": \"{}\",", s.processor);
    let _ = writeln!(out, "  \"tenants\": {},", s.tenants);
    let _ = writeln!(out, "  \"requests\": {},", s.requests);
    let _ = writeln!(out, "  \"mean_interarrival\": {},", s.mean_interarrival);
    let _ = writeln!(out, "  \"seed\": {},", s.seed);
    let _ = writeln!(out, "  \"slot_cycles\": {},", s.slot_cycles);
    let _ = writeln!(out, "  \"compile_workers\": {},", s.compile_workers);
    let _ = writeln!(
        out,
        "  \"cache_capacity_instrs\": {},",
        s.cache_capacity_instrs
    );
    out.push_str("  \"modes\": [\n");
    for (i, m) in s.modes.iter().enumerate() {
        let comma = if i + 1 == s.modes.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"completed\": {}, \"p50\": {}, \"p99\": {}, \
             \"p999\": {}, \"max\": {}, \"mean\": {}, \"queue_depth_max\": {}, \
             \"queue_depth_mean_milli\": {}, \"compiles\": {}, \"evictions\": {}, \
             \"deopts\": {}, \"recompiles\": {}, \"loop_deopts\": {}, \
             \"loop_repatches\": {}, \"stranded\": {}, \"checksum\": {}}}{comma}",
            m.mode,
            m.completed,
            m.p50,
            m.p99,
            m.p999,
            m.max,
            m.mean,
            m.queue_depth_max,
            m.queue_depth_mean_milli,
            m.compiles,
            m.evictions,
            m.deopts,
            m.recompiles,
            m.loop_deopts,
            m.loop_repatches,
            m.stranded,
            m.checksum,
        );
    }
    out.push_str("  ]");
    if s.chaos.is_empty() {
        out.push_str("\n}\n");
        return out;
    }
    out.push_str(",\n  \"chaos\": [\n");
    for (i, c) in s.chaos.iter().enumerate() {
        let comma = if i + 1 == s.chaos.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"faults\": {}, \"shed\": {}, \"retries\": {}, \
             \"rearms\": {}, \"stranded_final\": {}, \"completed\": {}, \"p99\": {}, \
             \"recovery_at\": {}, \"post_requests\": {}, \
             \"post_p99_ratio_milli\": {}}}{comma}",
            c.mode,
            c.faults,
            c.shed,
            c.retries,
            c.rearms,
            c.stranded_final,
            c.completed,
            c.p99,
            c.recovery_at,
            c.post_requests,
            c.post_p99_ratio_milli,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Parses a file produced by [`emit`]. Unknown keys are ignored, so
/// future writers can add fields without breaking old readers.
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field.
pub fn parse(text: &str) -> Result<ServeSummary, String> {
    let mut top = ServeSummary {
        processor: String::new(),
        tenants: 0,
        requests: 0,
        mean_interarrival: 0,
        seed: 0,
        slot_cycles: 0,
        compile_workers: 0,
        cache_capacity_instrs: 0,
        modes: Vec::new(),
        chaos: Vec::new(),
    };
    let mut seen_processor = false;
    for line in text.lines() {
        let line = line.trim();
        // Chaos rows also carry a "mode" key, so test for their
        // distinctive field before the mode-row branch.
        if line.contains("\"post_p99_ratio_milli\"") {
            let get = |key: &str| {
                field(line, key).ok_or_else(|| format!("missing field {key} in line: {line}"))
            };
            let num = |key: &str| -> Result<u64, String> {
                get(key)?
                    .parse()
                    .map_err(|e| format!("bad {key} in {line}: {e}"))
            };
            top.chaos.push(ChaosRow {
                mode: get("mode")?.to_string(),
                faults: num("faults")?,
                shed: num("shed")?,
                retries: num("retries")?,
                rearms: num("rearms")?,
                stranded_final: num("stranded_final")?,
                completed: num("completed")?,
                p99: num("p99")?,
                recovery_at: num("recovery_at")?,
                post_requests: num("post_requests")?,
                post_p99_ratio_milli: num("post_p99_ratio_milli")?,
            });
            continue;
        }
        if line.contains("\"mode\"") {
            let get = |key: &str| {
                field(line, key).ok_or_else(|| format!("missing field {key} in line: {line}"))
            };
            let num = |key: &str| -> Result<u64, String> {
                get(key)?
                    .parse()
                    .map_err(|e| format!("bad {key} in {line}: {e}"))
            };
            top.modes.push(ModeReport {
                mode: get("mode")?.to_string(),
                completed: num("completed")?,
                p50: num("p50")?,
                p99: num("p99")?,
                p999: num("p999")?,
                max: num("max")?,
                mean: num("mean")?,
                queue_depth_max: num("queue_depth_max")? as u32,
                queue_depth_mean_milli: num("queue_depth_mean_milli")?,
                compiles: num("compiles")?,
                evictions: num("evictions")?,
                deopts: num("deopts")?,
                recompiles: num("recompiles")?,
                // The loop_* and stranded fields are absent from older
                // files; default 0 so old artifacts still parse.
                loop_deopts: match field(line, "loop_deopts") {
                    Some(v) => v
                        .parse()
                        .map_err(|e| format!("bad loop_deopts in {line}: {e}"))?,
                    None => 0,
                },
                loop_repatches: match field(line, "loop_repatches") {
                    Some(v) => v
                        .parse()
                        .map_err(|e| format!("bad loop_repatches in {line}: {e}"))?,
                    None => 0,
                },
                stranded: match field(line, "stranded") {
                    Some(v) => v
                        .parse()
                        .map_err(|e| format!("bad stranded in {line}: {e}"))?,
                    None => 0,
                },
                checksum: get("checksum")?
                    .parse()
                    .map_err(|e| format!("bad checksum in {line}: {e}"))?,
            });
            continue;
        }
        let tnum = |key: &str, dst: &mut u64| -> Result<(), String> {
            if let Some(v) = field(line, key) {
                *dst = v.parse().map_err(|e| format!("bad {key}: {e}"))?;
            }
            Ok(())
        };
        if let Some(p) = field(line, "processor") {
            top.processor = p.to_string();
            seen_processor = true;
        }
        tnum("tenants", &mut top.tenants)?;
        tnum("requests", &mut top.requests)?;
        tnum("mean_interarrival", &mut top.mean_interarrival)?;
        tnum("seed", &mut top.seed)?;
        tnum("slot_cycles", &mut top.slot_cycles)?;
        tnum("compile_workers", &mut top.compile_workers)?;
        tnum("cache_capacity_instrs", &mut top.cache_capacity_instrs)?;
    }
    if !seen_processor {
        return Err("not a SERVE_summary.json: no processor field".to_string());
    }
    if top.modes.is_empty() {
        return Err("not a SERVE_summary.json: no mode rows".to_string());
    }
    Ok(top)
}

/// Renders the human-readable latency table.
pub fn render(s: &ServeSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} tenants, {} requests, mean gap {} cycles, {} compile workers, \
         cache {} instrs, {}",
        s.tenants,
        s.requests,
        s.mean_interarrival,
        s.compile_workers,
        s.cache_capacity_instrs,
        s.processor
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>7} {:>9} {:>8} {:>7} {:>8} {:>8} {:>7}",
        "mode",
        "p50",
        "p99",
        "p999",
        "mean",
        "qdepth",
        "qmax",
        "compiles",
        "evicted",
        "recomp",
        "loop-inv",
        "loop-rep",
        "strand"
    );
    for m in &s.modes {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>7} {:>9} {:>8} {:>7} {:>8} {:>8} {:>7}",
            m.mode,
            m.p50,
            m.p99,
            m.p999,
            m.mean,
            format!(
                "{}.{:03}",
                m.queue_depth_mean_milli / 1000,
                m.queue_depth_mean_milli % 1000
            ),
            m.queue_depth_max,
            m.compiles,
            m.evictions,
            m.recompiles,
            m.loop_deopts,
            m.loop_repatches,
            m.stranded,
        );
    }
    if !s.chaos.is_empty() {
        let _ = writeln!(
            out,
            "\nchaos: fault injection active; recovery invariants checked per mode"
        );
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>6} {:>8} {:>7} {:>9} {:>12} {:>9} {:>15}",
            "mode",
            "faults",
            "shed",
            "retries",
            "rearms",
            "stranded",
            "p99",
            "post-req",
            "post-p99-ratio"
        );
        for c in &s.chaos {
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>6} {:>8} {:>7} {:>9} {:>12} {:>9} {:>15}",
                c.mode,
                c.faults,
                c.shed,
                c.retries,
                c.rearms,
                c.stranded_final,
                c.p99,
                c.post_requests,
                format!(
                    "{}.{:03}",
                    c.post_p99_ratio_milli / 1000,
                    c.post_p99_ratio_milli % 1000
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeSummary {
        ServeSummary {
            processor: "Pentium 4".to_string(),
            tenants: 120,
            requests: 600,
            mean_interarrival: 20_000,
            seed: 99,
            slot_cycles: 100_000,
            compile_workers: 2,
            cache_capacity_instrs: 4096,
            modes: vec![
                ModeReport {
                    mode: "BASELINE".to_string(),
                    completed: 600,
                    p50: 1_000,
                    p99: 9_000,
                    p999: 20_000,
                    max: 30_000,
                    mean: 2_000,
                    queue_depth_max: 7,
                    queue_depth_mean_milli: 1_250,
                    compiles: 40,
                    evictions: 3,
                    deopts: 0,
                    recompiles: 0,
                    loop_deopts: 0,
                    loop_repatches: 0,
                    stranded: 0,
                    checksum: -12345,
                },
                ModeReport {
                    mode: "ADAPTIVE".to_string(),
                    completed: 600,
                    p50: 900,
                    p99: 8_000,
                    p999: 18_000,
                    max: 28_000,
                    mean: 1_800,
                    queue_depth_max: 9,
                    queue_depth_mean_milli: 1_500,
                    compiles: 55,
                    evictions: 6,
                    deopts: 0,
                    recompiles: 2,
                    loop_deopts: 4,
                    loop_repatches: 3,
                    stranded: 1,
                    checksum: -12345,
                },
            ],
            chaos: Vec::new(),
        }
    }

    fn sample_with_chaos() -> ServeSummary {
        let mut s = sample();
        s.chaos = vec![ChaosRow {
            mode: "ADAPTIVE".to_string(),
            faults: 6,
            shed: 12,
            retries: 3,
            rearms: 5,
            stranded_final: 0,
            completed: 588,
            p99: 9_500,
            recovery_at: 4_000_000,
            post_requests: 80,
            post_p99_ratio_milli: 1_150,
        }];
        s
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50, 100), 50);
        assert_eq!(percentile(&v, 99, 100), 99);
        assert_eq!(percentile(&v, 999, 1000), 100);
        assert_eq!(percentile(&v, 100, 100), 100);
        assert_eq!(percentile(&[42], 50, 100), 42);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn emit_parse_round_trip() {
        let s = sample();
        let text = emit(&s);
        let back = parse(&text).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn chaos_section_round_trips() {
        let s = sample_with_chaos();
        let text = emit(&s);
        assert!(text.contains("\"chaos\": ["));
        let back = parse(&text).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn fault_free_summary_has_no_chaos_section() {
        assert!(!emit(&sample()).contains("chaos"));
    }

    #[test]
    fn pre_chaos_mode_rows_parse_with_stranded_defaulted() {
        // A file written before the stranded field existed.
        let text = emit(&sample())
            .replace(", \"stranded\": 0", "")
            .replace(", \"stranded\": 1", "");
        let back = parse(&text).expect("backward compatible");
        assert_eq!(back.modes[0].stranded, 0);
        assert_eq!(back.modes[1].stranded, 0, "missing field defaults to 0");
    }

    #[test]
    fn pre_loop_mode_rows_parse_with_loop_fields_defaulted() {
        // A file written before invalidation went per-loop.
        let text = emit(&sample())
            .replace(", \"loop_deopts\": 0, \"loop_repatches\": 0", "")
            .replace(", \"loop_deopts\": 4, \"loop_repatches\": 3", "");
        let back = parse(&text).expect("backward compatible");
        assert_eq!(back.modes[0].loop_deopts, 0);
        assert_eq!(back.modes[1].loop_deopts, 0, "missing field defaults to 0");
        assert_eq!(back.modes[1].loop_repatches, 0);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let text = emit(&sample()).replace(
            "\"tenants\": 120,",
            "\"tenants\": 120,\n  \"novel_future_field\": 7,",
        );
        let back = parse(&text).expect("forward compatible");
        assert_eq!(back, sample());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("hello world").is_err());
        assert!(parse("{\"processor\": \"x\"}").is_err(), "no mode rows");
    }

    #[test]
    fn render_mentions_every_mode() {
        let table = render(&sample());
        assert!(table.contains("BASELINE"));
        assert!(table.contains("ADAPTIVE"));
        assert!(table.contains("120 tenants"));
    }
}
