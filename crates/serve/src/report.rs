//! `SERVE_summary.json` — the serving simulation's latency and
//! compilation-queue report.
//!
//! Every statistic is an integer computed from simulated quantities
//! (nearest-rank percentiles, floored means, milli-scaled queue depth), so
//! the emitted file is byte-identical for byte-identical simulations —
//! CI compares two `--jobs` runs with `cmp`, no tolerance needed. Like the
//! rest of the repo's artifacts, emitter and parser are hand-rolled (no
//! JSON dependency) and promise only to round-trip each other's output.

use std::fmt::Write as _;

use crate::sim::ServeOutcome;

/// One prefetch mode's serving statistics. All latency fields are in
/// simulated cycles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModeReport {
    /// Prefetch mode (display form, e.g. `BASELINE` or `ADAPTIVE`).
    pub mode: String,
    /// Requests served.
    pub completed: u64,
    /// Median request latency.
    pub p50: u64,
    /// 99th-percentile request latency.
    pub p99: u64,
    /// 99.9th-percentile request latency.
    pub p999: u64,
    /// Worst request latency.
    pub max: u64,
    /// Mean request latency, floored.
    pub mean: u64,
    /// Deepest compilation queue observed at any epoch.
    pub queue_depth_max: u32,
    /// Mean compilation-queue depth × 1000, floored (integer so the file
    /// stays byte-comparable).
    pub queue_depth_mean_milli: u64,
    /// Background compilations installed.
    pub compiles: u64,
    /// Code-cache capacity evictions.
    pub evictions: u64,
    /// Adaptive deoptimizations across the fleet.
    pub deopts: u64,
    /// Adaptive recompilations across the fleet.
    pub recompiles: u64,
    /// Fleet checksum (must agree across modes).
    pub checksum: i64,
}

/// Nearest-rank percentile: the smallest element with at least
/// `num/den` of the distribution at or below it. `sorted` must be
/// ascending.
pub fn percentile(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (num * n).div_ceil(den).max(1);
    sorted[(rank - 1) as usize]
}

impl ModeReport {
    /// Condenses one simulation run into its report row.
    pub fn from_outcome(mode: &str, out: &ServeOutcome) -> ModeReport {
        let mut sorted = out.latencies.clone();
        sorted.sort_unstable();
        let depth_sum: u64 = out.queue_depth_samples.iter().map(|&d| u64::from(d)).sum();
        ModeReport {
            mode: mode.to_string(),
            completed: sorted.len() as u64,
            p50: percentile(&sorted, 50, 100),
            p99: percentile(&sorted, 99, 100),
            p999: percentile(&sorted, 999, 1000),
            max: sorted.last().copied().unwrap_or(0),
            mean: if sorted.is_empty() {
                0
            } else {
                sorted.iter().sum::<u64>() / sorted.len() as u64
            },
            queue_depth_max: out.queue_depth_samples.iter().copied().max().unwrap_or(0),
            queue_depth_mean_milli: if out.queue_depth_samples.is_empty() {
                0
            } else {
                depth_sum * 1000 / out.queue_depth_samples.len() as u64
            },
            compiles: out.compiles,
            evictions: out.evictions,
            deopts: out.deopts,
            recompiles: out.recompiles,
            checksum: out.checksum,
        }
    }
}

/// The full `SERVE_summary.json`: the configuration that produced the
/// numbers plus one row per mode. Host-only facts (`--jobs`, wall-clock)
/// are deliberately absent — two runs that should be bit-identical
/// produce byte-identical files.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServeSummary {
    /// Processor model name.
    pub processor: String,
    /// Tenant VM count.
    pub tenants: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Mean inter-arrival gap in cycles.
    pub mean_interarrival: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Epoch length in cycles.
    pub slot_cycles: u64,
    /// Background compiler workers.
    pub compile_workers: u64,
    /// Shared code-cache capacity in instructions.
    pub cache_capacity_instrs: u64,
    /// One row per prefetch mode, in run order.
    pub modes: Vec<ModeReport>,
}

/// Renders the summary as `SERVE_summary.json`.
pub fn emit(s: &ServeSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"spf-serve-summary-v1\",");
    let _ = writeln!(out, "  \"processor\": \"{}\",", s.processor);
    let _ = writeln!(out, "  \"tenants\": {},", s.tenants);
    let _ = writeln!(out, "  \"requests\": {},", s.requests);
    let _ = writeln!(out, "  \"mean_interarrival\": {},", s.mean_interarrival);
    let _ = writeln!(out, "  \"seed\": {},", s.seed);
    let _ = writeln!(out, "  \"slot_cycles\": {},", s.slot_cycles);
    let _ = writeln!(out, "  \"compile_workers\": {},", s.compile_workers);
    let _ = writeln!(
        out,
        "  \"cache_capacity_instrs\": {},",
        s.cache_capacity_instrs
    );
    out.push_str("  \"modes\": [\n");
    for (i, m) in s.modes.iter().enumerate() {
        let comma = if i + 1 == s.modes.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"completed\": {}, \"p50\": {}, \"p99\": {}, \
             \"p999\": {}, \"max\": {}, \"mean\": {}, \"queue_depth_max\": {}, \
             \"queue_depth_mean_milli\": {}, \"compiles\": {}, \"evictions\": {}, \
             \"deopts\": {}, \"recompiles\": {}, \"checksum\": {}}}{comma}",
            m.mode,
            m.completed,
            m.p50,
            m.p99,
            m.p999,
            m.max,
            m.mean,
            m.queue_depth_max,
            m.queue_depth_mean_milli,
            m.compiles,
            m.evictions,
            m.deopts,
            m.recompiles,
            m.checksum,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Parses a file produced by [`emit`]. Unknown keys are ignored, so
/// future writers can add fields without breaking old readers.
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field.
pub fn parse(text: &str) -> Result<ServeSummary, String> {
    let mut top = ServeSummary {
        processor: String::new(),
        tenants: 0,
        requests: 0,
        mean_interarrival: 0,
        seed: 0,
        slot_cycles: 0,
        compile_workers: 0,
        cache_capacity_instrs: 0,
        modes: Vec::new(),
    };
    let mut seen_processor = false;
    for line in text.lines() {
        let line = line.trim();
        if line.contains("\"mode\"") {
            let get = |key: &str| {
                field(line, key).ok_or_else(|| format!("missing field {key} in line: {line}"))
            };
            let num = |key: &str| -> Result<u64, String> {
                get(key)?
                    .parse()
                    .map_err(|e| format!("bad {key} in {line}: {e}"))
            };
            top.modes.push(ModeReport {
                mode: get("mode")?.to_string(),
                completed: num("completed")?,
                p50: num("p50")?,
                p99: num("p99")?,
                p999: num("p999")?,
                max: num("max")?,
                mean: num("mean")?,
                queue_depth_max: num("queue_depth_max")? as u32,
                queue_depth_mean_milli: num("queue_depth_mean_milli")?,
                compiles: num("compiles")?,
                evictions: num("evictions")?,
                deopts: num("deopts")?,
                recompiles: num("recompiles")?,
                checksum: get("checksum")?
                    .parse()
                    .map_err(|e| format!("bad checksum in {line}: {e}"))?,
            });
            continue;
        }
        let tnum = |key: &str, dst: &mut u64| -> Result<(), String> {
            if let Some(v) = field(line, key) {
                *dst = v.parse().map_err(|e| format!("bad {key}: {e}"))?;
            }
            Ok(())
        };
        if let Some(p) = field(line, "processor") {
            top.processor = p.to_string();
            seen_processor = true;
        }
        tnum("tenants", &mut top.tenants)?;
        tnum("requests", &mut top.requests)?;
        tnum("mean_interarrival", &mut top.mean_interarrival)?;
        tnum("seed", &mut top.seed)?;
        tnum("slot_cycles", &mut top.slot_cycles)?;
        tnum("compile_workers", &mut top.compile_workers)?;
        tnum("cache_capacity_instrs", &mut top.cache_capacity_instrs)?;
    }
    if !seen_processor {
        return Err("not a SERVE_summary.json: no processor field".to_string());
    }
    if top.modes.is_empty() {
        return Err("not a SERVE_summary.json: no mode rows".to_string());
    }
    Ok(top)
}

/// Renders the human-readable latency table.
pub fn render(s: &ServeSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} tenants, {} requests, mean gap {} cycles, {} compile workers, \
         cache {} instrs, {}",
        s.tenants,
        s.requests,
        s.mean_interarrival,
        s.compile_workers,
        s.cache_capacity_instrs,
        s.processor
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>7} {:>9} {:>8} {:>6} {:>7}",
        "mode",
        "p50",
        "p99",
        "p999",
        "mean",
        "qdepth",
        "qmax",
        "compiles",
        "evicted",
        "deopt",
        "recomp"
    );
    for m in &s.modes {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>7} {:>9} {:>8} {:>6} {:>7}",
            m.mode,
            m.p50,
            m.p99,
            m.p999,
            m.mean,
            format!(
                "{}.{:03}",
                m.queue_depth_mean_milli / 1000,
                m.queue_depth_mean_milli % 1000
            ),
            m.queue_depth_max,
            m.compiles,
            m.evictions,
            m.deopts,
            m.recompiles,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeSummary {
        ServeSummary {
            processor: "Pentium 4".to_string(),
            tenants: 120,
            requests: 600,
            mean_interarrival: 20_000,
            seed: 99,
            slot_cycles: 100_000,
            compile_workers: 2,
            cache_capacity_instrs: 4096,
            modes: vec![
                ModeReport {
                    mode: "BASELINE".to_string(),
                    completed: 600,
                    p50: 1_000,
                    p99: 9_000,
                    p999: 20_000,
                    max: 30_000,
                    mean: 2_000,
                    queue_depth_max: 7,
                    queue_depth_mean_milli: 1_250,
                    compiles: 40,
                    evictions: 3,
                    deopts: 0,
                    recompiles: 0,
                    checksum: -12345,
                },
                ModeReport {
                    mode: "ADAPTIVE".to_string(),
                    completed: 600,
                    p50: 900,
                    p99: 8_000,
                    p999: 18_000,
                    max: 28_000,
                    mean: 1_800,
                    queue_depth_max: 9,
                    queue_depth_mean_milli: 1_500,
                    compiles: 55,
                    evictions: 6,
                    deopts: 4,
                    recompiles: 4,
                    checksum: -12345,
                },
            ],
        }
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50, 100), 50);
        assert_eq!(percentile(&v, 99, 100), 99);
        assert_eq!(percentile(&v, 999, 1000), 100);
        assert_eq!(percentile(&v, 100, 100), 100);
        assert_eq!(percentile(&[42], 50, 100), 42);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn emit_parse_round_trip() {
        let s = sample();
        let text = emit(&s);
        let back = parse(&text).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let text = emit(&sample()).replace(
            "\"tenants\": 120,",
            "\"tenants\": 120,\n  \"novel_future_field\": 7,",
        );
        let back = parse(&text).expect("forward compatible");
        assert_eq!(back, sample());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("hello world").is_err());
        assert!(parse("{\"processor\": \"x\"}").is_err(), "no mode rows");
    }

    #[test]
    fn render_mentions_every_mode() {
        let table = render(&sample());
        assert!(table.contains("BASELINE"));
        assert!(table.contains("ADAPTIVE"));
        assert!(table.contains("120 tenants"));
    }
}
