//! Deterministic fault injection for the serving simulation.
//!
//! Chaos testing usually trades reproducibility for realism: faults fire
//! from timers and the run that exposed a bug can never be replayed. This
//! module keeps the realism and discards the non-determinism. A
//! [`FaultPlan`] is generated up front from a seeded [`spf_testkit::Rng`]
//! as a set of [`FaultWindow`]s aligned to epoch-barrier boundaries, so an
//! injected fault lands at exactly the same simulated cycle on every
//! host and every `--jobs` value — chaos runs are `cmp`-gated in CI just
//! like fault-free ones.
//!
//! Four fault kinds, each paired with a degradation mechanism in
//! [`crate::sim`]:
//!
//! * **GC storm** — every tenant's heap is forced through a move epoch at
//!   each barrier inside the window, mass-staling adaptive guards. Paired
//!   with spf-adapt's re-armable budgets and the recovery sweep
//!   ([`spf_vm::Vm::reenqueue_stranded`]), which recompiles stranded
//!   methods from their retained deopt arguments.
//! * **Compile stall** — the background compiler workers stop picking up
//!   jobs (in-flight compiles still finish). Paired with compile-request
//!   deadlines: a job waiting past the deadline re-enters the queue with
//!   exponential backoff instead of wedging the FIFO.
//! * **Cache squeeze** — the shared code cache shrinks mid-run to
//!   [`ChaosConfig::squeeze_capacity_instrs`], evicting down to the new
//!   capacity; per-tenant quotas keep one tenant from monopolizing what
//!   is left.
//! * **Traffic burst** — extra requests for one tenant inside the window.
//!   Paired with queue-depth admission control: *surge* arrivals beyond
//!   [`ChaosConfig::admission_max_depth`] are shed with a typed
//!   [`spf_trace::TraceEvent::RequestShed`] outcome instead of growing
//!   the tail unboundedly. Contracted base traffic is never shed — it
//!   queues behind whatever surge was admitted — so sheds stop the
//!   instant the burst window closes.
//!
//! [`verify_recovery`] closes the loop: after the last window (plus a
//! grace period) the stranded-method count must be zero, sheds must have
//! stopped, and the p99 of post-recovery requests must be within a fixed
//! bound of the same requests' p99 in the fault-free run.

use std::fmt::Write as _;

use spf_testkit::Rng;
use spf_trace::FaultKind;

use crate::sim::ServeOutcome;
use crate::traffic::Request;

/// Chaos-mode configuration: the fault mix plus every degradation knob.
/// Lives on [`crate::ServeConfig::chaos`] as `Option` — `None` takes the
/// exact legacy code paths, so fault-free runs stay byte-identical.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Fault-plan seed (independent of the traffic seed).
    pub seed: u64,
    /// GC-storm windows to schedule.
    pub gc_storms: u32,
    /// Compile-stall windows to schedule.
    pub compile_stalls: u32,
    /// Cache-squeeze windows to schedule.
    pub cache_squeezes: u32,
    /// Per-tenant traffic-burst windows to schedule.
    pub traffic_bursts: u32,
    /// Extra requests injected per burst window.
    pub burst_requests: u32,
    /// Code-cache capacity while a squeeze window is active.
    pub squeeze_capacity_instrs: u64,
    /// A compile job waiting longer than this re-enters the queue with
    /// backoff (and counts as a retry).
    pub compile_deadline_cycles: u64,
    /// Base retry delay; doubles per attempt (`base << attempts`).
    pub retry_backoff_base: u64,
    /// Surge (burst-injected) arrivals beyond this per-tenant queue
    /// depth are shed; base traffic always queues.
    pub admission_max_depth: u32,
    /// Per-tenant code-cache quota in instructions (0 disables quotas).
    pub tenant_quota_instrs: u64,
    /// Plumbed into [`spf_adapt::AdaptConfig::rearm_stable_epochs`] for
    /// every tenant VM: disarmed guards re-arm after this many stable GC
    /// epochs.
    pub rearm_stable_epochs: u64,
    /// Plumbed into [`spf_adapt::AdaptConfig::max_recompiles`]: kept low
    /// in chaos runs so GC storms actually exhaust budgets and the
    /// re-arm path is exercised, not just available.
    pub adapt_max_recompiles: u32,
    /// Grace period after the last fault window, in epoch slots, before
    /// the recovery invariants must hold.
    pub recovery_grace_slots: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5C4A,
            gc_storms: 3,
            compile_stalls: 1,
            cache_squeezes: 1,
            traffic_bursts: 2,
            burst_requests: 30,
            squeeze_capacity_instrs: 1_024,
            compile_deadline_cycles: 400_000,
            retry_backoff_base: 50_000,
            admission_max_depth: 4,
            tenant_quota_instrs: 2_048,
            rearm_stable_epochs: 2,
            adapt_max_recompiles: 1,
            recovery_grace_slots: 40,
        }
    }
}

/// One scheduled fault: `kind` is active on cycles `start <= now < end`.
/// Both bounds are epoch-slot multiples, so activation and deactivation
/// land exactly on barriers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FaultWindow {
    /// First active cycle (slot multiple).
    pub start: u64,
    /// First cycle past the window (slot multiple).
    pub end: u64,
    /// What breaks.
    pub kind: FaultKind,
    /// Target tenant for per-tenant kinds; `u32::MAX` means fleet-wide.
    pub tenant: u32,
}

/// The full schedule, sorted by `(start, end, kind, tenant)`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// Scheduled windows, sorted.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// Whether any window of `kind` is active at `now`.
    pub fn is_active(&self, kind: FaultKind, now: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == kind && w.start <= now && now < w.end)
    }

    /// The windows of `kind`, in schedule order.
    pub fn of_kind(&self, kind: FaultKind) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.kind == kind)
    }

    /// The earliest window boundary (start or end) strictly after `now`,
    /// if any — the simulation folds this into its next-event time so no
    /// barrier skips an activation edge.
    pub fn next_boundary_after(&self, now: u64) -> Option<u64> {
        self.windows
            .iter()
            .flat_map(|w| [w.start, w.end])
            .filter(|&b| b > now)
            .min()
    }

    /// End of the last window (0 for an empty plan): the earliest cycle
    /// at which recovery can begin.
    pub fn last_end(&self) -> u64 {
        self.windows.iter().map(|w| w.end).max().unwrap_or(0)
    }
}

/// Generates the fault schedule for a run expected to span `horizon`
/// cycles with `slot`-cycle epochs. Pure function of its inputs: same
/// config, same plan. Windows of the same `(kind, tenant)` never overlap
/// (a window that cannot be placed after 16 draws is dropped); windows
/// start no later than ~70% of the horizon so recovery has room.
pub fn generate(chaos: &ChaosConfig, tenants: usize, horizon: u64, slot: u64) -> FaultPlan {
    assert!(slot > 0, "fault windows need a slot grid");
    assert!(tenants > 0, "fault plans need at least one tenant");
    let mut rng = Rng::new(chaos.seed);
    let max_start_slot = ((horizon * 7 / 10) / slot).max(1);
    let mut windows: Vec<FaultWindow> = Vec::new();
    let mut place = |rng: &mut Rng, kind: FaultKind, count: u32, per_tenant: bool| {
        for _ in 0..count {
            for _attempt in 0..16 {
                let start_slot = rng.u64_in(1, max_start_slot);
                let dur_slots = rng.u64_in(2, 6);
                let tenant = if per_tenant {
                    rng.index(tenants) as u32
                } else {
                    u32::MAX
                };
                let w = FaultWindow {
                    start: start_slot * slot,
                    end: (start_slot + dur_slots) * slot,
                    kind,
                    tenant,
                };
                let clashes = windows.iter().any(|o| {
                    o.kind == w.kind && o.tenant == w.tenant && o.start < w.end && w.start < o.end
                });
                if !clashes {
                    windows.push(w);
                    break;
                }
            }
        }
    };
    place(&mut rng, FaultKind::GcStorm, chaos.gc_storms, false);
    place(
        &mut rng,
        FaultKind::CompileStall,
        chaos.compile_stalls,
        false,
    );
    place(
        &mut rng,
        FaultKind::CacheSqueeze,
        chaos.cache_squeezes,
        false,
    );
    place(
        &mut rng,
        FaultKind::TrafficBurst,
        chaos.traffic_bursts,
        true,
    );
    windows.sort_by_key(|w| (w.start, w.end, w.kind, w.tenant));
    FaultPlan { windows }
}

/// Injects the plan's traffic bursts into a base request stream. Burst
/// requests are spread evenly over their window, target the window's
/// tenant, and take ids *after* every base id — so base request `i` keeps
/// id `i` and its latency stays directly comparable with the fault-free
/// run's. The result is sorted by `(arrival, id)` as the simulation
/// requires.
pub fn inject_bursts(base: &[Request], plan: &FaultPlan, chaos: &ChaosConfig) -> Vec<Request> {
    let mut out = base.to_vec();
    let mut next_id = base.len() as u32;
    for w in plan.of_kind(FaultKind::TrafficBurst) {
        let gap = ((w.end - w.start) / u64::from(chaos.burst_requests.max(1))).max(1);
        let mut arrival = w.start;
        for _ in 0..chaos.burst_requests {
            if arrival >= w.end {
                break;
            }
            out.push(Request {
                id: next_id,
                tenant: w.tenant,
                arrival,
            });
            next_id += 1;
            arrival += gap;
        }
    }
    out.sort_by_key(|r| (r.arrival, r.id));
    out
}

/// Renders a plan as `FAULT_plan.json` (hand-rolled, like every artifact
/// in this repo; [`parse`] round-trips it).
pub fn emit(plan: &FaultPlan) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"spf-fault-plan-v1\",\n  \"windows\": [\n");
    for (i, w) in plan.windows.iter().enumerate() {
        let comma = if i + 1 == plan.windows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"tenant\": {}, \"start\": {}, \"end\": {}}}{comma}",
            w.kind, w.tenant, w.start, w.end,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

fn kind_from_str(s: &str) -> Option<FaultKind> {
    Some(match s {
        "gc-storm" => FaultKind::GcStorm,
        "compile-stall" => FaultKind::CompileStall,
        "cache-squeeze" => FaultKind::CacheSqueeze,
        "traffic-burst" => FaultKind::TrafficBurst,
        _ => return None,
    })
}

/// Parses a file produced by [`emit`].
///
/// # Errors
///
/// Returns a message naming the first malformed line or field.
pub fn parse(text: &str) -> Result<FaultPlan, String> {
    let mut windows = Vec::new();
    let mut seen_schema = false;
    for line in text.lines() {
        let line = line.trim();
        if field(line, "schema").is_some() {
            seen_schema = true;
        }
        let Some(kind) = field(line, "kind") else {
            continue;
        };
        let kind = kind_from_str(kind).ok_or_else(|| format!("unknown fault kind in: {line}"))?;
        let num = |key: &str| -> Result<u64, String> {
            field(line, key)
                .ok_or_else(|| format!("missing {key} in: {line}"))?
                .parse()
                .map_err(|e| format!("bad {key} in {line}: {e}"))
        };
        windows.push(FaultWindow {
            start: num("start")?,
            end: num("end")?,
            kind,
            tenant: num("tenant")? as u32,
        });
    }
    if !seen_schema {
        return Err("not a FAULT_plan.json: no schema field".to_string());
    }
    Ok(FaultPlan { windows })
}

/// Upper bound on post-recovery p99 as a ratio of the fault-free run's
/// p99, in milli (2000 = 2.0×). The absolute slack of a few epoch slots
/// in [`verify_recovery`] covers tiny-denominator cases.
pub const RECOVERY_P99_RATIO_MILLI: u64 = 2_000;

/// What [`verify_recovery`] measured while checking the invariants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// Methods still stranded (deopted, uncompiled) at run end.
    pub stranded_final: u64,
    /// Requests shed over the whole run.
    pub shed: u64,
    /// Cycle at which recovery must hold: last window end plus grace.
    pub recovery_at: u64,
    /// Base requests arriving at or after `recovery_at`.
    pub post_requests: u64,
    /// Their p99 latency in the fault run.
    pub post_p99_fault: u64,
    /// Their p99 latency in the fault-free run.
    pub post_p99_nofault: u64,
    /// `post_p99_fault * 1000 / post_p99_nofault` (0 when no post-window
    /// requests exist).
    pub post_p99_ratio_milli: u64,
}

/// Checks the recovery invariants of a fault run against its fault-free
/// twin: stranded methods drained to zero, no sheds after the recovery
/// point, and post-recovery p99 within [`RECOVERY_P99_RATIO_MILLI`] (plus
/// four slots of absolute slack) of the fault-free run. `base` is the
/// *uninjected* request stream — ids below `base.len()` mean the same
/// request in both outcomes.
///
/// # Errors
///
/// Returns a message describing the first violated invariant.
pub fn verify_recovery(
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    slot: u64,
    base: &[Request],
    fault: &ServeOutcome,
    nofault: &ServeOutcome,
) -> Result<RecoveryReport, String> {
    let recovery_at = plan.last_end() + chaos.recovery_grace_slots * slot;
    let mut report = RecoveryReport {
        stranded_final: fault.stranded_final,
        shed: fault.shed.len() as u64,
        recovery_at,
        post_requests: 0,
        post_p99_fault: 0,
        post_p99_nofault: 0,
        post_p99_ratio_milli: 0,
    };
    if fault.stranded_final != 0 {
        return Err(format!(
            "{} methods still stranded in the interpreter at run end",
            fault.stranded_final
        ));
    }
    if let Some(&last) = fault.shed_times.iter().max() {
        if last >= recovery_at {
            return Err(format!(
                "request shed at cycle {last}, at or after the recovery point {recovery_at}"
            ));
        }
    }
    // Post-recovery p99, over base requests both runs served.
    let shed: std::collections::HashSet<u32> = fault.shed.iter().copied().collect();
    let mut fl: Vec<u64> = Vec::new();
    let mut nl: Vec<u64> = Vec::new();
    for r in base {
        if r.arrival >= recovery_at && !shed.contains(&r.id) {
            fl.push(fault.latencies[r.id as usize]);
            nl.push(nofault.latencies[r.id as usize]);
        }
    }
    report.post_requests = fl.len() as u64;
    if !fl.is_empty() {
        fl.sort_unstable();
        nl.sort_unstable();
        report.post_p99_fault = crate::report::percentile(&fl, 99, 100);
        report.post_p99_nofault = crate::report::percentile(&nl, 99, 100);
        report.post_p99_ratio_milli = report.post_p99_fault * 1000 / report.post_p99_nofault.max(1);
        let bound = report.post_p99_nofault * RECOVERY_P99_RATIO_MILLI / 1000 + 4 * slot;
        if report.post_p99_fault > bound {
            return Err(format!(
                "post-recovery p99 {} exceeds bound {bound} (fault-free p99 {})",
                report.post_p99_fault, report.post_p99_nofault
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_testkit::cases;

    fn arb_chaos(r: &mut Rng) -> ChaosConfig {
        ChaosConfig {
            seed: r.u64(),
            gc_storms: r.u64_in(0, 4) as u32,
            compile_stalls: r.u64_in(0, 3) as u32,
            cache_squeezes: r.u64_in(0, 3) as u32,
            traffic_bursts: r.u64_in(0, 4) as u32,
            burst_requests: r.u64_in(1, 50) as u32,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn plans_are_deterministic_and_sorted() {
        cases(64, "fault plan determinism", |r| {
            let chaos = arb_chaos(r);
            let tenants = r.usize_in(1, 200);
            let horizon = r.u64_in(10, 2_000) * 1_000;
            let slot = r.u64_in(1, 20) * 500;
            let a = generate(&chaos, tenants, horizon, slot);
            let b = generate(&chaos, tenants, horizon, slot);
            assert_eq!(a, b, "same inputs must yield the same plan");
            for w in windows_pairs(&a) {
                assert!(
                    (w.0.start, w.0.end, w.0.kind, w.0.tenant)
                        <= (w.1.start, w.1.end, w.1.kind, w.1.tenant),
                    "schedule must be sorted"
                );
            }
        });
    }

    fn windows_pairs(p: &FaultPlan) -> impl Iterator<Item = (&FaultWindow, &FaultWindow)> {
        p.windows.windows(2).map(|w| (&w[0], &w[1]))
    }

    #[test]
    fn windows_are_slot_aligned_and_disjoint_per_kind_and_tenant() {
        cases(64, "fault plan shape", |r| {
            let chaos = arb_chaos(r);
            let tenants = r.usize_in(1, 100);
            let slot = r.u64_in(1, 10) * 1_000;
            let plan = generate(&chaos, tenants, 5_000_000, slot);
            for w in &plan.windows {
                assert_eq!(w.start % slot, 0, "start off the slot grid");
                assert_eq!(w.end % slot, 0, "end off the slot grid");
                assert!(w.start < w.end, "empty window");
            }
            for (i, a) in plan.windows.iter().enumerate() {
                for b in &plan.windows[i + 1..] {
                    if a.kind == b.kind && a.tenant == b.tenant {
                        assert!(
                            a.end <= b.start || b.end <= a.start,
                            "overlap: {a:?} vs {b:?}"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn plan_serialization_round_trips() {
        cases(64, "fault plan round trip", |r| {
            let chaos = arb_chaos(r);
            let plan = generate(&chaos, r.usize_in(1, 50), 3_000_000, 100_000);
            let back = parse(&emit(&plan)).expect("round trip");
            assert_eq!(plan, back);
        });
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("hello").is_err());
        assert!(
            parse("{\"schema\": \"spf-fault-plan-v1\", \"windows\": []}").is_ok(),
            "empty plan is fine"
        );
        assert!(parse(
            "{\"schema\": \"x\",\n{\"kind\": \"meteor-strike\", \"tenant\": 0, \
             \"start\": 0, \"end\": 1}"
        )
        .is_err());
    }

    #[test]
    fn bursts_preserve_base_ids_and_sortedness() {
        cases(32, "burst injection", |r| {
            let chaos = ChaosConfig {
                traffic_bursts: r.u64_in(1, 3) as u32,
                burst_requests: r.u64_in(1, 40) as u32,
                ..arb_chaos(r)
            };
            let tenants = r.usize_in(1, 30);
            let base = crate::traffic::generate(&crate::traffic::TrafficConfig {
                tenants,
                requests: r.u64_in(1, 200) as u32,
                mean_interarrival: 10_000,
                seed: r.u64(),
            });
            let plan = generate(&chaos, tenants, 2_000_000, 50_000);
            let all = inject_bursts(&base, &plan, &chaos);
            // Base requests survive untouched (same id, tenant, arrival).
            for b in &base {
                assert!(all.contains(b), "base request lost: {b:?}");
            }
            // Ids are unique and burst ids all follow the base range.
            let mut ids: Vec<u32> = all.iter().map(|q| q.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), all.len(), "duplicate ids");
            for q in &all {
                if q.id as usize >= base.len() {
                    assert!((q.tenant as usize) < tenants);
                }
            }
            for w in all.windows(2) {
                assert!(
                    (w[0].arrival, w[0].id) < (w[1].arrival, w[1].id),
                    "stream must stay sorted"
                );
            }
        });
    }

    #[test]
    fn next_boundary_walks_every_edge() {
        let plan = generate(&ChaosConfig::default(), 10, 5_000_000, 100_000);
        assert!(!plan.windows.is_empty());
        let mut now = 0;
        let mut seen = 0;
        while let Some(b) = plan.next_boundary_after(now) {
            assert!(b > now);
            now = b;
            seen += 1;
        }
        assert_eq!(now, plan.last_end());
        assert!(seen >= plan.windows.len(), "every window has two edges");
    }
}
