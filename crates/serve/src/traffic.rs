//! Deterministic open-loop request generator.
//!
//! Open-loop means arrivals are generated independently of service: a
//! request's arrival time never depends on when earlier requests finished,
//! which is what exposes queueing delay in the tail percentiles (a
//! closed-loop generator would self-throttle and hide it). Arrival times
//! and tenant assignments are drawn from a seeded [`spf_testkit::Rng`], so
//! the sequence is a pure function of the config — independent of host,
//! worker count, and simulation scheduling.

use spf_testkit::Rng;

/// Open-loop traffic description.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Number of tenant VMs requests are spread over.
    pub tenants: usize,
    /// Total requests to generate.
    pub requests: u32,
    /// Mean inter-arrival gap in simulated cycles (gaps are uniform in
    /// `[1, 2*mean]`, so the realized mean is `mean + 0.5`).
    pub mean_interarrival: u64,
    /// RNG seed; same seed, same sequence.
    pub seed: u64,
}

/// One generated request: workload invocation `id` on `tenant`'s VM,
/// arriving at simulated cycle `arrival`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request {
    /// Sequence number in arrival order (0-based).
    pub id: u32,
    /// Target tenant index.
    pub tenant: u32,
    /// Arrival time on the serving clock, in cycles.
    pub arrival: u64,
}

/// Generates the arrival sequence for `cfg`, sorted by arrival time (the
/// gap draw is strictly positive, so arrivals are strictly increasing).
pub fn generate(cfg: &TrafficConfig) -> Vec<Request> {
    assert!(cfg.tenants > 0, "traffic needs at least one tenant");
    let mut rng = Rng::new(cfg.seed);
    let mut now = 0u64;
    (0..cfg.requests)
        .map(|id| {
            now += 1 + rng.below(2 * cfg.mean_interarrival.max(1));
            Request {
                id,
                tenant: rng.index(cfg.tenants) as u32,
                arrival: now,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_testkit::cases;

    #[test]
    fn deterministic_per_seed() {
        cases(64, "traffic determinism", |r| {
            let cfg = TrafficConfig {
                tenants: r.usize_in(1, 300),
                requests: r.u64_in(1, 500) as u32,
                mean_interarrival: r.u64_in(0, 100_000),
                seed: r.u64(),
            };
            let a = generate(&cfg);
            let b = generate(&cfg);
            assert_eq!(a, b, "same config must yield the same sequence");
        });
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_tenants_in_range() {
        cases(32, "traffic shape", |r| {
            let cfg = TrafficConfig {
                tenants: r.usize_in(1, 200),
                requests: 200,
                mean_interarrival: r.u64_in(0, 10_000),
                seed: r.u64(),
            };
            let reqs = generate(&cfg);
            assert_eq!(reqs.len(), 200);
            for (i, w) in reqs.windows(2).enumerate() {
                assert!(w[0].arrival < w[1].arrival, "at {i}");
            }
            for (i, rq) in reqs.iter().enumerate() {
                assert_eq!(rq.id as usize, i);
                assert!((rq.tenant as usize) < cfg.tenants);
            }
        });
    }

    #[test]
    fn different_seeds_differ() {
        let base = TrafficConfig {
            tenants: 10,
            requests: 100,
            mean_interarrival: 1000,
            seed: 1,
        };
        let a = generate(&base);
        let b = generate(&TrafficConfig { seed: 2, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn mean_gap_tracks_config() {
        let cfg = TrafficConfig {
            tenants: 4,
            requests: 10_000,
            mean_interarrival: 500,
            seed: 7,
        };
        let reqs = generate(&cfg);
        let total = reqs.last().unwrap().arrival;
        let mean = total as f64 / reqs.len() as f64;
        assert!(
            (mean - 500.5).abs() < 25.0,
            "realized mean {mean} should be near 500.5"
        );
    }
}
