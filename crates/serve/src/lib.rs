//! Multi-tenant serving simulation for the stride-prefetching VM.
//!
//! The paper measures one workload at a time on an otherwise idle
//! machine. Production JITs live a harder life: hundreds of VM instances
//! share a box, compilation happens on background threads while the
//! application keeps interpreting, and compiled code competes for a
//! bounded shared code cache. This crate simulates that regime on top of
//! the existing deterministic VM:
//!
//! - [`traffic`] — a seeded open-loop request generator: each request is
//!   one workload invocation on one tenant's VM.
//! - [`cache`] — the bounded shared code cache with LRU eviction;
//!   capacity evictions force interpreter fallback and eventual
//!   recompilation, and credit spf-adapt's guards so they never burn the
//!   adaptive staleness budget.
//! - [`faults`] — deterministic chaos: a seeded [`faults::FaultPlan`]
//!   schedules GC storms, compile stalls, cache squeezes, and traffic
//!   bursts at exact epoch boundaries, each paired with a degradation
//!   mechanism (re-armable recompile budgets, compile deadlines with
//!   backoff retry, per-tenant cache quotas, admission-control load
//!   shedding), and [`faults::verify_recovery`] proves the fleet
//!   recovered after the last window.
//! - [`sim`] — the epoch-barrier fleet simulation: a work-stealing host
//!   pool executes requests in parallel, but every shared-state mutation
//!   happens at serial barriers in canonical order, so results are
//!   bit-identical across `--jobs` values and host machines.
//! - [`report`] — integer-only latency percentiles (p50/p99/p999) and
//!   compilation-queue statistics, emitted as `SERVE_summary.json` and
//!   gated in CI by byte comparison, exactly like `bench_diff` gates the
//!   96-cell matrix.
//!
//! The `spf-serve` binary in `spf-bench` drives [`sim::run`] over the
//! four prefetch modes and writes the artifact.

pub mod cache;
pub mod faults;
pub mod report;
pub mod sim;
pub mod traffic;

pub use cache::{CacheEntry, CodeCache};
pub use faults::{
    inject_bursts, verify_recovery, ChaosConfig, FaultPlan, FaultWindow, RecoveryReport,
};
pub use report::{percentile, ChaosRow, ModeReport, ServeSummary};
pub use sim::{run, ServeConfig, ServeOutcome};
pub use traffic::{generate, Request, TrafficConfig};
