//! The epoch-barrier serving simulation.
//!
//! Hundreds of tenant VMs — each a full mixed-mode [`spf_vm::Vm`] over its
//! own heap shard — serve an open-loop request stream. Time advances in
//! *epochs*: at each epoch barrier the single-threaded coordinator absorbs
//! arrivals, completes and schedules background compilations, evicts from
//! the shared code cache, and dispatches at most one request per idle
//! tenant; the dispatched requests then execute host-parallel, each worker
//! thread owning its tenant VM exclusively for the duration of the call.
//!
//! Because every shared-state mutation (compile install, cache eviction,
//! queue push) happens at a barrier in canonical tenant/worker order, and
//! the parallel phase touches only per-tenant state, the simulation is a
//! pure function of [`ServeConfig`] — bit-identical across host machines
//! and `jobs` values. That property is what lets CI gate serving latency
//! numbers the same way `bench_diff` gates the matrix.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use spf_adapt::AdaptConfig;
use spf_core::PrefetchOptions;
use spf_heap::shard_bytes;
use spf_ir::MethodId;
use spf_memsim::ProcessorConfig;
use spf_trace::{FaultKind, NoopSink, TraceEvent};
use spf_vm::{Predecoded, Vm, VmConfig};
use spf_workloads::{all, Size};

use crate::cache::CodeCache;
use crate::faults::{self, ChaosConfig, FaultPlan};
use crate::traffic::{self, Request, TrafficConfig};

/// Serving-simulation configuration. Everything that influences a
/// simulated number lives here; host parallelism (`jobs`) is passed to
/// [`run`] separately because it must never change the outcome.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of tenant VMs. Tenant `i` runs workload `i % 12` from the
    /// Table 3 registry.
    pub tenants: usize,
    /// Total requests in the open-loop stream.
    pub requests: u32,
    /// Mean request inter-arrival gap in cycles.
    pub mean_interarrival: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Epoch length: barriers land on multiples of this many cycles.
    pub slot_cycles: u64,
    /// Dedicated background compiler workers draining the shared queue.
    pub compile_workers: usize,
    /// Shared code-cache capacity in compiled instructions.
    pub cache_capacity_instrs: u64,
    /// Per-tenant heap = `shard_bytes(workload_heap, heap_shard_div,
    /// heap_floor_bytes)` — tenants get a slice of the standalone heap,
    /// bounded below so small workloads still fit.
    pub heap_shard_div: usize,
    /// Lower bound on a tenant heap shard, in bytes.
    pub heap_floor_bytes: usize,
    /// Workload problem size.
    pub size: Size,
    /// Chaos mode: fault plan plus degradation knobs. `None` (the
    /// default) takes the exact legacy code paths — fault-free runs stay
    /// byte-identical to pre-chaos builds.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 120,
            requests: 600,
            mean_interarrival: 300_000,
            seed: 0x5EED_5E17,
            slot_cycles: 100_000,
            compile_workers: 2,
            cache_capacity_instrs: 8_192,
            heap_shard_div: 32,
            heap_floor_bytes: 2 << 20,
            size: Size::Tiny,
            chaos: None,
        }
    }
}

/// What one [`run`] produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Per-request latency (completion − arrival) in cycles, indexed by
    /// request id.
    pub latencies: Vec<u64>,
    /// Compilation-queue depth (waiting + in service) sampled once per
    /// epoch.
    pub queue_depth_samples: Vec<u32>,
    /// Serve-level trace events (enqueues, installs, evictions, request
    /// completions) in simulation order.
    pub events: Vec<TraceEvent>,
    /// Background compilations installed.
    pub compiles: u64,
    /// Code-cache capacity evictions.
    pub evictions: u64,
    /// Whole-method adaptive deoptimizations summed over all tenant VMs.
    /// Always 0 since invalidation went per-loop; kept so downstream
    /// reports keep their column.
    pub deopts: u64,
    /// Full adaptive recompilations summed over all tenant VMs.
    pub recompiles: u64,
    /// Per-loop invalidations (prefetch sites patched to no-ops, body
    /// kept compiled) summed over all tenant VMs.
    pub loop_deopts: u64,
    /// Per-loop repatches (stale loops re-inspected and their sites
    /// re-emitted into the installed body) summed over all tenant VMs.
    pub loop_repatches: u64,
    /// Order-sensitive fold of every tenant's workload checksum — equal
    /// across modes and `jobs` values, or the fleet diverged.
    pub checksum: i64,
    /// Number of epoch barriers executed.
    pub epochs: u64,
    /// Request ids shed by admission control, in shed order (empty
    /// without chaos).
    pub shed: Vec<u32>,
    /// Shed cycle of each entry in `shed` (parallel vector).
    pub shed_times: Vec<u64>,
    /// Compile jobs re-queued after missing their deadline.
    pub retries: u64,
    /// Adaptive guard re-arms across the fleet.
    pub rearms: u64,
    /// Fault windows that activated.
    pub faults: u64,
    /// Loops still stranded (invalidated, not yet repatched) at run end
    /// — the `deopt-summary` stranding diagnostic, surfaced
    /// machine-checkably.
    pub stranded_final: u64,
    /// Fleet stranded-loop count sampled once per epoch (chaos runs
    /// only; empty otherwise).
    pub stranded_samples: Vec<u64>,
}

/// One tenant: a VM plus its request queue and serving clock.
struct Tenant {
    vm: Vm,
    entry: MethodId,
    expected: Option<i32>,
    /// First observed checksum; later requests must reproduce it.
    checksum: Option<i32>,
    name: &'static str,
    queue: VecDeque<Request>,
    /// Serving-clock cycle at which the tenant finishes its current
    /// request (idle when `<= now`).
    free_at: u64,
}

/// A background compile request waiting in, or being served by, the
/// shared compilation queue.
#[derive(Clone, Copy)]
struct CompileJob {
    tenant: u32,
    method: MethodId,
    cost: u64,
    enqueued_at: u64,
    /// Deadline retries so far (chaos mode; always 0 otherwise).
    attempts: u32,
    /// Earliest cycle a worker may pick the job up (retry backoff;
    /// always 0 without chaos, making assignment exactly FIFO).
    not_before: u64,
}

/// Runs the serving simulation: `cfg.requests` requests over
/// `cfg.tenants` VMs under `options`, with `jobs` host worker threads.
///
/// # Panics
///
/// Panics if a tenant workload faults, produces inconsistent checksums
/// across requests, or the simulation stalls (no future event while
/// requests remain — a scheduler bug).
pub fn run(
    cfg: &ServeConfig,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    jobs: usize,
) -> ServeOutcome {
    assert!(cfg.tenants > 0, "need at least one tenant");
    assert!(cfg.compile_workers > 0, "need at least one compiler worker");
    assert!(cfg.slot_cycles > 0, "epochs must advance");

    let specs = all();
    // Build and pre-decode each distinct workload once; tenants share the
    // decoded bodies via `Arc` exactly like the benchmark matrix does.
    struct Blueprint {
        pre: Arc<Predecoded>,
        entry: MethodId,
        heap: usize,
        expected: Option<i32>,
        threshold: u32,
        name: &'static str,
    }
    let blueprints: Vec<Blueprint> = specs
        .iter()
        .take(cfg.tenants.min(specs.len()))
        .map(|spec| {
            let built = (spec.build)(cfg.size);
            Blueprint {
                pre: Arc::new(Predecoded::new(built.program)),
                entry: built.entry,
                heap: shard_bytes(built.heap_bytes, cfg.heap_shard_div, cfg.heap_floor_bytes),
                expected: built.expected,
                threshold: built.compile_threshold,
                name: spec.name,
            }
        })
        .collect();

    let chaos = cfg.chaos;
    let mut tenants: Vec<Mutex<Tenant>> = (0..cfg.tenants)
        .map(|i| {
            let b = &blueprints[i % blueprints.len()];
            // Chaos runs harden the adaptive policy: a deliberately tight
            // recompile budget (so GC storms exhaust it and exercise the
            // re-arm path) and retained deopt arguments (so the recovery
            // sweep can recompile stranded methods). Fault-free runs keep
            // the exact legacy configuration.
            let adapt = match &chaos {
                Some(c) => AdaptConfig {
                    max_recompiles: c.adapt_max_recompiles,
                    rearm_stable_epochs: c.rearm_stable_epochs,
                    ..AdaptConfig::default()
                },
                None => AdaptConfig::default(),
            };
            let vm = Vm::from_predecoded(
                &b.pre,
                VmConfig {
                    heap_bytes: b.heap,
                    prefetch: options.clone(),
                    compile_threshold: b.threshold,
                    async_compile: true,
                    retain_deopt_args: chaos.is_some(),
                    adapt,
                    ..VmConfig::default()
                },
                proc.clone(),
                NoopSink,
            );
            Mutex::new(Tenant {
                vm,
                entry: b.entry,
                expected: b.expected,
                checksum: None,
                name: b.name,
                queue: VecDeque::new(),
                free_at: 0,
            })
        })
        .collect();

    let base_requests = traffic::generate(&TrafficConfig {
        tenants: cfg.tenants,
        requests: cfg.requests,
        mean_interarrival: cfg.mean_interarrival,
        seed: cfg.seed,
    });
    // The fault plan spans the base stream's arrival horizon; burst
    // requests take ids after every base id, so base latencies stay
    // directly comparable with a fault-free run's.
    let horizon = base_requests.last().map_or(cfg.slot_cycles, |r| r.arrival);
    let plan = match &chaos {
        Some(c) => faults::generate(c, cfg.tenants, horizon, cfg.slot_cycles),
        None => FaultPlan::default(),
    };
    let base_len = base_requests.len() as u32;
    let requests = match &chaos {
        Some(c) => faults::inject_bursts(&base_requests, &plan, c),
        None => base_requests,
    };

    let mut cache = CodeCache::with_quota(
        cfg.cache_capacity_instrs,
        chaos.map_or(0, |c| c.tenant_quota_instrs),
    );
    let mut queue: VecDeque<CompileJob> = VecDeque::new();
    // `workers[w]` holds the job worker `w` finishes at `finish_at`.
    let mut workers: Vec<Option<(u64, CompileJob)>> = vec![None; cfg.compile_workers];

    let mut out = ServeOutcome {
        latencies: vec![0; requests.len()],
        queue_depth_samples: Vec::new(),
        events: Vec::new(),
        compiles: 0,
        evictions: 0,
        deopts: 0,
        recompiles: 0,
        loop_deopts: 0,
        loop_repatches: 0,
        checksum: 0,
        epochs: 0,
        shed: Vec::new(),
        shed_times: Vec::new(),
        retries: 0,
        rearms: 0,
        faults: 0,
        stranded_final: 0,
        stranded_samples: Vec::new(),
    };

    let mut now = 0u64;
    let mut next_arrival = 0usize; // first not-yet-absorbed request
    let mut completed = 0usize;
    // Windows whose activation has been announced (pointer over the
    // start-sorted schedule).
    let mut next_fault = 0usize;
    while completed < requests.len() {
        out.epochs += 1;

        // 0. Chaos: announce newly active fault windows, apply the cache
        //    squeeze, and drive GC storms — all serially at the barrier.
        if let Some(c) = &chaos {
            while next_fault < plan.windows.len() && plan.windows[next_fault].start <= now {
                let w = plan.windows[next_fault];
                next_fault += 1;
                out.faults += 1;
                out.events.push(TraceEvent::FaultInjected {
                    kind: w.kind,
                    tenant: w.tenant,
                    now,
                    until: w.end,
                });
            }
            let desired = if plan.is_active(FaultKind::CacheSqueeze, now) {
                c.squeeze_capacity_instrs
            } else {
                cfg.cache_capacity_instrs
            };
            if cache.capacity() != desired {
                for victim in cache.set_capacity(desired) {
                    let vt = tenants[victim.tenant as usize].get_mut().unwrap();
                    vt.vm.evict_compiled(MethodId::new(victim.method as usize));
                    out.evictions += 1;
                    out.events.push(TraceEvent::CodeCacheEvicted {
                        tenant: victim.tenant,
                        method: victim.method,
                        instrs: victim.instrs as u32,
                        now,
                    });
                }
            }
            if plan.is_active(FaultKind::GcStorm, now) {
                for slot in tenants.iter_mut() {
                    slot.get_mut().unwrap().vm.inject_heap_move();
                }
            }
        }

        // 1. Absorb arrivals up to the barrier into per-tenant queues.
        //    Chaos adds admission control: *surge* (burst-injected)
        //    arrivals beyond the per-tenant depth limit are shed (typed
        //    outcome, excluded from the latency distribution) instead of
        //    queuing unboundedly. Contracted base traffic always queues,
        //    so every shed happens inside a burst window and the
        //    shed-decay recovery invariant holds by construction.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            let r = requests[next_arrival];
            next_arrival += 1;
            let t = tenants[r.tenant as usize].get_mut().unwrap();
            if let Some(c) = &chaos {
                if r.id >= base_len && t.queue.len() >= c.admission_max_depth as usize {
                    completed += 1;
                    out.shed.push(r.id);
                    out.shed_times.push(now);
                    out.events.push(TraceEvent::RequestShed {
                        tenant: r.tenant,
                        request: r.id,
                        depth: t.queue.len() as u32,
                        now,
                    });
                    continue;
                }
            }
            t.queue.push_back(r);
        }

        // 2. Complete finished background compiles, in worker order:
        //    install into the owning VM, charge the shared code cache, and
        //    evict LRU victims from their VMs.
        for slot in workers.iter_mut() {
            let Some((finish_at, job)) = *slot else {
                continue;
            };
            if finish_at > now {
                continue;
            }
            *slot = None;
            let t = tenants[job.tenant as usize].get_mut().unwrap();
            let Some(instrs) = t.vm.compile_pending(job.method) else {
                continue; // request withdrawn (method no longer pending)
            };
            out.compiles += 1;
            out.events.push(TraceEvent::CompileInstalled {
                tenant: job.tenant,
                method: job.method.index() as u32,
                wait: now - job.enqueued_at,
                now,
            });
            // A per-loop repatch refreshes a body that never left the
            // cache; drop the stale entry so the insert below re-accounts
            // the new size instead of double-counting.
            cache.remove(job.tenant, job.method.index() as u32);
            for victim in cache.insert(job.tenant, job.method.index() as u32, instrs, now) {
                let vt = tenants[victim.tenant as usize].get_mut().unwrap();
                vt.vm.evict_compiled(MethodId::new(victim.method as usize));
                out.evictions += 1;
                out.events.push(TraceEvent::CodeCacheEvicted {
                    tenant: victim.tenant,
                    method: victim.method,
                    instrs: victim.instrs as u32,
                    now,
                });
            }
        }

        // 2b. Chaos: jobs that waited past the compile deadline re-enter
        //     the queue with exponential backoff (and count as retries) —
        //     the degradation pairing for compile-stall windows.
        if let Some(c) = &chaos {
            for job in queue.iter_mut() {
                if job.not_before <= now && now - job.enqueued_at >= c.compile_deadline_cycles {
                    job.attempts += 1;
                    job.not_before = now + (c.retry_backoff_base << job.attempts.min(10));
                    job.enqueued_at = now;
                    out.retries += 1;
                    out.events.push(TraceEvent::CompileRetried {
                        tenant: job.tenant,
                        method: job.method.index() as u32,
                        attempt: job.attempts,
                        now,
                    });
                }
            }
        }

        // 3. Hand waiting jobs to idle compiler workers: the first
        //    eligible job in queue order (exact FIFO without chaos, since
        //    every `not_before` is then 0). A compile-stall window parks
        //    the workers; in-flight compiles still finish.
        let stalled = chaos.is_some() && plan.is_active(FaultKind::CompileStall, now);
        for slot in workers.iter_mut() {
            if slot.is_none() && !stalled {
                if let Some(i) = queue.iter().position(|j| j.not_before <= now) {
                    let job = queue.remove(i).expect("index from position");
                    *slot = Some((now + job.cost, job));
                }
            }
        }

        // 4. Dispatch one queued request per idle tenant, in tenant order.
        let mut dispatched: Vec<(usize, Request)> = Vec::new();
        for (i, slot) in tenants.iter_mut().enumerate() {
            let t = slot.get_mut().unwrap();
            if t.free_at <= now {
                if let Some(r) = t.queue.pop_front() {
                    dispatched.push((i, r));
                }
            }
        }

        // 5. Execute dispatched requests host-parallel. Each closure owns
        //    exactly one tenant VM (distinct indices), so the lock is
        //    uncontended and the work is embarrassingly parallel.
        let results: Vec<(u64, i32, Vec<MethodId>)> = run_each(jobs, dispatched.len(), |k| {
            let (ti, _) = dispatched[k];
            let t = &mut *tenants[ti].lock().unwrap();
            let before = t.vm.stats().cycles;
            let value =
                t.vm.call(t.entry, &[])
                    .unwrap_or_else(|e| panic!("tenant {ti} ({}) faulted: {e}", t.name))
                    .expect("entry returns a checksum")
                    .as_i32();
            let service = t.vm.stats().cycles - before;
            (service, value, t.vm.take_compile_requests())
        });

        // 6. Barrier: fold results back into shared state, in tenant
        //    order.
        for (&(ti, req), (service, value, compile_reqs)) in dispatched.iter().zip(results) {
            let t = tenants[ti].get_mut().unwrap();
            match t.checksum {
                None => {
                    if let Some(exp) = t.expected {
                        assert_eq!(value, exp, "tenant {ti} ({}) checksum", t.name);
                    }
                    t.checksum = Some(value);
                }
                Some(c) => assert_eq!(
                    value, c,
                    "tenant {ti} ({}) diverged between requests",
                    t.name
                ),
            }
            let completion = now + service;
            t.free_at = completion;
            out.latencies[req.id as usize] = completion - req.arrival;
            completed += 1;
            out.events.push(TraceEvent::RequestCompleted {
                tenant: ti as u32,
                request: req.id,
                latency: completion - req.arrival,
                now,
            });
            for mid in compile_reqs {
                let cost = t.vm.compile_cost_estimate(mid);
                queue.push_back(CompileJob {
                    tenant: ti as u32,
                    method: mid,
                    cost,
                    enqueued_at: now,
                    attempts: 0,
                    not_before: 0,
                });
                let busy = workers.iter().filter(|w| w.is_some()).count();
                out.events.push(TraceEvent::CompileEnqueued {
                    tenant: ti as u32,
                    method: mid.index() as u32,
                    depth: (queue.len() + busy) as u32,
                    now,
                });
            }
            if chaos.is_some() {
                for (method, generation) in t.vm.take_rearmed() {
                    out.rearms += 1;
                    out.events.push(TraceEvent::GuardRearmed {
                        tenant: ti as u32,
                        method,
                        generation,
                        now,
                    });
                }
            }
            // The tenant just ran: refresh its cache entries' recency and
            // drop entries whose body the VM deopted away on its own.
            cache.touch_tenant(ti as u32, now);
            let dead: Vec<u32> = cache
                .tenant_entries(ti as u32)
                .filter(|e| !t.vm.is_compiled(MethodId::new(e.method as usize)))
                .map(|e| e.method)
                .collect();
            for m in dead {
                cache.remove(ti as u32, m);
            }
        }

        // 6b. Chaos: the recovery sweep. Stranded methods (deopted,
        //     uncompiled) are re-enqueued from their retained deopt
        //     arguments — the degradation pairing for GC storms, and the
        //     mechanism that drives the stranded count back to zero.
        if chaos.is_some() {
            for (ti, slot) in tenants.iter_mut().enumerate() {
                let t = slot.get_mut().unwrap();
                t.vm.reenqueue_stranded();
                for mid in t.vm.take_compile_requests() {
                    let cost = t.vm.compile_cost_estimate(mid);
                    queue.push_back(CompileJob {
                        tenant: ti as u32,
                        method: mid,
                        cost,
                        enqueued_at: now,
                        attempts: 0,
                        not_before: 0,
                    });
                    let busy = workers.iter().filter(|w| w.is_some()).count();
                    out.events.push(TraceEvent::CompileEnqueued {
                        tenant: ti as u32,
                        method: mid.index() as u32,
                        depth: (queue.len() + busy) as u32,
                        now,
                    });
                }
            }
        }

        // 7. Sample the compilation-queue depth (and, under chaos, the
        //    fleet stranded-method count).
        let busy = workers.iter().filter(|w| w.is_some()).count();
        out.queue_depth_samples.push((queue.len() + busy) as u32);
        if chaos.is_some() {
            let stranded: u64 = tenants
                .iter_mut()
                .map(|s| s.get_mut().unwrap().vm.stranded_count())
                .sum();
            out.stranded_samples.push(stranded);
        }

        // 8. Advance to the next epoch barrier: at least one slot, or
        //    straight to the next interesting time (rounded up to a slot
        //    multiple) when the fleet is idle.
        if completed == requests.len() {
            break;
        }
        let mut next_event = u64::MAX;
        if next_arrival < requests.len() {
            next_event = next_event.min(requests[next_arrival].arrival);
        }
        for w in workers.iter().flatten() {
            next_event = next_event.min(w.0);
        }
        for slot in tenants.iter_mut() {
            let t = slot.get_mut().unwrap();
            if !t.queue.is_empty() {
                next_event = next_event.min(t.free_at);
            }
        }
        if chaos.is_some() {
            // Fault edges are events (activation must land on its exact
            // barrier), and so are retry-backoff expiries — without them
            // a queue of backed-off jobs plus an otherwise idle fleet
            // would trip the stall assertion below.
            if let Some(b) = plan.next_boundary_after(now) {
                next_event = next_event.min(b);
            }
            for job in &queue {
                if job.not_before > now {
                    next_event = next_event.min(job.not_before);
                }
            }
        }
        assert!(
            next_event != u64::MAX,
            "serve simulation stalled at cycle {now} with {} requests outstanding",
            requests.len() - completed
        );
        now = (now + cfg.slot_cycles).max(next_event.next_multiple_of(cfg.slot_cycles));
    }

    // Chaos cooldown: the last request may complete mid-window, leaving
    // methods stranded and compiles queued. Keep running barrier-only
    // epochs (no requests left to dispatch) until the recovery sweep has
    // drained every stranded method and the compile queue is empty —
    // this is what makes `stranded_final == 0` a guarantee rather than a
    // race against the traffic tail.
    if chaos.is_some() {
        let mut spins = 0u32;
        loop {
            for (ti, slot) in tenants.iter_mut().enumerate() {
                let t = slot.get_mut().unwrap();
                t.vm.reenqueue_stranded();
                for mid in t.vm.take_compile_requests() {
                    let cost = t.vm.compile_cost_estimate(mid);
                    queue.push_back(CompileJob {
                        tenant: ti as u32,
                        method: mid,
                        cost,
                        enqueued_at: now,
                        attempts: 0,
                        not_before: 0,
                    });
                }
            }
            let stranded: u64 = tenants
                .iter_mut()
                .map(|s| s.get_mut().unwrap().vm.stranded_count())
                .sum();
            if stranded == 0 && queue.is_empty() && workers.iter().all(|w| w.is_none()) {
                break;
            }
            spins += 1;
            assert!(
                spins < 10_000,
                "chaos cooldown failed to converge: {stranded} stranded, {} queued",
                queue.len()
            );
            out.epochs += 1;
            out.stranded_samples.push(stranded);
            // Complete finished compiles (same as step 2 of the main
            // loop, cache accounting included).
            for slot in workers.iter_mut() {
                let Some((finish_at, job)) = *slot else {
                    continue;
                };
                if finish_at > now {
                    continue;
                }
                *slot = None;
                let t = tenants[job.tenant as usize].get_mut().unwrap();
                let Some(instrs) = t.vm.compile_pending(job.method) else {
                    continue;
                };
                out.compiles += 1;
                out.events.push(TraceEvent::CompileInstalled {
                    tenant: job.tenant,
                    method: job.method.index() as u32,
                    wait: now - job.enqueued_at,
                    now,
                });
                // Same repatch-refresh rule as step 2 of the main loop.
                cache.remove(job.tenant, job.method.index() as u32);
                for victim in cache.insert(job.tenant, job.method.index() as u32, instrs, now) {
                    let vt = tenants[victim.tenant as usize].get_mut().unwrap();
                    vt.vm.evict_compiled(MethodId::new(victim.method as usize));
                    out.evictions += 1;
                    out.events.push(TraceEvent::CodeCacheEvicted {
                        tenant: victim.tenant,
                        method: victim.method,
                        instrs: victim.instrs as u32,
                        now,
                    });
                }
            }
            let stalled = plan.is_active(FaultKind::CompileStall, now);
            for slot in workers.iter_mut() {
                if slot.is_none() && !stalled {
                    if let Some(i) = queue.iter().position(|j| j.not_before <= now) {
                        let job = queue.remove(i).expect("index from position");
                        *slot = Some((now + job.cost, job));
                    }
                }
            }
            let mut next_event = u64::MAX;
            for w in workers.iter().flatten() {
                next_event = next_event.min(w.0);
            }
            for job in &queue {
                if job.not_before > now {
                    next_event = next_event.min(job.not_before);
                }
            }
            if let Some(b) = plan.next_boundary_after(now) {
                next_event = next_event.min(b);
            }
            now = if next_event == u64::MAX {
                now + cfg.slot_cycles
            } else {
                (now + cfg.slot_cycles).max(next_event.next_multiple_of(cfg.slot_cycles))
            };
        }
    }

    for slot in tenants.iter_mut() {
        let t = slot.get_mut().unwrap();
        let s = t.vm.stats();
        out.deopts += s.deopts;
        out.recompiles += s.recompiles;
        out.loop_deopts += s.loop_deopts;
        out.loop_repatches += s.loop_repatches;
        out.stranded_final += t.vm.stranded_count();
        out.checksum = out
            .checksum
            .wrapping_mul(31)
            .wrapping_add(i64::from(t.checksum.unwrap_or(0)));
    }
    out
}

/// Runs `f(0..n)` with up to `jobs` worker threads, returning results in
/// index order. The work-stealing cursor only affects which host thread
/// computes which index, never the result — `f` must be index-pure.
fn run_each<R: Send>(jobs: usize, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            tenants: 8,
            requests: 40,
            mean_interarrival: 50_000,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn run_each_preserves_order() {
        for jobs in [1, 2, 7] {
            let r = run_each(jobs, 20, |i| i * i);
            assert_eq!(r, (0..20).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn serves_every_request_and_is_job_invariant() {
        let cfg = tiny_cfg();
        let opts = PrefetchOptions::inter_intra();
        let proc = ProcessorConfig::pentium4();
        let a = run(&cfg, &opts, &proc, 1);
        let b = run(&cfg, &opts, &proc, 3);
        assert_eq!(a.latencies.len(), 40);
        assert!(a.latencies.iter().all(|&l| l > 0));
        assert_eq!(a.latencies, b.latencies, "latencies depend on --jobs");
        assert_eq!(a.events, b.events, "event stream depends on --jobs");
        assert_eq!(a.queue_depth_samples, b.queue_depth_samples);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!((a.compiles, a.evictions), (b.compiles, b.evictions));
    }

    #[test]
    fn background_compilation_happens() {
        let cfg = tiny_cfg();
        let out = run(
            &cfg,
            &PrefetchOptions::inter_intra(),
            &ProcessorConfig::pentium4(),
            2,
        );
        assert!(out.compiles > 0, "hot entries must get compiled");
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e, TraceEvent::CompileEnqueued { .. })),
            "compiles must pass through the queue"
        );
    }

    #[test]
    fn tiny_cache_forces_evictions() {
        let cfg = ServeConfig {
            cache_capacity_instrs: 64,
            ..tiny_cfg()
        };
        let out = run(
            &cfg,
            &PrefetchOptions::inter_intra(),
            &ProcessorConfig::pentium4(),
            2,
        );
        assert!(out.evictions > 0, "a 64-instr cache cannot hold the fleet");
    }

    #[test]
    fn checksum_is_mode_invariant() {
        let cfg = tiny_cfg();
        let proc = ProcessorConfig::pentium4();
        let off = run(&cfg, &PrefetchOptions::off(), &proc, 2);
        let ada = run(&cfg, &PrefetchOptions::adaptive(), &proc, 2);
        assert_eq!(
            off.checksum, ada.checksum,
            "prefetching must never change results"
        );
        assert_eq!(off.latencies.len(), ada.latencies.len());
    }

    fn chaos_cfg() -> ServeConfig {
        ServeConfig {
            tenants: 8,
            requests: 60,
            mean_interarrival: 50_000,
            chaos: Some(ChaosConfig::default()),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn chaos_runs_are_job_invariant() {
        let cfg = chaos_cfg();
        let opts = PrefetchOptions::adaptive();
        let proc = ProcessorConfig::pentium4();
        let a = run(&cfg, &opts, &proc, 1);
        let b = run(&cfg, &opts, &proc, 4);
        assert_eq!(a.latencies, b.latencies, "chaos latencies depend on --jobs");
        assert_eq!(a.events, b.events, "chaos event stream depends on --jobs");
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.shed_times, b.shed_times);
        assert_eq!(a.stranded_samples, b.stranded_samples);
        assert_eq!(
            (a.retries, a.rearms, a.faults, a.stranded_final),
            (b.retries, b.rearms, b.faults, b.stranded_final)
        );
        assert_eq!(
            (a.loop_deopts, a.loop_repatches),
            (b.loop_deopts, b.loop_repatches),
            "per-loop counters depend on --jobs"
        );
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn chaos_injects_faults_and_recovers() {
        let cfg = chaos_cfg();
        let proc = ProcessorConfig::pentium4();
        let fault = run(&cfg, &PrefetchOptions::adaptive(), &proc, 2);
        assert!(fault.faults > 0, "the default mix must schedule windows");
        assert!(
            fault.rearms > 0,
            "the default mix must exhaust and re-arm at least one guard"
        );
        assert_eq!(
            fault.stranded_final, 0,
            "recovery sweep must drain every stranded method"
        );
        assert_eq!(
            fault.latencies.len() as u64,
            u64::from(cfg.requests)
                + fault
                    .events
                    .iter()
                    .filter(|e| matches!(
                        e,
                        TraceEvent::FaultInjected {
                            kind: FaultKind::TrafficBurst,
                            ..
                        }
                    ))
                    .count() as u64
                    * u64::from(cfg.chaos.unwrap().burst_requests),
            "every burst request is accounted for"
        );
        // The fault-free twin shares the traffic; recovery must hold.
        let nofault = run(
            &ServeConfig { chaos: None, ..cfg },
            &PrefetchOptions::adaptive(),
            &proc,
            2,
        );
        assert_eq!(fault.checksum, nofault.checksum, "faults changed results");
        let chaos = cfg.chaos.unwrap();
        // Recompute the base traffic and plan exactly as `run` does.
        let base = traffic::generate(&TrafficConfig {
            tenants: cfg.tenants,
            requests: cfg.requests,
            mean_interarrival: cfg.mean_interarrival,
            seed: cfg.seed,
        });
        let horizon = base.last().map_or(cfg.slot_cycles, |r| r.arrival);
        let plan = faults::generate(&chaos, cfg.tenants, horizon, cfg.slot_cycles);
        let report =
            faults::verify_recovery(&plan, &chaos, cfg.slot_cycles, &base, &fault, &nofault)
                .expect("recovery invariants must hold");
        assert_eq!(report.stranded_final, 0);
    }

    #[test]
    fn chaos_exercises_degradation_paths() {
        // A harsher mix so every degradation mechanism demonstrably
        // fires: more storms and bursts, tight admission, long stalls.
        let chaos = ChaosConfig {
            gc_storms: 3,
            traffic_bursts: 3,
            burst_requests: 40,
            admission_max_depth: 2,
            compile_stalls: 2,
            compile_deadline_cycles: 200_000,
            ..ChaosConfig::default()
        };
        // 30k inter-arrival packs the whole run so tightly that the GC
        // storms land before the site-bearing bodies are compiled and
        // invoked; 50k stretches the stream across the storm windows so
        // per-loop staleness demonstrably fires.
        let cfg = ServeConfig {
            tenants: 6,
            requests: 60,
            mean_interarrival: 50_000,
            chaos: Some(chaos),
            ..ServeConfig::default()
        };
        let out = run(
            &cfg,
            &PrefetchOptions::adaptive(),
            &ProcessorConfig::pentium4(),
            2,
        );
        assert!(!out.shed.is_empty(), "bursts past depth 2 must shed");
        assert_eq!(out.shed.len(), out.shed_times.len());
        assert!(out.loop_deopts > 0, "GC storms must stale loop guards");
        assert_eq!(
            out.deopts, 0,
            "invalidation is per-loop, never whole-method"
        );
        assert_eq!(out.stranded_final, 0, "and recovery must still drain");
        assert!(
            out.loop_repatches >= out.loop_deopts,
            "every invalidated loop must re-enter through a repatch"
        );
        assert!(
            out.loop_repatches > 0,
            "invalidated loops must recover through tier-2 re-entry"
        );
        assert_eq!(
            out.stranded_samples.last().copied().unwrap_or(1),
            0,
            "the final sample shows the drained fleet"
        );
    }

    #[test]
    fn fault_free_chaos_config_changes_nothing_but_policy() {
        // chaos = None and chaos with zero windows differ in adapt policy
        // and admission bookkeeping, but a zero-window plan must inject
        // nothing and shed nothing under calm traffic.
        let chaos = ChaosConfig {
            gc_storms: 0,
            compile_stalls: 0,
            cache_squeezes: 0,
            traffic_bursts: 0,
            ..ChaosConfig::default()
        };
        let cfg = ServeConfig {
            chaos: Some(chaos),
            ..tiny_cfg()
        };
        let out = run(
            &cfg,
            &PrefetchOptions::inter_intra(),
            &ProcessorConfig::pentium4(),
            2,
        );
        assert_eq!(out.faults, 0);
        assert_eq!(out.latencies.len(), 40, "no bursts injected");
    }
}
