//! The epoch-barrier serving simulation.
//!
//! Hundreds of tenant VMs — each a full mixed-mode [`spf_vm::Vm`] over its
//! own heap shard — serve an open-loop request stream. Time advances in
//! *epochs*: at each epoch barrier the single-threaded coordinator absorbs
//! arrivals, completes and schedules background compilations, evicts from
//! the shared code cache, and dispatches at most one request per idle
//! tenant; the dispatched requests then execute host-parallel, each worker
//! thread owning its tenant VM exclusively for the duration of the call.
//!
//! Because every shared-state mutation (compile install, cache eviction,
//! queue push) happens at a barrier in canonical tenant/worker order, and
//! the parallel phase touches only per-tenant state, the simulation is a
//! pure function of [`ServeConfig`] — bit-identical across host machines
//! and `jobs` values. That property is what lets CI gate serving latency
//! numbers the same way `bench_diff` gates the matrix.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use spf_core::PrefetchOptions;
use spf_heap::shard_bytes;
use spf_ir::MethodId;
use spf_memsim::ProcessorConfig;
use spf_trace::{NoopSink, TraceEvent};
use spf_vm::{Predecoded, Vm, VmConfig};
use spf_workloads::{all, Size};

use crate::cache::CodeCache;
use crate::traffic::{self, Request, TrafficConfig};

/// Serving-simulation configuration. Everything that influences a
/// simulated number lives here; host parallelism (`jobs`) is passed to
/// [`run`] separately because it must never change the outcome.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of tenant VMs. Tenant `i` runs workload `i % 12` from the
    /// Table 3 registry.
    pub tenants: usize,
    /// Total requests in the open-loop stream.
    pub requests: u32,
    /// Mean request inter-arrival gap in cycles.
    pub mean_interarrival: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Epoch length: barriers land on multiples of this many cycles.
    pub slot_cycles: u64,
    /// Dedicated background compiler workers draining the shared queue.
    pub compile_workers: usize,
    /// Shared code-cache capacity in compiled instructions.
    pub cache_capacity_instrs: u64,
    /// Per-tenant heap = `shard_bytes(workload_heap, heap_shard_div,
    /// heap_floor_bytes)` — tenants get a slice of the standalone heap,
    /// bounded below so small workloads still fit.
    pub heap_shard_div: usize,
    /// Lower bound on a tenant heap shard, in bytes.
    pub heap_floor_bytes: usize,
    /// Workload problem size.
    pub size: Size,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 120,
            requests: 600,
            mean_interarrival: 300_000,
            seed: 0x5EED_5E17,
            slot_cycles: 100_000,
            compile_workers: 2,
            cache_capacity_instrs: 8_192,
            heap_shard_div: 32,
            heap_floor_bytes: 2 << 20,
            size: Size::Tiny,
        }
    }
}

/// What one [`run`] produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Per-request latency (completion − arrival) in cycles, indexed by
    /// request id.
    pub latencies: Vec<u64>,
    /// Compilation-queue depth (waiting + in service) sampled once per
    /// epoch.
    pub queue_depth_samples: Vec<u32>,
    /// Serve-level trace events (enqueues, installs, evictions, request
    /// completions) in simulation order.
    pub events: Vec<TraceEvent>,
    /// Background compilations installed.
    pub compiles: u64,
    /// Code-cache capacity evictions.
    pub evictions: u64,
    /// Adaptive deoptimizations summed over all tenant VMs.
    pub deopts: u64,
    /// Adaptive recompilations summed over all tenant VMs.
    pub recompiles: u64,
    /// Order-sensitive fold of every tenant's workload checksum — equal
    /// across modes and `jobs` values, or the fleet diverged.
    pub checksum: i64,
    /// Number of epoch barriers executed.
    pub epochs: u64,
}

/// One tenant: a VM plus its request queue and serving clock.
struct Tenant {
    vm: Vm,
    entry: MethodId,
    expected: Option<i32>,
    /// First observed checksum; later requests must reproduce it.
    checksum: Option<i32>,
    name: &'static str,
    queue: VecDeque<Request>,
    /// Serving-clock cycle at which the tenant finishes its current
    /// request (idle when `<= now`).
    free_at: u64,
}

/// A background compile request waiting in, or being served by, the
/// shared compilation queue.
#[derive(Clone, Copy)]
struct CompileJob {
    tenant: u32,
    method: MethodId,
    cost: u64,
    enqueued_at: u64,
}

/// Runs the serving simulation: `cfg.requests` requests over
/// `cfg.tenants` VMs under `options`, with `jobs` host worker threads.
///
/// # Panics
///
/// Panics if a tenant workload faults, produces inconsistent checksums
/// across requests, or the simulation stalls (no future event while
/// requests remain — a scheduler bug).
pub fn run(
    cfg: &ServeConfig,
    options: &PrefetchOptions,
    proc: &ProcessorConfig,
    jobs: usize,
) -> ServeOutcome {
    assert!(cfg.tenants > 0, "need at least one tenant");
    assert!(cfg.compile_workers > 0, "need at least one compiler worker");
    assert!(cfg.slot_cycles > 0, "epochs must advance");

    let specs = all();
    // Build and pre-decode each distinct workload once; tenants share the
    // decoded bodies via `Arc` exactly like the benchmark matrix does.
    struct Blueprint {
        pre: Arc<Predecoded>,
        entry: MethodId,
        heap: usize,
        expected: Option<i32>,
        threshold: u32,
        name: &'static str,
    }
    let blueprints: Vec<Blueprint> = specs
        .iter()
        .take(cfg.tenants.min(specs.len()))
        .map(|spec| {
            let built = (spec.build)(cfg.size);
            Blueprint {
                pre: Arc::new(Predecoded::new(built.program)),
                entry: built.entry,
                heap: shard_bytes(built.heap_bytes, cfg.heap_shard_div, cfg.heap_floor_bytes),
                expected: built.expected,
                threshold: built.compile_threshold,
                name: spec.name,
            }
        })
        .collect();

    let mut tenants: Vec<Mutex<Tenant>> = (0..cfg.tenants)
        .map(|i| {
            let b = &blueprints[i % blueprints.len()];
            let vm = Vm::from_predecoded(
                &b.pre,
                VmConfig {
                    heap_bytes: b.heap,
                    prefetch: options.clone(),
                    compile_threshold: b.threshold,
                    async_compile: true,
                    ..VmConfig::default()
                },
                proc.clone(),
                NoopSink,
            );
            Mutex::new(Tenant {
                vm,
                entry: b.entry,
                expected: b.expected,
                checksum: None,
                name: b.name,
                queue: VecDeque::new(),
                free_at: 0,
            })
        })
        .collect();

    let requests = traffic::generate(&TrafficConfig {
        tenants: cfg.tenants,
        requests: cfg.requests,
        mean_interarrival: cfg.mean_interarrival,
        seed: cfg.seed,
    });

    let mut cache = CodeCache::new(cfg.cache_capacity_instrs);
    let mut queue: VecDeque<CompileJob> = VecDeque::new();
    // `workers[w]` holds the job worker `w` finishes at `finish_at`.
    let mut workers: Vec<Option<(u64, CompileJob)>> = vec![None; cfg.compile_workers];

    let mut out = ServeOutcome {
        latencies: vec![0; requests.len()],
        queue_depth_samples: Vec::new(),
        events: Vec::new(),
        compiles: 0,
        evictions: 0,
        deopts: 0,
        recompiles: 0,
        checksum: 0,
        epochs: 0,
    };

    let mut now = 0u64;
    let mut next_arrival = 0usize; // first not-yet-absorbed request
    let mut completed = 0usize;
    while completed < requests.len() {
        out.epochs += 1;

        // 1. Absorb arrivals up to the barrier into per-tenant queues.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            let r = requests[next_arrival];
            tenants[r.tenant as usize]
                .get_mut()
                .unwrap()
                .queue
                .push_back(r);
            next_arrival += 1;
        }

        // 2. Complete finished background compiles, in worker order:
        //    install into the owning VM, charge the shared code cache, and
        //    evict LRU victims from their VMs.
        for slot in workers.iter_mut() {
            let Some((finish_at, job)) = *slot else {
                continue;
            };
            if finish_at > now {
                continue;
            }
            *slot = None;
            let t = tenants[job.tenant as usize].get_mut().unwrap();
            let Some(instrs) = t.vm.compile_pending(job.method) else {
                continue; // request withdrawn (method no longer pending)
            };
            out.compiles += 1;
            out.events.push(TraceEvent::CompileInstalled {
                tenant: job.tenant,
                method: job.method.index() as u32,
                wait: now - job.enqueued_at,
                now,
            });
            for victim in cache.insert(job.tenant, job.method.index() as u32, instrs, now) {
                let vt = tenants[victim.tenant as usize].get_mut().unwrap();
                vt.vm.evict_compiled(MethodId::new(victim.method as usize));
                out.evictions += 1;
                out.events.push(TraceEvent::CodeCacheEvicted {
                    tenant: victim.tenant,
                    method: victim.method,
                    instrs: victim.instrs as u32,
                    now,
                });
            }
        }

        // 3. Hand waiting jobs to idle compiler workers (FIFO).
        for slot in workers.iter_mut() {
            if slot.is_none() {
                if let Some(job) = queue.pop_front() {
                    *slot = Some((now + job.cost, job));
                }
            }
        }

        // 4. Dispatch one queued request per idle tenant, in tenant order.
        let mut dispatched: Vec<(usize, Request)> = Vec::new();
        for (i, slot) in tenants.iter_mut().enumerate() {
            let t = slot.get_mut().unwrap();
            if t.free_at <= now {
                if let Some(r) = t.queue.pop_front() {
                    dispatched.push((i, r));
                }
            }
        }

        // 5. Execute dispatched requests host-parallel. Each closure owns
        //    exactly one tenant VM (distinct indices), so the lock is
        //    uncontended and the work is embarrassingly parallel.
        let results: Vec<(u64, i32, Vec<MethodId>)> = run_each(jobs, dispatched.len(), |k| {
            let (ti, _) = dispatched[k];
            let t = &mut *tenants[ti].lock().unwrap();
            let before = t.vm.stats().cycles;
            let value =
                t.vm.call(t.entry, &[])
                    .unwrap_or_else(|e| panic!("tenant {ti} ({}) faulted: {e}", t.name))
                    .expect("entry returns a checksum")
                    .as_i32();
            let service = t.vm.stats().cycles - before;
            (service, value, t.vm.take_compile_requests())
        });

        // 6. Barrier: fold results back into shared state, in tenant
        //    order.
        for (&(ti, req), (service, value, compile_reqs)) in dispatched.iter().zip(results) {
            let t = tenants[ti].get_mut().unwrap();
            match t.checksum {
                None => {
                    if let Some(exp) = t.expected {
                        assert_eq!(value, exp, "tenant {ti} ({}) checksum", t.name);
                    }
                    t.checksum = Some(value);
                }
                Some(c) => assert_eq!(
                    value, c,
                    "tenant {ti} ({}) diverged between requests",
                    t.name
                ),
            }
            let completion = now + service;
            t.free_at = completion;
            out.latencies[req.id as usize] = completion - req.arrival;
            completed += 1;
            out.events.push(TraceEvent::RequestCompleted {
                tenant: ti as u32,
                request: req.id,
                latency: completion - req.arrival,
                now,
            });
            for mid in compile_reqs {
                let cost = t.vm.compile_cost_estimate(mid);
                queue.push_back(CompileJob {
                    tenant: ti as u32,
                    method: mid,
                    cost,
                    enqueued_at: now,
                });
                let busy = workers.iter().filter(|w| w.is_some()).count();
                out.events.push(TraceEvent::CompileEnqueued {
                    tenant: ti as u32,
                    method: mid.index() as u32,
                    depth: (queue.len() + busy) as u32,
                    now,
                });
            }
            // The tenant just ran: refresh its cache entries' recency and
            // drop entries whose body the VM deopted away on its own.
            cache.touch_tenant(ti as u32, now);
            let dead: Vec<u32> = cache
                .tenant_entries(ti as u32)
                .filter(|e| !t.vm.is_compiled(MethodId::new(e.method as usize)))
                .map(|e| e.method)
                .collect();
            for m in dead {
                cache.remove(ti as u32, m);
            }
        }

        // 7. Sample the compilation-queue depth.
        let busy = workers.iter().filter(|w| w.is_some()).count();
        out.queue_depth_samples.push((queue.len() + busy) as u32);

        // 8. Advance to the next epoch barrier: at least one slot, or
        //    straight to the next interesting time (rounded up to a slot
        //    multiple) when the fleet is idle.
        if completed == requests.len() {
            break;
        }
        let mut next_event = u64::MAX;
        if next_arrival < requests.len() {
            next_event = next_event.min(requests[next_arrival].arrival);
        }
        for w in workers.iter().flatten() {
            next_event = next_event.min(w.0);
        }
        for slot in tenants.iter_mut() {
            let t = slot.get_mut().unwrap();
            if !t.queue.is_empty() {
                next_event = next_event.min(t.free_at);
            }
        }
        assert!(
            next_event != u64::MAX,
            "serve simulation stalled at cycle {now} with {} requests outstanding",
            requests.len() - completed
        );
        now = (now + cfg.slot_cycles).max(next_event.next_multiple_of(cfg.slot_cycles));
    }

    for slot in tenants.iter_mut() {
        let t = slot.get_mut().unwrap();
        let s = t.vm.stats();
        out.deopts += s.deopts;
        out.recompiles += s.recompiles;
        out.checksum = out
            .checksum
            .wrapping_mul(31)
            .wrapping_add(i64::from(t.checksum.unwrap_or(0)));
    }
    out
}

/// Runs `f(0..n)` with up to `jobs` worker threads, returning results in
/// index order. The work-stealing cursor only affects which host thread
/// computes which index, never the result — `f` must be index-pure.
fn run_each<R: Send>(jobs: usize, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            tenants: 8,
            requests: 40,
            mean_interarrival: 50_000,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn run_each_preserves_order() {
        for jobs in [1, 2, 7] {
            let r = run_each(jobs, 20, |i| i * i);
            assert_eq!(r, (0..20).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn serves_every_request_and_is_job_invariant() {
        let cfg = tiny_cfg();
        let opts = PrefetchOptions::inter_intra();
        let proc = ProcessorConfig::pentium4();
        let a = run(&cfg, &opts, &proc, 1);
        let b = run(&cfg, &opts, &proc, 3);
        assert_eq!(a.latencies.len(), 40);
        assert!(a.latencies.iter().all(|&l| l > 0));
        assert_eq!(a.latencies, b.latencies, "latencies depend on --jobs");
        assert_eq!(a.events, b.events, "event stream depends on --jobs");
        assert_eq!(a.queue_depth_samples, b.queue_depth_samples);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!((a.compiles, a.evictions), (b.compiles, b.evictions));
    }

    #[test]
    fn background_compilation_happens() {
        let cfg = tiny_cfg();
        let out = run(
            &cfg,
            &PrefetchOptions::inter_intra(),
            &ProcessorConfig::pentium4(),
            2,
        );
        assert!(out.compiles > 0, "hot entries must get compiled");
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e, TraceEvent::CompileEnqueued { .. })),
            "compiles must pass through the queue"
        );
    }

    #[test]
    fn tiny_cache_forces_evictions() {
        let cfg = ServeConfig {
            cache_capacity_instrs: 64,
            ..tiny_cfg()
        };
        let out = run(
            &cfg,
            &PrefetchOptions::inter_intra(),
            &ProcessorConfig::pentium4(),
            2,
        );
        assert!(out.evictions > 0, "a 64-instr cache cannot hold the fleet");
    }

    #[test]
    fn checksum_is_mode_invariant() {
        let cfg = tiny_cfg();
        let proc = ProcessorConfig::pentium4();
        let off = run(&cfg, &PrefetchOptions::off(), &proc, 2);
        let ada = run(&cfg, &PrefetchOptions::adaptive(), &proc, 2);
        assert_eq!(
            off.checksum, ada.checksum,
            "prefetching must never change results"
        );
        assert_eq!(off.latencies.len(), ada.latencies.len());
    }
}
