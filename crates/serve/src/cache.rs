//! The bounded shared code cache.
//!
//! Production JVMs give all compiler threads one fixed-size code cache;
//! when it fills, cold compiled methods are flushed and their owners fall
//! back to lower tiers until recompiled. This model does the same over the
//! serving fleet: capacity is measured in compiled-body *instructions*
//! (the simulator's notion of code size), eviction is LRU with a
//! deterministic tie-break, and the victim's tenant VM is told via
//! [`spf_vm::Vm::evict_compiled`] by the simulation loop — which also
//! credits the adaptive guards so a capacity eviction never burns the
//! staleness recompile budget.
//!
//! All mutations happen at simulation barriers on one thread, so the
//! cache needs no interior synchronization.

/// One resident compiled body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheEntry {
    /// Owning tenant index.
    pub tenant: u32,
    /// Method index within the tenant's program.
    pub method: u32,
    /// Code size in instructions.
    pub instrs: u64,
    /// Serving-clock cycle of the last touch (insert or tenant activity).
    pub last_touch: u64,
    /// Monotone insertion/touch sequence number — breaks `last_touch`
    /// ties deterministically (many touches happen at the same barrier).
    seq: u64,
}

/// A bounded, LRU-evicting code cache shared by every tenant.
#[derive(Clone, Debug)]
pub struct CodeCache {
    capacity: u64,
    /// Per-tenant residency cap in instructions; 0 disables quotas (the
    /// legacy behavior — one tenant may fill the whole cache).
    quota: u64,
    used: u64,
    seq: u64,
    entries: Vec<CacheEntry>,
}

impl CodeCache {
    /// Creates a cache holding at most `capacity` compiled instructions,
    /// with no per-tenant quota.
    pub fn new(capacity: u64) -> Self {
        CodeCache::with_quota(capacity, 0)
    }

    /// Creates a cache with a per-tenant residency quota layered on the
    /// global capacity (0 disables the quota).
    pub fn with_quota(capacity: u64, quota: u64) -> Self {
        CodeCache {
            capacity,
            quota,
            used: 0,
            seq: 0,
            entries: Vec::new(),
        }
    }

    /// Instructions currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The per-tenant quota (0 = disabled).
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// Instructions currently resident for `tenant`.
    pub fn tenant_used(&self, tenant: u32) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.tenant == tenant)
            .map(|e| e.instrs)
            .sum()
    }

    /// Rebounds the cache to `capacity` mid-run (a chaos squeeze, or the
    /// squeeze ending), evicting LRU entries until the residency fits.
    /// Returns the victims in eviction order; growing evicts nothing.
    pub fn set_capacity(&mut self, capacity: u64) -> Vec<CacheEntry> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.used > self.capacity && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.last_touch, e.seq))
                .map(|(i, _)| i)
                .expect("non-empty");
            let e = self.entries.swap_remove(victim);
            self.used -= e.instrs;
            evicted.push(e);
        }
        evicted
    }

    /// Number of resident bodies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks every resident body of `tenant` as used at `now` (the tenant
    /// just ran a request through its compiled code).
    pub fn touch_tenant(&mut self, tenant: u32, now: u64) {
        for e in &mut self.entries {
            if e.tenant == tenant {
                e.last_touch = now;
                self.seq += 1;
                e.seq = self.seq;
            }
        }
    }

    /// Removes `tenant`'s entry for `method` (the VM dropped the body on
    /// its own, e.g. an adaptive deopt). Returns the freed instructions.
    pub fn remove(&mut self, tenant: u32, method: u32) -> Option<u64> {
        let i = self
            .entries
            .iter()
            .position(|e| e.tenant == tenant && e.method == method)?;
        let e = self.entries.swap_remove(i);
        self.used -= e.instrs;
        Some(e.instrs)
    }

    /// Inserts a freshly compiled body, evicting least-recently-used
    /// entries of *other* bodies until it fits. Returns the victims in
    /// eviction order. A body larger than the whole capacity is admitted
    /// alone (the alternative — refusing to cache — would recompile it
    /// forever).
    pub fn insert(&mut self, tenant: u32, method: u32, instrs: u64, now: u64) -> Vec<CacheEntry> {
        debug_assert!(
            !self
                .entries
                .iter()
                .any(|e| e.tenant == tenant && e.method == method),
            "double insert of t{tenant}/m{method}"
        );
        let mut evicted = Vec::new();
        // Quota pass first: the inserting tenant evicts its *own* LRU
        // bodies until it fits its allowance, so one tenant's spill never
        // costs another tenant code. A body bigger than the whole quota
        // is admitted alone, mirroring the capacity rule below.
        if self.quota > 0 {
            while self.tenant_used(tenant) + instrs > self.quota
                && self.entries.iter().any(|e| e.tenant == tenant)
            {
                let victim = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.tenant == tenant)
                    .min_by_key(|(_, e)| (e.last_touch, e.seq))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let e = self.entries.swap_remove(victim);
                self.used -= e.instrs;
                evicted.push(e);
            }
        }
        while self.used + instrs > self.capacity && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.last_touch, e.seq))
                .map(|(i, _)| i)
                .expect("non-empty");
            let e = self.entries.swap_remove(victim);
            self.used -= e.instrs;
            evicted.push(e);
        }
        self.seq += 1;
        self.entries.push(CacheEntry {
            tenant,
            method,
            instrs,
            last_touch: now,
            seq: self.seq,
        });
        self.used += instrs;
        evicted
    }

    /// The resident bodies of `tenant`, in insertion order.
    pub fn tenant_entries(&self, tenant: u32) -> impl Iterator<Item = &CacheEntry> {
        self.entries.iter().filter(move |e| e.tenant == tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_lru() {
        let mut c = CodeCache::new(100);
        assert!(c.insert(0, 0, 40, 10).is_empty());
        assert!(c.insert(1, 0, 40, 20).is_empty());
        assert_eq!(c.used(), 80);
        // Touch tenant 0 so tenant 1 becomes the LRU victim.
        c.touch_tenant(0, 30);
        let evicted = c.insert(2, 0, 40, 40);
        assert_eq!(evicted.len(), 1);
        assert_eq!((evicted[0].tenant, evicted[0].method), (1, 0));
        assert_eq!(c.used(), 80);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut c = CodeCache::new(100);
        c.insert(0, 0, 50, 5);
        c.insert(1, 0, 50, 5); // same touch time, later seq
        let evicted = c.insert(2, 0, 50, 5);
        assert_eq!(evicted[0].tenant, 0, "earlier seq is the LRU");
    }

    #[test]
    fn oversized_body_is_admitted_alone() {
        let mut c = CodeCache::new(10);
        c.insert(0, 0, 5, 1);
        let evicted = c.insert(1, 0, 99, 2);
        assert_eq!(evicted.len(), 1, "everything else is flushed");
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 99, "over capacity, by design");
        // The next insert flushes the giant.
        let evicted = c.insert(2, 0, 5, 3);
        assert_eq!(evicted[0].instrs, 99);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = CodeCache::new(100);
        c.insert(0, 3, 60, 1);
        assert_eq!(c.remove(0, 3), Some(60));
        assert_eq!(c.remove(0, 3), None);
        assert_eq!(c.used(), 0);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 100);
    }

    #[test]
    fn quota_evicts_own_tenant_first() {
        let mut c = CodeCache::with_quota(1_000, 30);
        assert!(c.insert(0, 0, 20, 1).is_empty());
        assert!(c.insert(1, 0, 20, 2).is_empty());
        // Tenant 0's second body busts its 30-instr quota: its own m0 is
        // the victim, tenant 1 is untouched, global capacity is far off.
        let evicted = c.insert(0, 1, 20, 3);
        assert_eq!(evicted.len(), 1);
        assert_eq!((evicted[0].tenant, evicted[0].method), (0, 0));
        assert_eq!(c.tenant_used(0), 20);
        assert_eq!(c.tenant_used(1), 20);
        assert_eq!(c.quota(), 30);
    }

    #[test]
    fn body_over_quota_is_admitted_alone_for_its_tenant() {
        let mut c = CodeCache::with_quota(1_000, 30);
        c.insert(0, 0, 10, 1);
        let evicted = c.insert(0, 1, 99, 2);
        assert_eq!(evicted.len(), 1, "only the tenant's own body goes");
        assert_eq!(c.tenant_used(0), 99, "over quota, by design");
    }

    #[test]
    fn set_capacity_shrinks_by_lru_and_grows_free() {
        let mut c = CodeCache::new(100);
        c.insert(0, 0, 40, 10);
        c.insert(1, 0, 40, 20);
        let evicted = c.set_capacity(50);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tenant, 0, "oldest touch goes first");
        assert_eq!(c.used(), 40);
        assert_eq!(c.capacity(), 50);
        assert!(c.set_capacity(200).is_empty(), "growing evicts nothing");
        assert_eq!(c.capacity(), 200);
    }

    #[test]
    fn tenant_entries_filters() {
        let mut c = CodeCache::new(100);
        c.insert(0, 1, 10, 1);
        c.insert(1, 1, 10, 1);
        c.insert(0, 2, 10, 1);
        assert_eq!(c.tenant_entries(0).count(), 2);
        assert_eq!(c.tenant_entries(1).count(), 1);
    }
}
