//! A self-contained property-testing harness.
//!
//! The build environment has no access to crates.io, so external
//! frameworks (proptest) are unavailable; this crate provides the two
//! pieces the test suites actually need — a fast deterministic RNG and a
//! case-runner that reports the failing seed — with zero dependencies.
//!
//! ```
//! use spf_testkit::{cases, Rng};
//!
//! cases(64, "addition commutes", |rng| {
//!     let (a, b) = (rng.i32_in(-100, 100), rng.i32_in(-100, 100));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

/// SplitMix64: tiny, fast, and statistically solid for test-case
/// generation. Deterministic across platforms.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates an RNG from `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift; bias is negligible for test-sized bounds.
        ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `i32` in `[lo, hi]` (inclusive).
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        let span = (i64::from(hi) - i64::from(lo) + 1) as u64;
        (i64::from(lo) + self.below(span) as i64) as i32
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.index(hi - lo + 1)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Biased coin: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A vector of `len` values drawn by `gen`, where `len` is uniform in
    /// `[min_len, max_len]`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Runs `case` for `n` seeds. Each case receives a fresh RNG derived from
/// the case index, so a failure message's seed pinpoints the exact inputs:
/// rerun with `Rng::new(seed)` to reproduce.
///
/// # Panics
///
/// Propagates the case's panic, annotated with the failing seed.
pub fn cases(n: u64, name: &str, mut case: impl FnMut(&mut Rng)) {
    for seed in 0..n {
        let mut rng = Rng::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property '{name}' failed at seed {seed} (of {n})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = rng.i32_in(-5, 5);
            assert!((-5..=5).contains(&v));
            let u = rng.u64_in(10, 20);
            assert!((10..=20).contains(&u));
            let f = rng.f64_in(0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn cases_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            cases(4, "always fails", |_| panic!("boom"));
        });
        assert!(err.is_err());
    }

    #[test]
    fn pick_and_vec() {
        let mut rng = Rng::new(3);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
        let v = rng.vec(2, 6, |r| r.bool());
        assert!((2..=6).contains(&v.len()));
    }
}
