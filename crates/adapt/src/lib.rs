//! Adaptive reprofiling: deciding *when* the strides learned by one-shot
//! object inspection stop being trustworthy, and *whether* re-inspecting
//! is still worth it.
//!
//! The paper compiles prefetches from a single inspection at JIT time and
//! trusts them forever. That is sound only while the heap keeps the shape
//! the inspector saw: a sliding compaction can change inter-object
//! distances, and later program phases can walk the same loop over
//! differently laid-out data. This crate holds the policy half of the
//! adaptive loop; the mechanism (per-loop site patching, re-inspection,
//! repatching) lives in `spf-vm`.
//!
//! Staleness belongs to *loops*, not methods: the strides the inspector
//! learned are per-loop facts, so when they rot only that loop's prefetch
//! sites need to go. Every compiled method gets a [`MethodGuard`] holding
//! one [`LoopGuard`] per loop that owns prefetch sites (plus a
//! straight-line pseudo-loop, [`NO_LOOP`]); each loop guard stamps the GC
//! epoch at compile time and counts useless-prefetch issues attributed to
//! the sites it owns:
//!
//! * [`AdaptState::check_stale`] turns those observations into the *set*
//!   of stale loops, each with a [`StaleReason`]: the epoch moved, or the
//!   loop's useless ratio crossed the threshold after enough samples. The
//!   VM then patches only those loops' sites to no-ops — the rest of the
//!   compiled body keeps executing;
//! * a bounded repatch budget and exponential backoff *per loop*
//!   ([`AdaptState::on_patch`] / [`AdaptState::loops_due`]) prevent a
//!   loop whose heap churns every run from oscillating between
//!   invalidation and repatch forever — once a loop's budget is spent its
//!   guard disarms and the loop keeps running unprefetched.
//!
//! The state machine is deterministic and lives entirely on simulated
//! counters (GC epochs, invocation counts, issue counts), so adaptive
//! runs are bit-identical across hosts and across traced/untraced
//! execution.

use std::collections::{BTreeMap, HashMap};

use spf_trace::StaleReason;

/// The pseudo-loop header owning prefetch sites that sit outside every
/// loop (straight-line code).
pub const NO_LOOP: u32 = u32::MAX;

/// Tuning knobs of the adaptive-reprofiling policy.
#[derive(Clone, Copy, Debug)]
pub struct AdaptConfig {
    /// A loop is stale when `useless / issued` exceeds this fraction
    /// (with at least [`AdaptConfig::min_samples`] issues observed).
    pub useless_threshold: f64,
    /// Minimum prefetch issues before the useless ratio is trusted.
    pub min_samples: u64,
    /// Total adaptive repatches allowed per loop; once spent, that loop's
    /// guard disarms and its current (patched or live) state is kept.
    pub max_recompiles: u32,
    /// Invocations to wait before the first repatch after an
    /// invalidation; doubles with every repatch already used (exponential
    /// backoff).
    pub backoff_base: u64,
    /// Re-arm horizon in GC epochs; 0 disables re-arming (disarmed loop
    /// guards stay disarmed forever). When non-zero:
    ///
    /// * a loop guard whose budget disarmed it regains **one** repatch
    ///   credit once the GC epoch has advanced this far past the disarm
    ///   point, and resumes staleness checking;
    /// * an invalidated loop's invocation backoff is waived once the
    ///   epoch has advanced this far past the invalidation — the heap
    ///   churned on, so the verdict that triggered the backoff is moot
    ///   and the loop may be repatched early.
    pub rearm_stable_epochs: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 64,
            max_recompiles: 4,
            backoff_base: 2,
            rearm_stable_epochs: 0,
        }
    }
}

/// Per-site issue counters, keyed by the site's (block, index) position —
/// stable across repatches of *other* loops (patching a loop only
/// rewrites that loop's own blocks).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteCounters {
    /// Prefetches issued from this site in the current loop generation.
    pub issued: u64,
    /// Issues that found the line already resident (useless work).
    pub useless: u64,
}

/// The prefetch sites one loop owns in a freshly installed body: the
/// loop's header block index ([`NO_LOOP`] for straight-line sites) and
/// the (block, index) positions of its `Prefetch`/`SpecLoad`
/// instructions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopSites {
    /// Innermost-loop header block index, or [`NO_LOOP`].
    pub header: u32,
    /// Site positions owned by this loop.
    pub sites: Vec<(u32, u32)>,
}

/// One stale-loop verdict from [`AdaptState::check_stale`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StaleLoop {
    /// The stale loop's header block index (or [`NO_LOOP`]).
    pub header: u32,
    /// The loop generation that went stale.
    pub generation: u32,
    /// Why.
    pub reason: StaleReason,
}

/// Guard state of one loop of a compiled method.
#[derive(Clone, Debug)]
pub struct LoopGuard {
    /// GC epoch stamped when this loop's sites were last (re)emitted.
    pub epoch_at_compile: u64,
    /// Loop generation: 0 when the method body it was born in was
    /// installed, +1 per repatch (and per full-body recompile, which
    /// re-inspects this loop too).
    pub generation: u32,
    /// Per-site counters for the current loop generation.
    pub sites: HashMap<(u32, u32), SiteCounters>,
    /// Aggregate issues across the loop's sites (current generation).
    pub issued: u64,
    /// Aggregate useless issues (current generation).
    pub useless: u64,
    /// Invocation count before which a repatch is not allowed (backoff).
    resume_at: u64,
    /// Whether the loop is invalidated (sites patched to no-ops) and not
    /// yet repatched — "stranded" if this persists.
    stale: bool,
    /// GC epoch at the last invalidation (backoff re-arm clock).
    stale_epoch: u64,
    /// Whether the guard disarmed after spending the repatch budget.
    disabled: bool,
    /// GC epoch at which the budget disarmed the guard (re-arm clock).
    disabled_at_epoch: u64,
    /// Repatches *credited back* because a code-cache eviction forced a
    /// full-body recompile: granted when that recompile lands, so an
    /// eviction never followed by a recompile earns nothing.
    cache_evictions: u32,
    /// Budget credits granted by re-arming (one per re-arm cycle).
    rearm_credits: u32,
}

impl LoopGuard {
    fn fresh(epoch: u64) -> Self {
        LoopGuard {
            epoch_at_compile: epoch,
            generation: 0,
            sites: HashMap::new(),
            issued: 0,
            useless: 0,
            resume_at: 0,
            stale: false,
            stale_epoch: 0,
            disabled: false,
            disabled_at_epoch: 0,
            cache_evictions: 0,
            rearm_credits: 0,
        }
    }

    /// Whether the loop is invalidated and not yet repatched.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Whether the guard is currently disarmed (budget spent and not yet
    /// re-armed).
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Eviction-forced recompiles credited back against the budget.
    pub fn cache_evictions(&self) -> u32 {
        self.cache_evictions
    }

    /// Budget credits granted by re-arming so far.
    pub fn rearm_credits(&self) -> u32 {
        self.rearm_credits
    }

    /// The useless-prefetch ratio of the current generation (0 when
    /// nothing was issued).
    pub fn useless_ratio(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useless as f64 / self.issued as f64
        }
    }
}

/// Guard state of one compiled method: an install counter plus one
/// [`LoopGuard`] per site-owning loop.
#[derive(Clone, Debug)]
pub struct MethodGuard {
    /// Install generation of the method body: 0 for the first JIT, +1
    /// per installed body (full recompile, per-loop patch, or repatch).
    /// Keys the compiled-generation history `spf-lint` walks.
    pub generation: u32,
    /// Per-loop guards, keyed by loop header ([`NO_LOOP`] last). Ordered
    /// so every walk over loops is deterministic.
    loops: BTreeMap<u32, LoopGuard>,
    /// Site position → owning loop header, for issue attribution.
    site_owner: HashMap<(u32, u32), u32>,
    /// Whether the method currently has an installed compiled body.
    compiled: bool,
    /// Set by [`AdaptState::on_evicted`], consumed by the next
    /// [`AdaptState::on_compile`]: the recompile in flight was forced by
    /// a cache eviction and must not burn the loops' staleness budgets.
    pending_evict: bool,
}

impl MethodGuard {
    /// Whether the method currently has an installed compiled body.
    pub fn is_compiled(&self) -> bool {
        self.compiled
    }

    /// The guard of the loop with header block `header`, if that loop
    /// owns prefetch sites.
    pub fn loop_guard(&self, header: u32) -> Option<&LoopGuard> {
        self.loops.get(&header)
    }

    /// All loop guards, ascending by header ([`NO_LOOP`] last).
    pub fn loops(&self) -> impl Iterator<Item = (u32, &LoopGuard)> {
        self.loops.iter().map(|(&h, g)| (h, g))
    }

    /// Headers of the loops currently invalidated and not repatched,
    /// ascending.
    pub fn stale_loops(&self) -> Vec<u32> {
        self.loops
            .iter()
            .filter(|(_, l)| l.stale)
            .map(|(&h, _)| h)
            .collect()
    }

    /// The owning loop header of a site position, if registered.
    pub fn site_owner(&self, site: (u32, u32)) -> Option<u32> {
        self.site_owner.get(&site).copied()
    }
}

/// Guard state for every method of one VM, plus the adaptive counters the
/// experiment report exposes.
#[derive(Clone, Debug, Default)]
pub struct AdaptState {
    cfg: AdaptConfig,
    guards: HashMap<usize, MethodGuard>,
    /// Total re-arms granted (budget credits from stable epochs).
    rearms: u64,
    /// `(method, loop generation)` of re-arms since the last
    /// [`AdaptState::take_rearmed`] drain, in re-arm order.
    rearmed_log: Vec<(u32, u32)>,
}

impl AdaptState {
    /// Creates guard state with the given policy.
    pub fn new(cfg: AdaptConfig) -> Self {
        AdaptState {
            cfg,
            guards: HashMap::new(),
            rearms: 0,
            rearmed_log: Vec::new(),
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The guard of `method`, if it was ever compiled under guards.
    pub fn guard(&self, method: usize) -> Option<&MethodGuard> {
        self.guards.get(&method)
    }

    /// Records a full (re)compilation of `method` at GC epoch `epoch`
    /// with the given per-loop site ownership, and returns the new
    /// install generation: 0 for the first compile, +1 per install.
    ///
    /// Loop guards carry their budget state (generation, eviction and
    /// re-arm credits, disarm state) across full recompiles keyed by
    /// header — a full recompile re-inspects every loop, so each
    /// surviving loop's generation bumps — while counters and epoch
    /// stamps reset. When the recompile was forced by a cache eviction
    /// ([`AdaptState::on_evicted`]), each carried loop is credited one
    /// eviction repatch so capacity churn does not burn staleness budget.
    pub fn on_compile(&mut self, method: usize, epoch: u64, loops: &[LoopSites]) -> u32 {
        match self.guards.get_mut(&method) {
            // A guard already exists, so a compile already happened: this
            // install is a recompile of the whole body.
            Some(g) => {
                g.generation += 1;
                g.compiled = true;
                let credit = g.pending_evict;
                g.pending_evict = false;
                let old = std::mem::take(&mut g.loops);
                g.site_owner.clear();
                for ls in loops {
                    let mut lg = match old.get(&ls.header) {
                        Some(prev) => {
                            let mut l = prev.clone();
                            l.generation += 1;
                            l.epoch_at_compile = epoch;
                            l.sites.clear();
                            l.issued = 0;
                            l.useless = 0;
                            l.stale = false;
                            l.resume_at = 0;
                            if credit {
                                // This recompile was forced by a cache
                                // eviction, not by a staleness verdict:
                                // credit it back now — and only now, so an
                                // eviction whose forced recompile never
                                // happens cannot refund the budget.
                                l.cache_evictions += 1;
                            }
                            l
                        }
                        None => LoopGuard::fresh(epoch),
                    };
                    for &s in &ls.sites {
                        lg.sites.insert(s, SiteCounters::default());
                        g.site_owner.insert(s, ls.header);
                    }
                    g.loops.insert(ls.header, lg);
                }
                g.generation
            }
            None => {
                let mut loops_map = BTreeMap::new();
                let mut site_owner = HashMap::new();
                for ls in loops {
                    let mut lg = LoopGuard::fresh(epoch);
                    for &s in &ls.sites {
                        lg.sites.insert(s, SiteCounters::default());
                        site_owner.insert(s, ls.header);
                    }
                    loops_map.insert(ls.header, lg);
                }
                self.guards.insert(
                    method,
                    MethodGuard {
                        generation: 0,
                        loops: loops_map,
                        site_owner,
                        compiled: true,
                        pending_evict: false,
                    },
                );
                0
            }
        }
    }

    /// Records one prefetch issue from `method` at site `(block, index)`;
    /// `useless` means the line was already resident when issued. The
    /// issue is attributed to the loop that owns the site.
    pub fn record_issue(&mut self, method: usize, site: (u32, u32), useless: bool) {
        if let Some(g) = self.guards.get_mut(&method) {
            let Some(&owner) = g.site_owner.get(&site) else {
                return;
            };
            if let Some(l) = g.loops.get_mut(&owner) {
                let s = l.sites.entry(site).or_default();
                s.issued += 1;
                s.useless += u64::from(useless);
                l.issued += 1;
                l.useless += u64::from(useless);
            }
        }
    }

    /// Evaluates the loop guards of a compiled `method` against the
    /// current GC `epoch`. Returns the stale loops (ascending by header),
    /// each with its verdict; empty when the method is fresh, unguarded,
    /// uncompiled, or every triggered guard disarmed. Spending a loop's
    /// last budget slot disarms that loop's guard instead of reporting it
    /// stale.
    pub fn check_stale(&mut self, method: usize, epoch: u64) -> Vec<StaleLoop> {
        let cfg = self.cfg;
        let Some(g) = self.guards.get_mut(&method) else {
            return Vec::new();
        };
        if !g.compiled {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (&header, l) in &mut g.loops {
            if l.stale {
                continue; // already invalidated, waiting for repatch
            }
            if l.disabled {
                if cfg.rearm_stable_epochs == 0
                    || epoch.saturating_sub(l.disabled_at_epoch) < cfg.rearm_stable_epochs
                {
                    continue;
                }
                // Re-arm: the heap has churned through the stability
                // horizon since the disarm, so the budget verdict is stale
                // too. Grant exactly one credit and resume watching; if
                // the next verdict exhausts the budget again the guard
                // disarms at the *new* epoch, which damps oscillation to
                // one repatch per horizon.
                l.disabled = false;
                l.rearm_credits += 1;
                self.rearms += 1;
                self.rearmed_log.push((method as u32, l.generation));
            }
            let reason = if l.epoch_at_compile != epoch {
                StaleReason::GcMoved
            } else if l.issued >= cfg.min_samples && l.useless_ratio() > cfg.useless_threshold {
                StaleReason::UselessRatio
            } else {
                continue;
            };
            let credits = u64::from(l.cache_evictions) + u64::from(l.rearm_credits);
            if u64::from(l.generation).saturating_sub(credits) >= u64::from(cfg.max_recompiles) {
                // Budget spent: keep the loop as it stands and stop
                // watching it. Repatches forced by code-cache eviction
                // are credited back — they were capacity decisions, not
                // adaptive staleness ones — and so is each re-arm credit.
                l.disabled = true;
                l.disabled_at_epoch = epoch;
                continue;
            }
            out.push(StaleLoop {
                header,
                generation: l.generation,
                reason,
            });
        }
        out
    }

    /// Records that the VM patched the given stale loops' prefetch sites
    /// to no-ops at `invocations` total invocations and GC `epoch`: each
    /// loop's repatch is gated behind an exponentially growing backoff
    /// window (waivable by epoch-based re-arm, see
    /// [`AdaptConfig::rearm_stable_epochs`]), its counters reset, and its
    /// sites drop out of issue attribution. Returns the method's new
    /// install generation (the patched body is a new installed body).
    pub fn on_patch(
        &mut self,
        method: usize,
        headers: &[u32],
        invocations: u64,
        epoch: u64,
    ) -> u32 {
        let cfg = self.cfg;
        let Some(g) = self.guards.get_mut(&method) else {
            return 0;
        };
        for &header in headers {
            if let Some(l) = g.loops.get_mut(&header) {
                l.stale = true;
                l.stale_epoch = epoch;
                let backoff = cfg.backoff_base << l.generation.min(32);
                l.resume_at = invocations + backoff;
                l.sites.clear();
                l.issued = 0;
                l.useless = 0;
            }
            g.site_owner.retain(|_, &mut h| h != header);
        }
        g.generation += 1;
        g.generation
    }

    /// The invalidated loops of `method` whose backoff has been served at
    /// `invocations` total invocations (or waived by
    /// [`AdaptConfig::rearm_stable_epochs`] stable GC epochs since the
    /// invalidation), ascending by header. Empty for unguarded or
    /// uncompiled methods.
    pub fn loops_due(&self, method: usize, invocations: u64, epoch: u64) -> Vec<u32> {
        let Some(g) = self.guards.get(&method) else {
            return Vec::new();
        };
        if !g.compiled {
            return Vec::new();
        }
        g.loops
            .iter()
            .filter(|(_, l)| {
                l.stale
                    && (invocations >= l.resume_at
                        || (self.cfg.rearm_stable_epochs > 0
                            && epoch.saturating_sub(l.stale_epoch) >= self.cfg.rearm_stable_epochs))
            })
            .map(|(&h, _)| h)
            .collect()
    }

    /// Records a repatch of one loop of `method` at GC `epoch`: the
    /// loop's new sites are registered for attribution and its generation
    /// bumps (burning one budget slot). Returns the loop's new
    /// generation. The caller bumps the method install generation once
    /// per repatched *body* via [`AdaptState::on_repatch_install`].
    pub fn on_repatch(
        &mut self,
        method: usize,
        header: u32,
        epoch: u64,
        sites: &[(u32, u32)],
    ) -> u32 {
        let Some(g) = self.guards.get_mut(&method) else {
            return 0;
        };
        let Some(l) = g.loops.get_mut(&header) else {
            return 0;
        };
        l.generation += 1;
        l.epoch_at_compile = epoch;
        l.stale = false;
        l.resume_at = 0;
        l.sites.clear();
        l.issued = 0;
        l.useless = 0;
        for &s in sites {
            l.sites.insert(s, SiteCounters::default());
            g.site_owner.insert(s, header);
        }
        l.generation
    }

    /// Bumps and returns the method install generation after a repatch
    /// installed a new body (one bump per body, however many loops it
    /// repatched).
    pub fn on_repatch_install(&mut self, method: usize) -> u32 {
        match self.guards.get_mut(&method) {
            Some(g) => {
                g.generation += 1;
                g.generation
            }
            None => 0,
        }
    }

    /// Records that the shared code cache evicted `method`'s compiled
    /// body. The method falls back to the interpreter (no body to guard)
    /// and the *next* full recompile is marked eviction-forced: each
    /// loop's credit is granted by [`AdaptState::on_compile`] when that
    /// recompile actually lands, never on the eviction itself — repeated
    /// evictions of the same method across generations each refund at
    /// most the one recompile they forced. No backoff applies — the body
    /// was healthy, just cold.
    pub fn on_evicted(&mut self, method: usize) {
        if let Some(g) = self.guards.get_mut(&method) {
            if g.compiled {
                g.compiled = false;
                g.pending_evict = true;
            }
        }
    }

    /// Total budget re-arms granted so far.
    pub fn rearms(&self) -> u64 {
        self.rearms
    }

    /// Drains the `(method, loop generation)` re-arm log accumulated
    /// since the last drain, in re-arm order.
    pub fn take_rearmed(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.rearmed_log)
    }

    /// Number of loops currently stranded: invalidated by an adaptive
    /// staleness verdict and not repatched since (their prefetch sites
    /// are patched out). This is the same condition `spf-trace-report
    /// deopt-summary` counts from the event stream (invalidations >
    /// repatches per loop), read directly off the guard state.
    pub fn stranded(&self) -> u64 {
        self.guards
            .values()
            .flat_map(|g| g.loops.values())
            .filter(|l| l.stale)
            .count() as u64
    }

    /// The ids of methods with at least one stranded loop, ascending
    /// (sorted so callers that walk them stay deterministic — the backing
    /// map has no stable order).
    pub fn stranded_methods(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .guards
            .iter()
            .filter(|(_, g)| g.loops.values().any(|l| l.stale))
            .map(|(&m, _)| m)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_loop(header: u32) -> Vec<LoopSites> {
        vec![LoopSites {
            header,
            sites: vec![(header, 1)],
        }]
    }

    fn two_loops() -> Vec<LoopSites> {
        vec![
            LoopSites {
                header: 2,
                sites: vec![(2, 1), (3, 0)],
            },
            LoopSites {
                header: 6,
                sites: vec![(6, 2)],
            },
        ]
    }

    fn headers(stale: &[StaleLoop]) -> Vec<u32> {
        stale.iter().map(|s| s.header).collect()
    }

    #[test]
    fn first_compile_is_generation_zero() {
        let mut a = AdaptState::new(AdaptConfig::default());
        assert_eq!(a.on_compile(3, 0, &one_loop(4)), 0);
        let g = a.guard(3).unwrap();
        assert_eq!(g.generation, 0);
        assert_eq!(g.loop_guard(4).unwrap().generation, 0);
        assert_eq!(g.site_owner((4, 1)), Some(4));
    }

    #[test]
    fn epoch_bump_marks_every_sited_loop_stale_once() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0, &two_loops());
        assert!(a.check_stale(0, 0).is_empty(), "same epoch is fresh");
        let stale = a.check_stale(0, 1);
        assert_eq!(headers(&stale), vec![2, 6]);
        assert!(stale.iter().all(|s| s.reason == StaleReason::GcMoved));
        a.on_patch(0, &[2, 6], 10, 1);
        assert!(
            a.check_stale(0, 1).is_empty(),
            "invalidated loops are not re-reported"
        );
        assert_eq!(a.on_repatch(0, 2, 1, &[(2, 1)]), 1);
        a.on_repatch_install(0);
        assert!(
            a.check_stale(0, 1).is_empty(),
            "repatched loop is fresh at the new epoch; loop 6 still stale"
        );
        assert_eq!(a.guard(0).unwrap().stale_loops(), vec![6]);
    }

    #[test]
    fn useless_ratio_is_attributed_to_the_owning_loop() {
        let cfg = AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 4,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &two_loops());
        // All useless traffic lands on loop 2's site (2, 1).
        a.record_issue(0, (2, 1), true);
        a.record_issue(0, (2, 1), true);
        assert!(a.check_stale(0, 0).is_empty(), "below min_samples");
        a.record_issue(0, (2, 1), true);
        a.record_issue(0, (2, 1), false);
        // Loop 6 stays healthy even while loop 2 crosses the threshold.
        a.record_issue(0, (6, 2), false);
        let stale = a.check_stale(0, 0);
        assert_eq!(headers(&stale), vec![2]);
        assert_eq!(stale[0].reason, StaleReason::UselessRatio);
        let l = a.guard(0).unwrap().loop_guard(2).unwrap();
        assert_eq!(l.sites[&(2, 1)].issued, 4);
        assert_eq!(l.sites[&(2, 1)].useless, 3);
    }

    #[test]
    fn exactly_half_useless_is_not_stale() {
        let cfg = AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 2,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(0));
        a.record_issue(0, (0, 1), true);
        a.record_issue(0, (0, 1), false);
        assert!(a.check_stale(0, 0).is_empty(), "threshold is strict");
    }

    #[test]
    fn unowned_site_issues_are_ignored() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0, &one_loop(2));
        a.record_issue(0, (9, 9), true);
        assert_eq!(a.guard(0).unwrap().loop_guard(2).unwrap().issued, 0);
    }

    #[test]
    fn backoff_grows_exponentially_per_loop() {
        let cfg = AdaptConfig {
            backoff_base: 2,
            max_recompiles: 8,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(4));
        a.on_patch(0, &[4], 100, 1);
        assert!(a.loops_due(0, 101, 1).is_empty());
        assert_eq!(a.loops_due(0, 102, 1), vec![4], "gen 0 waits backoff_base");
        a.on_repatch(0, 4, 1, &[(4, 1)]);
        a.on_repatch_install(0);
        a.on_patch(0, &[4], 200, 2);
        assert!(a.loops_due(0, 203, 2).is_empty());
        assert_eq!(
            a.loops_due(0, 204, 2),
            vec![4],
            "gen 1 waits 2*backoff_base"
        );
    }

    #[test]
    fn budget_disarms_loop_guards_instead_of_looping() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        let mut epoch = 0;
        a.on_compile(0, epoch, &one_loop(4));
        for expect_gen in 1..=2 {
            epoch += 1;
            assert_eq!(headers(&a.check_stale(0, epoch)), vec![4]);
            a.on_patch(0, &[4], 0, epoch);
            assert_eq!(a.loops_due(0, 0, epoch), vec![4]);
            assert_eq!(a.on_repatch(0, 4, epoch, &[(4, 1)]), expect_gen);
            a.on_repatch_install(0);
        }
        // Budget (2 repatches) spent: a further epoch bump disarms.
        epoch += 1;
        assert!(a.check_stale(0, epoch).is_empty());
        assert!(a.check_stale(0, epoch + 1).is_empty(), "stays disarmed");
        let g = a.guard(0).unwrap();
        assert_eq!(g.loop_guard(4).unwrap().generation, 2);
        assert!(g.loop_guard(4).unwrap().is_disabled());
        assert!(g.is_compiled(), "the body never left");
    }

    #[test]
    fn budgets_are_independent_across_loops() {
        let cfg = AdaptConfig {
            max_recompiles: 1,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &two_loops());
        // Burn loop 2's budget; loop 6 stays untouched (its guard also
        // fires each epoch but is repatched along with loop 2 here).
        assert_eq!(headers(&a.check_stale(0, 1)), vec![2, 6]);
        a.on_patch(0, &[2], 0, 1);
        a.on_repatch(0, 2, 1, &[(2, 1)]);
        a.on_repatch_install(0);
        // Epoch 2: loop 2's budget (1 repatch) is spent and disarms; loop
        // 6 — never repatched — still reports.
        let stale = a.check_stale(0, 2);
        assert_eq!(headers(&stale), vec![6]);
        assert!(a.guard(0).unwrap().loop_guard(2).unwrap().is_disabled());
        assert!(!a.guard(0).unwrap().loop_guard(6).unwrap().is_disabled());
    }

    #[test]
    fn eviction_recompiles_do_not_burn_the_staleness_budget() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(4));
        // Two cache evictions, each followed by the forced recompile.
        for _ in 0..2 {
            a.on_evicted(0);
            assert!(a.check_stale(0, 0).is_empty(), "no body to guard");
            a.on_compile(0, 0, &one_loop(4));
        }
        let l = a.guard(0).unwrap().loop_guard(4).unwrap();
        assert_eq!(l.generation, 2);
        assert_eq!(l.cache_evictions(), 2);
        // The full adaptive budget (2) is still available: two GC-staleness
        // repatches fire before the guard disarms.
        let mut epoch = 0;
        for expect_gen in 3..=4 {
            epoch += 1;
            assert_eq!(headers(&a.check_stale(0, epoch)), vec![4]);
            a.on_patch(0, &[4], 0, epoch);
            assert_eq!(a.on_repatch(0, 4, epoch, &[(4, 1)]), expect_gen);
            a.on_repatch_install(0);
        }
        epoch += 1;
        assert!(a.check_stale(0, epoch).is_empty(), "budget now spent");
    }

    #[test]
    fn evicted_method_is_not_checked_until_recompiled() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(3, 0, &one_loop(2));
        a.on_evicted(3);
        assert!(
            a.check_stale(3, 99).is_empty(),
            "evicted body cannot be stale: there is nothing installed"
        );
        assert!(a.loops_due(3, 1_000, 99).is_empty());
        a.on_compile(3, 99, &one_loop(2));
        assert_eq!(headers(&a.check_stale(3, 100)), vec![2]);
    }

    #[test]
    fn eviction_of_unguarded_method_is_a_noop() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_evicted(11);
        assert!(a.guard(11).is_none());
    }

    #[test]
    fn unguarded_methods_are_never_stale() {
        let mut a = AdaptState::new(AdaptConfig::default());
        assert!(a.check_stale(7, 99).is_empty());
        assert!(a.loops_due(7, 0, 0).is_empty());
    }

    #[test]
    fn methods_without_sites_never_go_stale() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0, &[]);
        assert!(
            a.check_stale(0, 50).is_empty(),
            "no sites, nothing to invalidate"
        );
        assert_eq!(a.guard(0).unwrap().generation, 0);
    }

    #[test]
    fn repeated_evictions_credit_only_landed_recompiles() {
        // Regression (kept from the method-guard era): `on_evicted` used
        // to grant the budget credit immediately, so a body evicted twice
        // before its recompile landed banked credits it never earned. The
        // credit must be counted when the eviction-forced recompile
        // actually installs.
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0, &one_loop(4));
        a.on_evicted(0);
        a.on_evicted(0); // churn: evicted again before any recompile
        assert_eq!(
            a.guard(0).unwrap().loop_guard(4).unwrap().cache_evictions(),
            0
        );
        a.on_compile(0, 0, &one_loop(4));
        assert_eq!(
            a.guard(0).unwrap().loop_guard(4).unwrap().cache_evictions(),
            1,
            "two raw evictions, one forced recompile, one credit"
        );
        a.on_evicted(0);
        assert_eq!(
            a.guard(0).unwrap().loop_guard(4).unwrap().cache_evictions(),
            1
        );
        a.on_compile(0, 0, &one_loop(4));
        assert_eq!(
            a.guard(0).unwrap().loop_guard(4).unwrap().cache_evictions(),
            2
        );
    }

    #[test]
    fn staleness_repatch_consumes_no_evict_credit() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0, &one_loop(4));
        a.on_patch(0, &[4], 10, 1);
        a.on_repatch(0, 4, 1, &[(4, 1)]);
        a.on_repatch_install(0);
        assert_eq!(
            a.guard(0).unwrap().loop_guard(4).unwrap().cache_evictions(),
            0
        );
    }

    #[test]
    fn budget_rearm_grants_one_credit_per_stable_window() {
        let cfg = AdaptConfig {
            max_recompiles: 1,
            rearm_stable_epochs: 3,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(4));
        // Spend the 1-repatch budget.
        assert_eq!(headers(&a.check_stale(0, 1)), vec![4]);
        a.on_patch(0, &[4], 0, 1);
        a.on_repatch(0, 4, 1, &[(4, 1)]);
        a.on_repatch_install(0);
        // Budget spent: the next epoch bump disarms instead of firing.
        assert!(a.check_stale(0, 2).is_empty());
        assert!(a.guard(0).unwrap().loop_guard(4).unwrap().is_disabled());
        // Still disarmed while fewer than `rearm_stable_epochs` have
        // passed since the disarm point.
        assert!(a.check_stale(0, 3).is_empty());
        assert!(a.check_stale(0, 4).is_empty());
        // Epoch 5 = disarm(2) + 3: re-arms with one credit and the
        // staleness verdict fires again in the same call.
        assert_eq!(headers(&a.check_stale(0, 5)), vec![4]);
        let l = a.guard(0).unwrap().loop_guard(4).unwrap();
        assert!(!l.is_disabled());
        assert_eq!(l.rearm_credits(), 1);
        assert_eq!(a.rearms(), 1);
        assert_eq!(a.take_rearmed(), vec![(0, 1)]);
        assert_eq!(a.take_rearmed(), vec![], "drain is destructive");
        // The credit funds exactly one more repatch, then the guard
        // disarms again and a second stable window re-arms it again.
        a.on_patch(0, &[4], 0, 5);
        a.on_repatch(0, 4, 5, &[(4, 1)]);
        a.on_repatch_install(0);
        assert!(a.check_stale(0, 6).is_empty());
        assert!(a.guard(0).unwrap().loop_guard(4).unwrap().is_disabled());
        assert_eq!(headers(&a.check_stale(0, 9)), vec![4]);
        assert_eq!(a.rearms(), 2);
    }

    #[test]
    fn rearm_disabled_by_default_keeps_legacy_disarm_forever() {
        let cfg = AdaptConfig {
            max_recompiles: 1,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(4));
        assert_eq!(headers(&a.check_stale(0, 1)), vec![4]);
        a.on_patch(0, &[4], 0, 1);
        a.on_repatch(0, 4, 1, &[(4, 1)]);
        a.on_repatch_install(0);
        assert!(a.check_stale(0, 2).is_empty());
        assert!(a.check_stale(0, 1_000_000).is_empty(), "no re-arm at 0");
        assert_eq!(a.rearms(), 0);
    }

    #[test]
    fn stable_epochs_waive_invalidation_backoff() {
        let cfg = AdaptConfig {
            backoff_base: 1_000,
            rearm_stable_epochs: 2,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(4));
        a.on_patch(0, &[4], 100, 5);
        assert!(a.loops_due(0, 101, 5).is_empty(), "inside backoff");
        assert!(a.loops_due(0, 101, 6).is_empty(), "one epoch is not enough");
        assert_eq!(
            a.loops_due(0, 101, 7),
            vec![4],
            "two stable epochs waive the invocation backoff"
        );
        assert_eq!(a.loops_due(0, 2_000, 5), vec![4], "backoff served normally");
    }

    #[test]
    fn stranded_counts_stale_loops_and_sorts_methods() {
        let mut a = AdaptState::new(AdaptConfig::default());
        for m in [9usize, 2, 5] {
            a.on_compile(m, 0, &one_loop(3));
            a.on_patch(m, &[3], 0, 1);
        }
        assert_eq!(a.stranded(), 3);
        assert_eq!(a.stranded_methods(), vec![2, 5, 9]);
        a.on_repatch(5, 3, 1, &[(3, 1)]);
        a.on_repatch_install(5);
        assert_eq!(a.stranded(), 2);
        assert_eq!(a.stranded_methods(), vec![2, 9]);
        // Two stale loops of one method count twice but list the method
        // once.
        a.on_compile(7, 0, &two_loops());
        a.on_patch(7, &[2, 6], 0, 1);
        assert_eq!(a.stranded(), 4);
        assert_eq!(a.stranded_methods(), vec![2, 7, 9]);
        // An eviction alone does not strand: nothing was invalidated.
        a.on_compile(8, 1, &one_loop(0));
        a.on_evicted(8);
        assert_eq!(a.stranded(), 4);
    }

    #[test]
    fn full_recompile_clears_staleness_and_carries_budget() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0, &one_loop(4));
        a.on_patch(0, &[4], 0, 1);
        assert_eq!(a.stranded(), 1);
        // The serving sweep may full-recompile a stranded method (e.g.
        // after an eviction): the fresh body clears staleness but the
        // loop's generation advanced, so the budget is not reset.
        a.on_evicted(0);
        a.on_compile(0, 1, &one_loop(4));
        assert_eq!(a.stranded(), 0);
        let l = a.guard(0).unwrap().loop_guard(4).unwrap();
        assert_eq!(l.generation, 1);
        assert_eq!(l.cache_evictions(), 1, "eviction-forced install credits");
    }
}
