//! Adaptive reprofiling: deciding *when* the strides learned by one-shot
//! object inspection stop being trustworthy, and *whether* recompiling is
//! still worth it.
//!
//! The paper compiles prefetches from a single inspection at JIT time and
//! trusts them forever. That is sound only while the heap keeps the shape
//! the inspector saw: a sliding compaction can change inter-object
//! distances, and later program phases can walk the same loop over
//! differently laid-out data. This crate holds the policy half of the
//! adaptive loop; the mechanism (deopt, re-inspection, recompile) lives in
//! `spf-vm`:
//!
//! * every compiled method with prefetch sites gets a [`MethodGuard`]
//!   stamping the GC epoch at compile time and counting per-site
//!   useless-prefetch issues (issues that found their line already
//!   resident);
//! * [`AdaptState::check_stale`] turns those observations into a
//!   [`StaleReason`] verdict: the epoch moved, or the useless ratio
//!   crossed the threshold after enough samples;
//! * a bounded recompile budget and exponential backoff
//!   ([`AdaptState::on_deopt`] / [`AdaptState::may_recompile`]) prevent a
//!   method whose heap churns every run from oscillating between deopt
//!   and recompile forever — once the budget is spent the guards disarm
//!   and the last compiled body is kept.
//!
//! The state machine is deterministic and lives entirely on simulated
//! counters (GC epochs, invocation counts, issue counts), so adaptive
//! runs are bit-identical across hosts and across traced/untraced
//! execution.

use std::collections::HashMap;

use spf_trace::StaleReason;

/// Tuning knobs of the adaptive-reprofiling policy.
#[derive(Clone, Copy, Debug)]
pub struct AdaptConfig {
    /// A method is stale when `useless / issued` exceeds this fraction
    /// (with at least [`AdaptConfig::min_samples`] issues observed).
    pub useless_threshold: f64,
    /// Minimum prefetch issues before the useless ratio is trusted.
    pub min_samples: u64,
    /// Total adaptive recompilations allowed per method; once spent, the
    /// guards disarm and the current body is kept.
    pub max_recompiles: u32,
    /// Invocations to wait before the first recompile after a deopt;
    /// doubles with every recompile already used (exponential backoff).
    pub backoff_base: u64,
    /// Re-arm horizon in GC epochs; 0 disables re-arming (the legacy
    /// behavior — disarmed guards stay disarmed forever). When non-zero:
    ///
    /// * a guard whose budget disarmed it regains **one** recompile
    ///   credit once the GC epoch has advanced this far past the disarm
    ///   point, and resumes staleness checking;
    /// * a deopted method's invocation backoff is waived once the epoch
    ///   has advanced this far past the deopt — the heap churned on, so
    ///   the verdict that triggered the backoff is moot and the method
    ///   may tier back out of the interpreter.
    pub rearm_stable_epochs: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 64,
            max_recompiles: 4,
            backoff_base: 2,
            rearm_stable_epochs: 0,
        }
    }
}

/// Per-site issue counters, keyed by the site's (block, index) position —
/// stable across recompilations, unlike trace-level site IDs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteCounters {
    /// Prefetches issued from this site in the current generation.
    pub issued: u64,
    /// Issues that found the line already resident (useless work).
    pub useless: u64,
}

/// Guard state of one compiled method.
#[derive(Clone, Debug)]
pub struct MethodGuard {
    /// GC epoch stamped when the current generation was compiled.
    pub epoch_at_compile: u64,
    /// Compilation generation: 0 for the first JIT, +1 per adaptive
    /// recompile.
    pub generation: u32,
    /// Per-site counters for the current generation.
    pub sites: HashMap<(u32, u32), SiteCounters>,
    /// Aggregate issues across the method's sites (current generation).
    pub issued: u64,
    /// Aggregate useless issues (current generation).
    pub useless: u64,
    /// Invocation count before which a recompile is not allowed (backoff).
    resume_at: u64,
    /// Whether the method currently has an installed compiled body.
    compiled: bool,
    /// Whether the guards disarmed after spending the recompile budget.
    disabled: bool,
    /// Recompiles *credited back* because a code-cache eviction forced
    /// them: incremented when the eviction-forced recompile actually
    /// lands, so a body evicted and never recompiled earns nothing.
    cache_evictions: u32,
    /// Set by [`AdaptState::on_evicted`], consumed by the next
    /// [`AdaptState::on_compile`]: the recompile in flight was forced by
    /// a cache eviction and must not burn the staleness budget.
    pending_evict: bool,
    /// Whether the method was deopted and has not been recompiled since
    /// (it is running interpreted — "stranded" if this persists).
    deopted: bool,
    /// GC epoch at the last deopt (backoff re-arm clock).
    deopt_epoch: u64,
    /// GC epoch at which the budget disarmed the guards (re-arm clock).
    disabled_at_epoch: u64,
    /// Budget credits granted by re-arming (one per re-arm cycle).
    rearm_credits: u32,
}

impl MethodGuard {
    /// Eviction-forced recompiles credited back against the budget.
    pub fn cache_evictions(&self) -> u32 {
        self.cache_evictions
    }

    /// Whether the method currently has an installed compiled body.
    pub fn is_compiled(&self) -> bool {
        self.compiled
    }

    /// Whether the method was deopted and not recompiled since. Together
    /// with `!is_compiled()` this is the "stranded in the interpreter"
    /// condition the serving recovery sweep targets.
    pub fn is_deopted(&self) -> bool {
        self.deopted
    }

    /// Whether the guards are currently disarmed (budget spent and not
    /// yet re-armed).
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Budget credits granted by re-arming so far.
    pub fn rearm_credits(&self) -> u32 {
        self.rearm_credits
    }

    /// The useless-prefetch ratio of the current generation (0 when
    /// nothing was issued).
    pub fn useless_ratio(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useless as f64 / self.issued as f64
        }
    }
}

/// Guard state for every method of one VM, plus the adaptive counters the
/// experiment report exposes.
#[derive(Clone, Debug, Default)]
pub struct AdaptState {
    cfg: AdaptConfig,
    guards: HashMap<usize, MethodGuard>,
    /// Total re-arms granted (budget credits from stable epochs).
    rearms: u64,
    /// `(method, generation)` of re-arms since the last
    /// [`AdaptState::take_rearmed`] drain, in re-arm order.
    rearmed_log: Vec<(u32, u32)>,
}

impl AdaptState {
    /// Creates guard state with the given policy.
    pub fn new(cfg: AdaptConfig) -> Self {
        AdaptState {
            cfg,
            guards: HashMap::new(),
            rearms: 0,
            rearmed_log: Vec::new(),
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The guard of `method`, if it was ever compiled under guards.
    pub fn guard(&self, method: usize) -> Option<&MethodGuard> {
        self.guards.get(&method)
    }

    /// Records a (re)compilation of `method` at GC epoch `epoch` and
    /// returns the new generation number: 0 for the first compile, +1 per
    /// recompile. Resets the generation's counters.
    pub fn on_compile(&mut self, method: usize, epoch: u64) -> u32 {
        match self.guards.get_mut(&method) {
            // A guard already exists, so a compile already happened: this
            // install is an adaptive recompile.
            Some(g) => {
                g.generation += 1;
                g.epoch_at_compile = epoch;
                g.sites.clear();
                g.issued = 0;
                g.useless = 0;
                g.compiled = true;
                g.deopted = false;
                if g.pending_evict {
                    // This recompile was forced by a cache eviction, not by
                    // an adaptive staleness verdict: credit it back now —
                    // and only now, so an eviction whose forced recompile
                    // never happens cannot refund the budget.
                    g.pending_evict = false;
                    g.cache_evictions += 1;
                }
                g.generation
            }
            None => {
                self.guards.insert(
                    method,
                    MethodGuard {
                        epoch_at_compile: epoch,
                        generation: 0,
                        sites: HashMap::new(),
                        issued: 0,
                        useless: 0,
                        resume_at: 0,
                        compiled: true,
                        disabled: false,
                        cache_evictions: 0,
                        pending_evict: false,
                        deopted: false,
                        deopt_epoch: 0,
                        disabled_at_epoch: 0,
                        rearm_credits: 0,
                    },
                );
                0
            }
        }
    }

    /// Records one prefetch issue from `method` at site `(block, index)`;
    /// `useless` means the line was already resident when issued.
    pub fn record_issue(&mut self, method: usize, site: (u32, u32), useless: bool) {
        if let Some(g) = self.guards.get_mut(&method) {
            let s = g.sites.entry(site).or_default();
            s.issued += 1;
            s.useless += u64::from(useless);
            g.issued += 1;
            g.useless += u64::from(useless);
        }
    }

    /// Evaluates the guards of a compiled `method` against the current GC
    /// `epoch`. Returns the staleness verdict, or `None` when the method
    /// is fresh, unguarded, or its guards disarmed. Spending the last
    /// budget slot disarms the guards instead of reporting stale.
    pub fn check_stale(&mut self, method: usize, epoch: u64) -> Option<StaleReason> {
        let cfg = self.cfg;
        let g = self.guards.get_mut(&method)?;
        if !g.compiled {
            return None;
        }
        if g.disabled {
            if cfg.rearm_stable_epochs == 0
                || epoch.saturating_sub(g.disabled_at_epoch) < cfg.rearm_stable_epochs
            {
                return None;
            }
            // Re-arm: the heap has churned through the stability horizon
            // since the disarm, so the budget verdict is stale too. Grant
            // exactly one credit and resume watching; if the next verdict
            // exhausts the budget again the guard disarms at the *new*
            // epoch, which damps oscillation to one recompile per horizon.
            g.disabled = false;
            g.rearm_credits += 1;
            self.rearms += 1;
            self.rearmed_log.push((method as u32, g.generation));
        }
        let reason = if g.epoch_at_compile != epoch {
            StaleReason::GcMoved
        } else if g.issued >= cfg.min_samples && g.useless_ratio() > cfg.useless_threshold {
            StaleReason::UselessRatio
        } else {
            return None;
        };
        let credits = u64::from(g.cache_evictions) + u64::from(g.rearm_credits);
        if u64::from(g.generation).saturating_sub(credits) >= u64::from(cfg.max_recompiles) {
            // Budget spent: keep the current body and stop watching.
            // Recompiles forced by code-cache eviction are credited back —
            // they were capacity decisions, not adaptive staleness ones —
            // and so is each re-arm credit.
            g.disabled = true;
            g.disabled_at_epoch = epoch;
            return None;
        }
        Some(reason)
    }

    /// Records that the shared code cache evicted `method`'s compiled
    /// body. The method falls back to the interpreter (no body to guard)
    /// and the *next* recompile is marked eviction-forced: the credit is
    /// granted by [`AdaptState::on_compile`] when that recompile actually
    /// lands, never on the eviction itself — repeated evictions of the
    /// same method across generations each refund at most the one
    /// recompile they forced. No backoff applies — the body was healthy,
    /// just cold.
    pub fn on_evicted(&mut self, method: usize) {
        if let Some(g) = self.guards.get_mut(&method) {
            if g.compiled {
                g.compiled = false;
                g.pending_evict = true;
            }
        }
    }

    /// Records a deoptimization of `method` at `invocations` total
    /// invocations and GC `epoch`: the next recompile is gated behind an
    /// exponentially growing backoff window (waivable by epoch-based
    /// re-arm, see [`AdaptConfig::rearm_stable_epochs`]).
    pub fn on_deopt(&mut self, method: usize, invocations: u64, epoch: u64) {
        let cfg = self.cfg;
        if let Some(g) = self.guards.get_mut(&method) {
            g.compiled = false;
            g.deopted = true;
            g.deopt_epoch = epoch;
            let backoff = cfg.backoff_base << g.generation.min(32);
            g.resume_at = invocations + backoff;
        }
    }

    /// Whether `method` may be (re)compiled at `invocations` total
    /// invocations and GC `epoch`. Always true for methods never
    /// deoptimized. The invocation backoff is waived once the epoch has
    /// advanced [`AdaptConfig::rearm_stable_epochs`] past the deopt.
    pub fn may_recompile(&self, method: usize, invocations: u64, epoch: u64) -> bool {
        self.guards.get(&method).is_none_or(|g| {
            invocations >= g.resume_at
                || (self.cfg.rearm_stable_epochs > 0
                    && g.deopted
                    && epoch.saturating_sub(g.deopt_epoch) >= self.cfg.rearm_stable_epochs)
        })
    }

    /// Total budget re-arms granted so far.
    pub fn rearms(&self) -> u64 {
        self.rearms
    }

    /// Drains the `(method, generation)` re-arm log accumulated since the
    /// last drain, in re-arm order.
    pub fn take_rearmed(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.rearmed_log)
    }

    /// Number of methods currently stranded in the interpreter: deopted
    /// by an adaptive staleness verdict and not recompiled since. This is
    /// the same condition `spf-trace-report deopt-summary` counts from
    /// the event stream (deopts > recompiles), read directly off the
    /// guard state.
    pub fn stranded(&self) -> u64 {
        self.guards
            .values()
            .filter(|g| g.deopted && !g.compiled)
            .count() as u64
    }

    /// The stranded methods' ids, ascending (sorted so callers that walk
    /// them stay deterministic — the backing map has no stable order).
    pub fn stranded_methods(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .guards
            .iter()
            .filter(|(_, g)| g.deopted && !g.compiled)
            .map(|(&m, _)| m)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_compile_is_generation_zero() {
        let mut a = AdaptState::new(AdaptConfig::default());
        assert_eq!(a.on_compile(3, 0), 0);
        assert_eq!(a.guard(3).unwrap().generation, 0);
    }

    #[test]
    fn epoch_bump_marks_stale_once() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0);
        assert_eq!(a.check_stale(0, 0), None, "same epoch is fresh");
        assert_eq!(a.check_stale(0, 1), Some(StaleReason::GcMoved));
        a.on_deopt(0, 10, 1);
        assert_eq!(a.check_stale(0, 1), None, "deopted method has no body");
        assert_eq!(a.on_compile(0, 1), 1, "recompile bumps the generation");
        assert_eq!(a.check_stale(0, 1), None, "fresh at the new epoch");
    }

    #[test]
    fn useless_ratio_needs_samples_and_threshold() {
        let cfg = AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 4,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.record_issue(0, (2, 1), true);
        a.record_issue(0, (2, 1), true);
        assert_eq!(a.check_stale(0, 0), None, "below min_samples");
        a.record_issue(0, (2, 1), true);
        a.record_issue(0, (2, 1), false);
        assert_eq!(a.check_stale(0, 0), Some(StaleReason::UselessRatio));
        assert_eq!(a.guard(0).unwrap().sites[&(2, 1)].issued, 4);
        assert_eq!(a.guard(0).unwrap().sites[&(2, 1)].useless, 3);
    }

    #[test]
    fn exactly_half_useless_is_not_stale() {
        let cfg = AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 2,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.record_issue(0, (0, 0), true);
        a.record_issue(0, (0, 0), false);
        assert_eq!(a.check_stale(0, 0), None, "threshold is strict");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let cfg = AdaptConfig {
            backoff_base: 2,
            max_recompiles: 8,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.on_deopt(0, 100, 0);
        assert!(!a.may_recompile(0, 101, 0));
        assert!(a.may_recompile(0, 102, 0), "gen 0 waits backoff_base");
        a.on_compile(0, 1);
        a.on_deopt(0, 200, 1);
        assert!(!a.may_recompile(0, 203, 1));
        assert!(a.may_recompile(0, 204, 1), "gen 1 waits 2*backoff_base");
    }

    #[test]
    fn budget_disarms_guards_instead_of_looping() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        let mut epoch = 0;
        a.on_compile(0, epoch);
        for expect_gen in 1..=2 {
            epoch += 1;
            assert_eq!(a.check_stale(0, epoch), Some(StaleReason::GcMoved));
            a.on_deopt(0, 0, epoch);
            assert_eq!(a.on_compile(0, epoch), expect_gen);
        }
        // Budget (2 recompiles) spent: a further epoch bump disarms.
        epoch += 1;
        assert_eq!(a.check_stale(0, epoch), None);
        assert_eq!(a.check_stale(0, epoch + 1), None, "stays disarmed");
        assert_eq!(a.guard(0).unwrap().generation, 2);
    }

    #[test]
    fn eviction_recompiles_do_not_burn_the_staleness_budget() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        // Two cache evictions, each followed by the forced recompile.
        for _ in 0..2 {
            a.on_evicted(0);
            assert_eq!(a.check_stale(0, 0), None, "no body to guard");
            assert!(a.may_recompile(0, 0, 0), "eviction applies no backoff");
            a.on_compile(0, 0);
        }
        assert_eq!(a.guard(0).unwrap().generation, 2);
        assert_eq!(a.guard(0).unwrap().cache_evictions(), 2);
        // The full adaptive budget (2) is still available: two GC-staleness
        // recompiles fire before the guards disarm.
        let mut epoch = 0;
        for expect_gen in 3..=4 {
            epoch += 1;
            assert_eq!(a.check_stale(0, epoch), Some(StaleReason::GcMoved));
            a.on_deopt(0, 0, epoch);
            assert_eq!(a.on_compile(0, epoch), expect_gen);
        }
        epoch += 1;
        assert_eq!(a.check_stale(0, epoch), None, "budget now spent");
    }

    #[test]
    fn evicted_method_is_not_checked_until_recompiled() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(3, 0);
        a.on_evicted(3);
        assert_eq!(
            a.check_stale(3, 99),
            None,
            "evicted body cannot be stale: there is nothing installed"
        );
        a.on_compile(3, 99);
        assert_eq!(a.check_stale(3, 100), Some(StaleReason::GcMoved));
    }

    #[test]
    fn eviction_of_unguarded_method_is_a_noop() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_evicted(11);
        assert!(a.guard(11).is_none());
    }

    #[test]
    fn unguarded_methods_are_never_stale_and_always_compilable() {
        let mut a = AdaptState::new(AdaptConfig::default());
        assert_eq!(a.check_stale(7, 99), None);
        assert!(a.may_recompile(7, 0, 0));
    }

    #[test]
    fn repeated_evictions_credit_only_landed_recompiles() {
        // Regression: `on_evicted` used to grant the budget credit
        // immediately, so a body evicted twice before its recompile
        // landed (or never recompiled at all) banked credits it never
        // earned. The credit must be counted when the eviction-forced
        // recompile actually installs.
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0);
        a.on_evicted(0);
        a.on_evicted(0); // churn: evicted again before any recompile
        assert_eq!(a.guard(0).unwrap().cache_evictions(), 0);
        a.on_compile(0, 0);
        assert_eq!(
            a.guard(0).unwrap().cache_evictions(),
            1,
            "two raw evictions, one forced recompile, one credit"
        );
        a.on_evicted(0);
        assert_eq!(a.guard(0).unwrap().cache_evictions(), 1);
        a.on_compile(0, 0);
        assert_eq!(a.guard(0).unwrap().cache_evictions(), 2);
    }

    #[test]
    fn deopt_then_staleness_recompile_consumes_no_evict_credit() {
        // A staleness-driven recompile must not consume a phantom
        // eviction credit.
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0);
        a.on_deopt(0, 10, 1);
        a.on_compile(0, 1);
        assert_eq!(a.guard(0).unwrap().cache_evictions(), 0);
    }

    #[test]
    fn budget_rearm_grants_one_credit_per_stable_window() {
        let cfg = AdaptConfig {
            max_recompiles: 1,
            rearm_stable_epochs: 3,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        // Spend the 1-recompile budget.
        assert_eq!(a.check_stale(0, 1), Some(StaleReason::GcMoved));
        a.on_deopt(0, 0, 1);
        a.on_compile(0, 1);
        // Budget spent: the next epoch bump disarms instead of deopting.
        assert_eq!(a.check_stale(0, 2), None);
        assert!(a.guard(0).unwrap().is_disabled());
        // Still disarmed while fewer than `rearm_stable_epochs` have
        // passed since the disarm point.
        assert_eq!(a.check_stale(0, 3), None);
        assert!(a.guard(0).unwrap().is_disabled());
        assert_eq!(a.check_stale(0, 4), None);
        // Epoch 5 = disarm(2) + 3: re-arms with one credit and the
        // staleness verdict fires again in the same call.
        assert_eq!(a.check_stale(0, 5), Some(StaleReason::GcMoved));
        assert!(!a.guard(0).unwrap().is_disabled());
        assert_eq!(a.guard(0).unwrap().rearm_credits(), 1);
        assert_eq!(a.rearms(), 1);
        assert_eq!(a.take_rearmed(), vec![(0, 1)]);
        assert_eq!(a.take_rearmed(), vec![], "drain is destructive");
        // The credit funds exactly one more recompile, then the guard
        // disarms again and a second stable window re-arms it again.
        a.on_deopt(0, 0, 5);
        a.on_compile(0, 5);
        assert_eq!(a.check_stale(0, 6), None);
        assert!(a.guard(0).unwrap().is_disabled());
        assert_eq!(a.check_stale(0, 9), Some(StaleReason::GcMoved));
        assert_eq!(a.rearms(), 2);
    }

    #[test]
    fn rearm_disabled_by_default_keeps_legacy_disarm_forever() {
        let cfg = AdaptConfig {
            max_recompiles: 1,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        assert_eq!(a.check_stale(0, 1), Some(StaleReason::GcMoved));
        a.on_deopt(0, 0, 1);
        a.on_compile(0, 1);
        assert_eq!(a.check_stale(0, 2), None);
        assert_eq!(a.check_stale(0, 1_000_000), None, "no re-arm at 0");
        assert_eq!(a.rearms(), 0);
    }

    #[test]
    fn stable_epochs_waive_deopt_backoff() {
        let cfg = AdaptConfig {
            backoff_base: 1_000,
            rearm_stable_epochs: 2,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.on_deopt(0, 100, 5);
        assert!(!a.may_recompile(0, 101, 5), "inside backoff, same epoch");
        assert!(!a.may_recompile(0, 101, 6), "one epoch is not enough");
        assert!(
            a.may_recompile(0, 101, 7),
            "two stable epochs waive the invocation backoff"
        );
        assert!(a.may_recompile(0, 2_000, 5), "backoff served normally");
    }

    #[test]
    fn stranded_tracks_deopted_uncompiled_methods_sorted() {
        let mut a = AdaptState::new(AdaptConfig::default());
        for m in [9usize, 2, 5] {
            a.on_compile(m, 0);
            a.on_deopt(m, 0, 1);
        }
        assert_eq!(a.stranded(), 3);
        assert_eq!(a.stranded_methods(), vec![2, 5, 9]);
        a.on_compile(5, 1);
        assert_eq!(a.stranded(), 2);
        assert_eq!(a.stranded_methods(), vec![2, 9]);
        // An eviction alone does not strand: the method was not deopted.
        a.on_compile(7, 1);
        a.on_evicted(7);
        assert_eq!(a.stranded(), 2);
    }
}
