//! Adaptive reprofiling: deciding *when* the strides learned by one-shot
//! object inspection stop being trustworthy, and *whether* recompiling is
//! still worth it.
//!
//! The paper compiles prefetches from a single inspection at JIT time and
//! trusts them forever. That is sound only while the heap keeps the shape
//! the inspector saw: a sliding compaction can change inter-object
//! distances, and later program phases can walk the same loop over
//! differently laid-out data. This crate holds the policy half of the
//! adaptive loop; the mechanism (deopt, re-inspection, recompile) lives in
//! `spf-vm`:
//!
//! * every compiled method with prefetch sites gets a [`MethodGuard`]
//!   stamping the GC epoch at compile time and counting per-site
//!   useless-prefetch issues (issues that found their line already
//!   resident);
//! * [`AdaptState::check_stale`] turns those observations into a
//!   [`StaleReason`] verdict: the epoch moved, or the useless ratio
//!   crossed the threshold after enough samples;
//! * a bounded recompile budget and exponential backoff
//!   ([`AdaptState::on_deopt`] / [`AdaptState::may_recompile`]) prevent a
//!   method whose heap churns every run from oscillating between deopt
//!   and recompile forever — once the budget is spent the guards disarm
//!   and the last compiled body is kept.
//!
//! The state machine is deterministic and lives entirely on simulated
//! counters (GC epochs, invocation counts, issue counts), so adaptive
//! runs are bit-identical across hosts and across traced/untraced
//! execution.

use std::collections::HashMap;

use spf_trace::StaleReason;

/// Tuning knobs of the adaptive-reprofiling policy.
#[derive(Clone, Copy, Debug)]
pub struct AdaptConfig {
    /// A method is stale when `useless / issued` exceeds this fraction
    /// (with at least [`AdaptConfig::min_samples`] issues observed).
    pub useless_threshold: f64,
    /// Minimum prefetch issues before the useless ratio is trusted.
    pub min_samples: u64,
    /// Total adaptive recompilations allowed per method; once spent, the
    /// guards disarm and the current body is kept.
    pub max_recompiles: u32,
    /// Invocations to wait before the first recompile after a deopt;
    /// doubles with every recompile already used (exponential backoff).
    pub backoff_base: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 64,
            max_recompiles: 4,
            backoff_base: 2,
        }
    }
}

/// Per-site issue counters, keyed by the site's (block, index) position —
/// stable across recompilations, unlike trace-level site IDs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteCounters {
    /// Prefetches issued from this site in the current generation.
    pub issued: u64,
    /// Issues that found the line already resident (useless work).
    pub useless: u64,
}

/// Guard state of one compiled method.
#[derive(Clone, Debug)]
pub struct MethodGuard {
    /// GC epoch stamped when the current generation was compiled.
    pub epoch_at_compile: u64,
    /// Compilation generation: 0 for the first JIT, +1 per adaptive
    /// recompile.
    pub generation: u32,
    /// Per-site counters for the current generation.
    pub sites: HashMap<(u32, u32), SiteCounters>,
    /// Aggregate issues across the method's sites (current generation).
    pub issued: u64,
    /// Aggregate useless issues (current generation).
    pub useless: u64,
    /// Invocation count before which a recompile is not allowed (backoff).
    resume_at: u64,
    /// Whether the method currently has an installed compiled body.
    compiled: bool,
    /// Whether the guards disarmed after spending the recompile budget.
    disabled: bool,
    /// Times the shared code cache evicted this method's compiled body.
    /// Each eviction forces a recompile that is *not* an adaptive
    /// staleness decision, so these recompiles are credited back when the
    /// budget is checked.
    cache_evictions: u32,
}

impl MethodGuard {
    /// Times the shared code cache evicted this method's compiled body.
    pub fn cache_evictions(&self) -> u32 {
        self.cache_evictions
    }

    /// The useless-prefetch ratio of the current generation (0 when
    /// nothing was issued).
    pub fn useless_ratio(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useless as f64 / self.issued as f64
        }
    }
}

/// Guard state for every method of one VM, plus the adaptive counters the
/// experiment report exposes.
#[derive(Clone, Debug, Default)]
pub struct AdaptState {
    cfg: AdaptConfig,
    guards: HashMap<usize, MethodGuard>,
}

impl AdaptState {
    /// Creates guard state with the given policy.
    pub fn new(cfg: AdaptConfig) -> Self {
        AdaptState {
            cfg,
            guards: HashMap::new(),
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The guard of `method`, if it was ever compiled under guards.
    pub fn guard(&self, method: usize) -> Option<&MethodGuard> {
        self.guards.get(&method)
    }

    /// Records a (re)compilation of `method` at GC epoch `epoch` and
    /// returns the new generation number: 0 for the first compile, +1 per
    /// recompile. Resets the generation's counters.
    pub fn on_compile(&mut self, method: usize, epoch: u64) -> u32 {
        match self.guards.get_mut(&method) {
            // A guard already exists, so a compile already happened: this
            // install is an adaptive recompile.
            Some(g) => {
                g.generation += 1;
                g.epoch_at_compile = epoch;
                g.sites.clear();
                g.issued = 0;
                g.useless = 0;
                g.compiled = true;
                g.generation
            }
            None => {
                self.guards.insert(
                    method,
                    MethodGuard {
                        epoch_at_compile: epoch,
                        generation: 0,
                        sites: HashMap::new(),
                        issued: 0,
                        useless: 0,
                        resume_at: 0,
                        compiled: true,
                        disabled: false,
                        cache_evictions: 0,
                    },
                );
                0
            }
        }
    }

    /// Records one prefetch issue from `method` at site `(block, index)`;
    /// `useless` means the line was already resident when issued.
    pub fn record_issue(&mut self, method: usize, site: (u32, u32), useless: bool) {
        if let Some(g) = self.guards.get_mut(&method) {
            let s = g.sites.entry(site).or_default();
            s.issued += 1;
            s.useless += u64::from(useless);
            g.issued += 1;
            g.useless += u64::from(useless);
        }
    }

    /// Evaluates the guards of a compiled `method` against the current GC
    /// `epoch`. Returns the staleness verdict, or `None` when the method
    /// is fresh, unguarded, or its guards disarmed. Spending the last
    /// budget slot disarms the guards instead of reporting stale.
    pub fn check_stale(&mut self, method: usize, epoch: u64) -> Option<StaleReason> {
        let cfg = self.cfg;
        let g = self.guards.get_mut(&method)?;
        if !g.compiled || g.disabled {
            return None;
        }
        let reason = if g.epoch_at_compile != epoch {
            StaleReason::GcMoved
        } else if g.issued >= cfg.min_samples && g.useless_ratio() > cfg.useless_threshold {
            StaleReason::UselessRatio
        } else {
            return None;
        };
        if g.generation.saturating_sub(g.cache_evictions) >= cfg.max_recompiles {
            // Budget spent: keep the current body and stop watching.
            // Recompiles forced by code-cache eviction are credited back —
            // they were capacity decisions, not adaptive staleness ones.
            g.disabled = true;
            return None;
        }
        Some(reason)
    }

    /// Records that the shared code cache evicted `method`'s compiled
    /// body. The method falls back to the interpreter (no body to guard)
    /// and earns one recompile credit: the eviction-forced recompile will
    /// bump the generation without burning the adaptive staleness budget.
    /// No backoff applies — the body was healthy, just cold.
    pub fn on_evicted(&mut self, method: usize) {
        if let Some(g) = self.guards.get_mut(&method) {
            g.compiled = false;
            g.cache_evictions += 1;
        }
    }

    /// Records a deoptimization of `method` at `invocations` total
    /// invocations: the next recompile is gated behind an exponentially
    /// growing backoff window.
    pub fn on_deopt(&mut self, method: usize, invocations: u64) {
        let cfg = self.cfg;
        if let Some(g) = self.guards.get_mut(&method) {
            g.compiled = false;
            let backoff = cfg.backoff_base << g.generation.min(32);
            g.resume_at = invocations + backoff;
        }
    }

    /// Whether `method` may be (re)compiled at `invocations` total
    /// invocations. Always true for methods never deoptimized.
    pub fn may_recompile(&self, method: usize, invocations: u64) -> bool {
        self.guards
            .get(&method)
            .is_none_or(|g| invocations >= g.resume_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_compile_is_generation_zero() {
        let mut a = AdaptState::new(AdaptConfig::default());
        assert_eq!(a.on_compile(3, 0), 0);
        assert_eq!(a.guard(3).unwrap().generation, 0);
    }

    #[test]
    fn epoch_bump_marks_stale_once() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(0, 0);
        assert_eq!(a.check_stale(0, 0), None, "same epoch is fresh");
        assert_eq!(a.check_stale(0, 1), Some(StaleReason::GcMoved));
        a.on_deopt(0, 10);
        assert_eq!(a.check_stale(0, 1), None, "deopted method has no body");
        assert_eq!(a.on_compile(0, 1), 1, "recompile bumps the generation");
        assert_eq!(a.check_stale(0, 1), None, "fresh at the new epoch");
    }

    #[test]
    fn useless_ratio_needs_samples_and_threshold() {
        let cfg = AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 4,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.record_issue(0, (2, 1), true);
        a.record_issue(0, (2, 1), true);
        assert_eq!(a.check_stale(0, 0), None, "below min_samples");
        a.record_issue(0, (2, 1), true);
        a.record_issue(0, (2, 1), false);
        assert_eq!(a.check_stale(0, 0), Some(StaleReason::UselessRatio));
        assert_eq!(a.guard(0).unwrap().sites[&(2, 1)].issued, 4);
        assert_eq!(a.guard(0).unwrap().sites[&(2, 1)].useless, 3);
    }

    #[test]
    fn exactly_half_useless_is_not_stale() {
        let cfg = AdaptConfig {
            useless_threshold: 0.5,
            min_samples: 2,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.record_issue(0, (0, 0), true);
        a.record_issue(0, (0, 0), false);
        assert_eq!(a.check_stale(0, 0), None, "threshold is strict");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let cfg = AdaptConfig {
            backoff_base: 2,
            max_recompiles: 8,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        a.on_deopt(0, 100);
        assert!(!a.may_recompile(0, 101));
        assert!(a.may_recompile(0, 102), "gen 0 waits backoff_base");
        a.on_compile(0, 1);
        a.on_deopt(0, 200);
        assert!(!a.may_recompile(0, 203));
        assert!(a.may_recompile(0, 204), "gen 1 waits 2*backoff_base");
    }

    #[test]
    fn budget_disarms_guards_instead_of_looping() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        let mut epoch = 0;
        a.on_compile(0, epoch);
        for expect_gen in 1..=2 {
            epoch += 1;
            assert_eq!(a.check_stale(0, epoch), Some(StaleReason::GcMoved));
            a.on_deopt(0, 0);
            assert_eq!(a.on_compile(0, epoch), expect_gen);
        }
        // Budget (2 recompiles) spent: a further epoch bump disarms.
        epoch += 1;
        assert_eq!(a.check_stale(0, epoch), None);
        assert_eq!(a.check_stale(0, epoch + 1), None, "stays disarmed");
        assert_eq!(a.guard(0).unwrap().generation, 2);
    }

    #[test]
    fn eviction_recompiles_do_not_burn_the_staleness_budget() {
        let cfg = AdaptConfig {
            max_recompiles: 2,
            backoff_base: 0,
            ..AdaptConfig::default()
        };
        let mut a = AdaptState::new(cfg);
        a.on_compile(0, 0);
        // Two cache evictions, each followed by the forced recompile.
        for _ in 0..2 {
            a.on_evicted(0);
            assert_eq!(a.check_stale(0, 0), None, "no body to guard");
            assert!(a.may_recompile(0, 0), "eviction applies no backoff");
            a.on_compile(0, 0);
        }
        assert_eq!(a.guard(0).unwrap().generation, 2);
        assert_eq!(a.guard(0).unwrap().cache_evictions(), 2);
        // The full adaptive budget (2) is still available: two GC-staleness
        // recompiles fire before the guards disarm.
        let mut epoch = 0;
        for expect_gen in 3..=4 {
            epoch += 1;
            assert_eq!(a.check_stale(0, epoch), Some(StaleReason::GcMoved));
            a.on_deopt(0, 0);
            assert_eq!(a.on_compile(0, epoch), expect_gen);
        }
        epoch += 1;
        assert_eq!(a.check_stale(0, epoch), None, "budget now spent");
    }

    #[test]
    fn evicted_method_is_not_checked_until_recompiled() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_compile(3, 0);
        a.on_evicted(3);
        assert_eq!(
            a.check_stale(3, 99),
            None,
            "evicted body cannot be stale: there is nothing installed"
        );
        a.on_compile(3, 99);
        assert_eq!(a.check_stale(3, 100), Some(StaleReason::GcMoved));
    }

    #[test]
    fn eviction_of_unguarded_method_is_a_noop() {
        let mut a = AdaptState::new(AdaptConfig::default());
        a.on_evicted(11);
        assert!(a.guard(11).is_none());
    }

    #[test]
    fn unguarded_methods_are_never_stale_and_always_compilable() {
        let mut a = AdaptState::new(AdaptConfig::default());
        assert_eq!(a.check_stale(7, 99), None);
        assert!(a.may_recompile(7, 0));
    }
}
