//! Definite-initialization analysis.
//!
//! Proves that every register use is preceded by an assignment on *all*
//! paths from the function entry. The structural verifier only checks that
//! register indices are in range; the VM zero-initializes frames, so a
//! use-before-def silently reads 0/null instead of failing. This must-
//! analysis (intersection join, seeded with the parameters) makes such
//! reads visible to the lint.

use spf_ir::bitset::BitSet;
use spf_ir::cfg::Cfg;
use spf_ir::func::Function;

use crate::dataflow::{forward, Join};
use crate::Finding;

/// Flags every use of a register that is not definitely assigned on all
/// paths reaching it. Unreachable blocks are skipped: the VM never executes
/// them, and inliner/unroller leftovers routinely contain dangling code.
pub fn check(func: &Function, cfg: &Cfg) -> Vec<Finding> {
    let bits = func.reg_count();
    let mut entry = BitSet::new(bits);
    for p in func.params() {
        entry.insert(p.index());
    }
    let states = forward(func, cfg, bits, Join::Intersect, &entry, |state, b| {
        for instr in &func.block(b).instrs {
            if let Some(dst) = instr.dst() {
                state.insert(dst.index());
            }
        }
    });

    let mut findings = Vec::new();
    let mut used = Vec::new();
    for &b in cfg.rpo() {
        let mut state = states.block_in[b.index()].clone();
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            used.clear();
            instr.uses(&mut used);
            for &r in &used {
                if !state.contains(r.index()) {
                    findings.push(Finding::at(
                        b,
                        Some(i),
                        format!("{}: use of {r} before definite assignment", func.name()),
                    ));
                }
            }
            if let Some(dst) = instr.dst() {
                state.insert(dst.index());
            }
        }
        used.clear();
        func.block(b).term.uses(&mut used);
        for &r in &used {
            if !state.contains(r.index()) {
                findings.push(Finding::at(
                    b,
                    None,
                    format!(
                        "{}: terminator use of {r} before definite assignment",
                        func.name()
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::builder::ProgramBuilder;
    use spf_ir::types::Ty;

    fn run(p: &spf_ir::Program, m: spf_ir::MethodId) -> Vec<Finding> {
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        check(f, &cfg)
    }

    #[test]
    fn straight_line_is_clean() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("ok", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let one = b.const_i32(1);
        let y = b.add(x, one);
        b.ret(Some(y));
        let m = b.finish();
        let p = pb.finish();
        assert!(run(&p, m).is_empty());
    }

    #[test]
    fn one_armed_assignment_is_flagged() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("bad", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let c = b.gt(x, zero);
        let v = b.new_reg(Ty::I32);
        b.if_else(c, |b| b.move_(v, x), |_| {});
        let out = b.add(v, x); // v undefined when the else arm ran
        b.ret(Some(out));
        let m = b.finish();
        let p = pb.finish();
        let findings = run(&p, m);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("before definite assignment"));
    }

    #[test]
    fn both_arms_assigning_is_clean() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("ok2", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let c = b.gt(x, zero);
        let v = b.new_reg(Ty::I32);
        b.if_else(c, |b| b.move_(v, x), |b| b.move_(v, zero));
        b.ret(Some(v));
        let m = b.finish();
        let p = pb.finish();
        assert!(run(&p, m).is_empty());
    }

    #[test]
    fn loop_carried_init_is_clean() {
        // i initialized before the loop, redefined in the body: every use in
        // the header is definitely assigned on both entry and back edge.
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("ok3", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let i = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(i, z);
        b.while_(|b| b.lt(i, n), |b| b.inc(i, 1));
        b.ret(Some(i));
        let m = b.finish();
        let p = pb.finish();
        assert!(run(&p, m).is_empty());
    }

    #[test]
    fn terminator_use_is_checked() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("bad2", &[], Some(Ty::I32));
        let v = b.new_reg(Ty::I32);
        b.ret(Some(v));
        let m = b.finish();
        let p = pb.finish();
        let findings = run(&p, m);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("terminator use"));
    }
}
