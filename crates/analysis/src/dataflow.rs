//! A small forward-dataflow engine shared by the analyses in this crate.
//!
//! The engine iterates block transfer functions to a fixpoint over the
//! reverse postorder of the CFG, joining predecessor out-states with either
//! set union (may-analyses such as taint propagation) or set intersection
//! (must-analyses such as definite initialization). States are dense
//! [`BitSet`]s; the meaning of each bit is up to the client.

use spf_ir::bitset::BitSet;
use spf_ir::cfg::Cfg;
use spf_ir::entities::BlockId;
use spf_ir::func::Function;

/// How predecessor states are combined at a block entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Join {
    /// May-analysis: a bit holds if it holds on *some* path (set union).
    /// Unknown states start empty (bottom = ∅).
    Union,
    /// Must-analysis: a bit holds only if it holds on *every* path (set
    /// intersection). Unknown states start full (top = the universe), so
    /// that unvisited paths do not spuriously kill facts.
    Intersect,
}

/// Per-block fixpoint states computed by [`forward`].
pub struct BlockStates {
    /// State at each block's entry (indexed by block id).
    pub block_in: Vec<BitSet>,
    /// State at each block's exit (indexed by block id).
    pub block_out: Vec<BitSet>,
}

/// Runs a forward dataflow analysis to fixpoint.
///
/// `bits` is the size of the state sets, `entry_state` the facts holding on
/// function entry (e.g. parameter registers for definite initialization),
/// and `transfer` applies one whole block to a state in place. Unreachable
/// blocks keep their initial state (`∅` for [`Join::Union`], the full set
/// for [`Join::Intersect`]) and are excluded from joins, mirroring how the
/// executing VM never observes them.
pub fn forward(
    func: &Function,
    cfg: &Cfg,
    bits: usize,
    join: Join,
    entry_state: &BitSet,
    transfer: impl Fn(&mut BitSet, BlockId),
) -> BlockStates {
    assert_eq!(entry_state.capacity(), bits, "entry state capacity");
    let nblocks = func.block_count();
    let top = || match join {
        Join::Union => BitSet::new(bits),
        Join::Intersect => {
            let mut s = BitSet::new(bits);
            for i in 0..bits {
                s.insert(i);
            }
            s
        }
    };
    let mut block_in: Vec<BitSet> = (0..nblocks).map(|_| top()).collect();
    let mut block_out: Vec<BitSet> = (0..nblocks).map(|_| top()).collect();
    let entry = func.entry();

    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let bi = b.index();
            // Entry state of the block: the join over reachable predecessors,
            // seeded with `entry_state` for the function entry (which may
            // itself be a loop header with predecessors).
            let mut inset = if b == entry {
                entry_state.clone()
            } else {
                top()
            };
            let mut joined = b == entry;
            for &p in cfg.preds(b) {
                if !cfg.is_reachable(p) {
                    continue;
                }
                match join {
                    Join::Union => {
                        inset.union_with(&block_out[p.index()]);
                    }
                    Join::Intersect => {
                        if joined {
                            inset.intersect_with(&block_out[p.index()]);
                        } else {
                            inset = block_out[p.index()].clone();
                        }
                    }
                }
                joined = true;
            }
            if !joined {
                // Reachable block with no reachable predecessor can only be
                // the entry (handled above); keep the seed for safety.
                inset = entry_state.clone();
            }
            let mut outset = inset.clone();
            transfer(&mut outset, b);
            if inset != block_in[bi] || outset != block_out[bi] {
                block_in[bi] = inset;
                block_out[bi] = outset;
                changed = true;
            }
        }
    }
    BlockStates {
        block_in,
        block_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::builder::ProgramBuilder;
    use spf_ir::types::Ty;
    use spf_ir::Instr;

    /// Definite-init-shaped must-analysis over a diamond: a register
    /// assigned on only one arm is not definite at the join.
    #[test]
    fn intersect_join_diamond() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("d", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let c = b.gt(x, zero);
        let only_then = b.new_reg(Ty::I32);
        b.if_else(c, |b| b.move_(only_then, x), |_| {});
        b.ret(Some(x));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let bits = f.reg_count();
        let mut entry = BitSet::new(bits);
        for pr in f.params() {
            entry.insert(pr.index());
        }
        let states = forward(f, &cfg, bits, Join::Intersect, &entry, |state, blk| {
            for instr in &f.block(blk).instrs {
                if let Some(dst) = instr.dst() {
                    state.insert(dst.index());
                }
            }
        });
        // Find the join block: the reachable block whose preds are the two arms.
        let join_blk = f
            .block_ids()
            .find(|&blk| cfg.is_reachable(blk) && cfg.preds(blk).len() == 2)
            .expect("join block");
        let at_join = &states.block_in[join_blk.index()];
        assert!(at_join.contains(x.index()), "param is definite everywhere");
        assert!(
            !at_join.contains(only_then.index()),
            "one-armed assignment must not be definite at the join"
        );
    }

    /// Taint-shaped may-analysis around a loop: a fact generated in the
    /// body flows back to the header through the latch.
    #[test]
    fn union_join_loop_carried() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("l", &[Ty::I32], None);
        let n = b.param(0);
        let i = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(i, z);
        let body_def = b.new_reg(Ty::I32);
        b.while_(
            |b| b.lt(i, n),
            |b| {
                b.move_(body_def, i);
                b.inc(i, 1);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let bits = f.reg_count();
        let entry = BitSet::new(bits);
        let states = forward(f, &cfg, bits, Join::Union, &entry, |state, blk| {
            for instr in &f.block(blk).instrs {
                if matches!(instr, Instr::Move { .. }) {
                    if let Some(dst) = instr.dst() {
                        state.insert(dst.index());
                    }
                }
            }
        });
        // The loop header sees the body's def via the back edge.
        let header = f
            .block_ids()
            .find(|&blk| {
                cfg.is_reachable(blk)
                    && cfg
                        .preds(blk)
                        .iter()
                        .any(|&pr| cfg.rpo_index(pr) > cfg.rpo_index(blk))
            })
            .expect("loop header");
        assert!(states.block_in[header.index()].contains(body_def.index()));
    }
}
