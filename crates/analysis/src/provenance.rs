//! Prefetch-site provenance lint.
//!
//! Static-first compilation (`PrefetchMode::StaticFirst` in `spf-core`)
//! emits prefetches from two sources: SCEV-lite affine stride *proofs*
//! (no inspection budget spent) and the paper's dynamic object
//! inspection (the fallback for statically-opaque loads). Every emitted
//! prefetch site is tagged with a [`Provenance`]:
//!
//! - [`Provenance::Static`] — the stride was proved statically and the
//!   site was *excluded* from object inspection;
//! - [`Provenance::Dynamic`] — the stride came from object inspection
//!   alone (every site in the four legacy modes);
//! - [`Provenance::Hybrid`] — a proved site that was deliberately kept
//!   in the inspection record set (its dereference successors are
//!   opaque, and intra-iteration pairing needs their samples), or a
//!   dynamic dereference target reached *through* a proved anchor.
//!
//! [`check`] rejects bodies where the tags are inconsistent with how the
//! compilation actually ran:
//!
//! 1. a `Static` site that was nonetheless inspected (wasted budget);
//! 2. a proved site whose installed stride differs from the proof —
//!    under static-first the proof has precedence, so a disagreement is
//!    a soundness bug, not a tuning choice (in the legacy modes the
//!    *dynamic* stride has precedence and the proof is record-only, so
//!    rule 2 never applies to `Dynamic` sites);
//! 3. a `Static` site whose address computation reads a speculative
//!    (`SpecLoad`-derived) value — a proof can only cover an address
//!    computed from architectural state, so this violates the same
//!    taint discipline `speclint` enforces;
//! 4. any non-`Dynamic` tag in a compilation that did not run
//!    static-first.
//!
//! The check runs for every compilation generation: under
//! `debug_assertions` inside `spf-vm`'s JIT, and over every installed
//! body in the `spf-lint` gate (`--provenance`).

use spf_ir::bitset::BitSet;
use spf_ir::entities::Reg;
use spf_ir::func::Function;
use spf_ir::{Instr, InstrRef};

use crate::Finding;

/// Where a generated prefetch's stride came from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Provenance {
    /// Emitted purely from a static stride proof; the site skipped
    /// object inspection.
    Static,
    /// Emitted purely from object inspection (all legacy-mode sites).
    Dynamic,
    /// Partly static: a proved anchor that was still inspected for its
    /// opaque successors, or a dynamic target reached through a proved
    /// anchor.
    Hybrid,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Static => f.write_str("static"),
            Provenance::Dynamic => f.write_str("dynamic"),
            Provenance::Hybrid => f.write_str("hybrid"),
        }
    }
}

/// One emitted prefetch site with everything the provenance rules need,
/// recorded by the pipeline at code-generation time (the anchor sites
/// reference the pre-insertion body, so the record carries the address
/// registers instead of re-deriving them from shifted instruction
/// indices).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SiteProvenance {
    /// Anchor load site (in the pre-insertion body).
    pub site: InstrRef,
    /// The tag the code generator assigned.
    pub provenance: Provenance,
    /// Statically-proved inter-iteration stride, if any.
    pub static_stride: Option<i64>,
    /// The stride the installed prefetch actually uses, if the site got
    /// an inter-iteration prefetch.
    pub installed_stride: Option<i64>,
    /// Whether the site was in the object-inspection record set.
    pub inspected: bool,
    /// Registers the anchor's address computation reads.
    pub addr_regs: Vec<Reg>,
}

/// Configuration for [`check`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProvenanceConfig {
    /// Whether the compilation ran static-first (proofs drive emission).
    /// When `false`, every site must be tagged [`Provenance::Dynamic`].
    pub static_first: bool,
}

/// Flow-insensitive over-approximation of the registers that may carry a
/// `SpecLoad` result. Conservative by design: this backs a lint on
/// *generated* code, where speculative registers are fresh and feed only
/// prefetch addresses.
fn speculative_regs(func: &Function) -> BitSet {
    let mut taint = BitSet::new(func.reg_count());
    let mut changed = true;
    let mut used = Vec::new();
    while changed {
        changed = false;
        for b in func.block_ids() {
            for instr in &func.block(b).instrs {
                let dst = match instr {
                    Instr::SpecLoad { dst, .. } => Some(*dst),
                    _ => {
                        used.clear();
                        instr.uses(&mut used);
                        if used.iter().any(|r| taint.contains(r.index())) {
                            instr.dst()
                        } else {
                            None
                        }
                    }
                };
                if let Some(dst) = dst {
                    if !taint.contains(dst.index()) {
                        taint.insert(dst.index());
                        changed = true;
                    }
                }
            }
        }
    }
    taint
}

/// Checks one compiled body's provenance records against the rules in
/// the module docs. Returns every violation; empty means consistent.
pub fn check(
    func: &Function,
    config: &ProvenanceConfig,
    records: &[SiteProvenance],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let taint = speculative_regs(func);
    for r in records {
        let at = |msg: String| Finding::at(r.site.block, Some(r.site.index as usize), msg);
        if !config.static_first {
            if r.provenance != Provenance::Dynamic {
                findings.push(at(format!(
                    "{}: {} provenance in a non-static-first compilation",
                    func.name(),
                    r.provenance
                )));
            }
            // Legacy modes: the dynamic stride has precedence; a static
            // proof that disagrees is record-only, never a violation.
            continue;
        }
        match r.provenance {
            Provenance::Static => {
                if r.inspected {
                    findings.push(at(format!(
                        "{}: statically-proved site was nonetheless inspected (wasted budget)",
                        func.name()
                    )));
                }
                if r.static_stride.is_none() {
                    findings.push(at(format!(
                        "{}: site tagged static without a stride proof",
                        func.name()
                    )));
                }
                for reg in &r.addr_regs {
                    if taint.contains(reg.index()) {
                        findings.push(at(format!(
                            "{}: static-first prefetch address reads speculative value {reg}",
                            func.name()
                        )));
                    }
                }
            }
            Provenance::Hybrid => {
                if !r.inspected {
                    findings.push(at(format!(
                        "{}: site tagged hybrid but never inspected",
                        func.name()
                    )));
                }
            }
            Provenance::Dynamic => {
                if r.static_stride.is_some() {
                    findings.push(at(format!(
                        "{}: statically-proved site tagged dynamic under static-first",
                        func.name()
                    )));
                }
            }
        }
        // Soundness: wherever a proof exists, static-first must install
        // it. A mismatch means the precedence rule was violated.
        if let (Some(s), Some(d)) = (r.static_stride, r.installed_stride) {
            if s != d && r.provenance != Provenance::Dynamic {
                findings.push(at(format!(
                    "{}: static proof stride {s} disagrees with installed stride {d}",
                    func.name()
                )));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::types::Ty;
    use spf_ir::{PrefetchAddr, PrefetchKind, Terminator};

    /// A body with one `SpecLoad` feeding a prefetch — enough structure
    /// for the taint rule to have something to find.
    fn spec_fn() -> (Function, Reg, Reg) {
        let mut f = Function::with_signature("p", &[Ty::Ref], None);
        let head = f.params().next().unwrap();
        let spec = f.new_reg(Ty::Ref);
        let entry = f.entry();
        let blk = f.block_mut(entry);
        blk.instrs.push(Instr::SpecLoad {
            dst: spec,
            addr: PrefetchAddr::FieldOf {
                base: head,
                delta: 8,
            },
        });
        blk.instrs.push(Instr::Prefetch {
            addr: PrefetchAddr::FieldOf {
                base: spec,
                delta: 0,
            },
            kind: PrefetchKind::GuardedLoad,
        });
        blk.term = Terminator::Return(None);
        (f, head, spec)
    }

    fn site() -> InstrRef {
        InstrRef::new(spf_ir::BlockId::new(0), 0)
    }

    fn record(provenance: Provenance) -> SiteProvenance {
        SiteProvenance {
            site: site(),
            provenance,
            static_stride: None,
            installed_stride: None,
            inspected: false,
            addr_regs: Vec::new(),
        }
    }

    #[test]
    fn clean_static_first_records_pass() {
        let (f, head, _) = spec_fn();
        let cfg = ProvenanceConfig { static_first: true };
        let records = [
            SiteProvenance {
                static_stride: Some(80),
                installed_stride: Some(80),
                addr_regs: vec![head],
                ..record(Provenance::Static)
            },
            SiteProvenance {
                static_stride: Some(16),
                installed_stride: Some(16),
                inspected: true,
                ..record(Provenance::Hybrid)
            },
            SiteProvenance {
                installed_stride: Some(24),
                inspected: true,
                ..record(Provenance::Dynamic)
            },
        ];
        assert!(check(&f, &cfg, &records).is_empty());
    }

    #[test]
    fn inspected_static_site_is_wasted_budget() {
        let (f, ..) = spec_fn();
        let cfg = ProvenanceConfig { static_first: true };
        let records = [SiteProvenance {
            static_stride: Some(80),
            installed_stride: Some(80),
            inspected: true,
            ..record(Provenance::Static)
        }];
        let findings = check(&f, &cfg, &records);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wasted budget"));
    }

    #[test]
    fn proof_disagreeing_with_installed_stride_is_unsound() {
        let (f, ..) = spec_fn();
        let cfg = ProvenanceConfig { static_first: true };
        // Static-first precedence: the proof must win. An installed
        // stride that differs from the proof is flagged for Static and
        // Hybrid sites alike.
        for p in [Provenance::Static, Provenance::Hybrid] {
            let records = [SiteProvenance {
                static_stride: Some(80),
                installed_stride: Some(8),
                inspected: p == Provenance::Hybrid,
                ..record(p)
            }];
            let findings = check(&f, &cfg, &records);
            assert_eq!(findings.len(), 1, "{p:?}: {findings:?}");
            assert!(findings[0].message.contains("disagrees"));
        }
    }

    #[test]
    fn dynamic_precedence_in_legacy_modes_is_clean() {
        // The other direction of the precedence rule: in a legacy
        // (record-only) compilation the dynamic stride wins, so a
        // disagreeing proof on a Dynamic site is *not* a violation.
        let (f, ..) = spec_fn();
        let cfg = ProvenanceConfig {
            static_first: false,
        };
        let records = [SiteProvenance {
            static_stride: Some(80),
            installed_stride: Some(8),
            inspected: true,
            ..record(Provenance::Dynamic)
        }];
        assert!(check(&f, &cfg, &records).is_empty());
        // But a Static tag leaking into a legacy compilation is.
        let records = [SiteProvenance {
            static_stride: Some(80),
            installed_stride: Some(80),
            ..record(Provenance::Static)
        }];
        let findings = check(&f, &cfg, &records);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("non-static-first"));
    }

    #[test]
    fn speculative_address_on_static_site_is_flagged() {
        let (f, _, spec) = spec_fn();
        let cfg = ProvenanceConfig { static_first: true };
        let records = [SiteProvenance {
            static_stride: Some(80),
            installed_stride: Some(80),
            addr_regs: vec![spec],
            ..record(Provenance::Static)
        }];
        let findings = check(&f, &cfg, &records);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("speculative"));
    }

    #[test]
    fn hybrid_requires_inspection_and_static_requires_proof() {
        let (f, ..) = spec_fn();
        let cfg = ProvenanceConfig { static_first: true };
        let findings = check(&f, &cfg, &[record(Provenance::Hybrid)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("never inspected"));
        let findings = check(&f, &cfg, &[record(Provenance::Static)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("without a stride proof"));
    }
}
