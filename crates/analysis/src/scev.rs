//! Static affine stride analysis ("SCEV-lite").
//!
//! The paper derives strides by *inspecting objects at run time* (§3.2)
//! because "static analysis is weak" for pointer-based structures, but it
//! cites Wu et al. (PLDI'02) for the many loops whose inter-iteration
//! strides a compiler can prove without profiling: affine index
//! recurrences over arrays. This module proves exactly those — it detects
//! basic induction variables (`i = i + c` once per iteration) and
//! evaluates the per-iteration delta of address computations as closed-form
//! affine expressions over them. The pipeline cross-checks the result
//! against inspection-derived strides; a pointer chase (`n = n.next`)
//! deliberately comes back unproven, which is the paper's motivating case
//! for dynamic inspection.

use std::collections::HashMap;

use spf_ir::cfg::Cfg;
use spf_ir::defuse::{DefSite, UseDef};
use spf_ir::dom::DomTree;
use spf_ir::entities::{BlockId, InstrRef, Reg};
use spf_ir::func::Function;
use spf_ir::loops::{LoopForest, LoopId, LoopInfo};
use spf_ir::{BinOp, Const, Instr};

/// Recursion budget for expression chasing; deep chains are given up on
/// rather than risking pathological walks through move webs.
const MAX_DEPTH: u32 = 16;

struct Ctx<'a> {
    func: &'a Function,
    ud: &'a UseDef,
    info: &'a LoopInfo,
    /// Basic induction variables of the target loop and their per-iteration
    /// steps.
    ivs: HashMap<Reg, i64>,
}

/// Computes statically-proven inter-iteration address strides (in bytes)
/// for the LDG candidate loads of `target`.
///
/// Only loads that execute exactly once per iteration are considered:
/// their block must belong to `target` as its innermost loop and dominate
/// every latch. The returned map is keyed by instruction site; absence
/// means the stride could not be proven statically (e.g. a pointer chase),
/// which is precisely where object inspection earns its keep.
pub fn loop_static_strides(
    func: &Function,
    cfg: &Cfg,
    dom: &DomTree,
    forest: &LoopForest,
    ud: &UseDef,
    target: LoopId,
) -> HashMap<InstrRef, i64> {
    let info = forest.info(target);
    let header = info.header;
    let latches: Vec<BlockId> = func
        .block_ids()
        .filter(|&b| info.contains(b) && cfg.is_reachable(b) && cfg.succs(b).contains(&header))
        .collect();
    if latches.is_empty() {
        return HashMap::new();
    }

    let mut ctx = Ctx {
        func,
        ud,
        info,
        ivs: HashMap::new(),
    };

    // Basic induction variables: exactly one in-loop definition, sitting
    // directly in the target loop (not a nested one) on every path to the
    // latches, whose assigned value is `old + step`.
    for r in 0..func.reg_count() {
        let reg = Reg::new(r);
        let mut in_loop_defs = ud.defs_of(reg).filter_map(|d| match d {
            DefSite::Instr(s) if info.contains(s.block) => Some(s),
            _ => None,
        });
        let (Some(d), None) = (in_loop_defs.next(), in_loop_defs.next()) else {
            continue;
        };
        if forest.innermost(d.block) != Some(target) {
            continue;
        }
        if !latches.iter().all(|&l| dom.dominates(d.block, l)) {
            continue;
        }
        if let Some((1, step)) = eval_update(&ctx, reg, d, MAX_DEPTH) {
            ctx.ivs.insert(reg, step);
        }
    }

    // Stride of each once-per-iteration candidate load.
    let mut out = HashMap::new();
    for b in func.block_ids() {
        if forest.innermost(b) != Some(target)
            || !cfg.is_reachable(b)
            || !latches.iter().all(|&l| dom.dominates(b, l))
        {
            continue;
        }
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            let site = InstrRef::new(b, i);
            let stride = match instr {
                Instr::GetStatic { .. } => Some(0),
                Instr::GetField { obj, .. } => delta(&ctx, site, *obj, MAX_DEPTH),
                Instr::ArrayLen { arr, .. } => delta(&ctx, site, *arr, MAX_DEPTH),
                Instr::ALoad { arr, idx, elem, .. } => (|| {
                    let base = delta(&ctx, site, *arr, MAX_DEPTH)?;
                    let step = delta(&ctx, site, *idx, MAX_DEPTH)?;
                    base.checked_add(step.checked_mul(elem.size() as i64)?)
                })(),
                _ => continue,
            };
            if let Some(s) = stride {
                out.insert(site, s);
            }
        }
    }
    out
}

/// Evaluates the value assigned by `iv`'s unique in-loop definition `d` as
/// an affine expression `coeff * old_iv + offset`; `(1, step)` identifies a
/// basic induction variable.
fn eval_update(ctx: &Ctx, iv: Reg, d: InstrRef, depth: u32) -> Option<(i64, i64)> {
    match ctx.func.instr(d) {
        Instr::Move { src, .. } => affine(ctx, iv, d, d, *src, depth),
        Instr::Bin { op, a, b, .. } => {
            let ea = affine(ctx, iv, d, d, *a, depth)?;
            let eb = affine(ctx, iv, d, d, *b, depth)?;
            combine(*op, ea, eb)
        }
        _ => None,
    }
}

/// Affine value `coeff * old_iv + offset` of register `r` read at `site`,
/// where `old_iv` is the value `iv` had when the current iteration started.
/// `iv_def` is the IV's unique in-loop definition; a read of `iv` itself
/// only denotes `old_iv` if it cannot observe that definition within the
/// current iteration, which we approximate by requiring the read to sit in
/// the definition's block at or before it (the shape `t = iv + c; iv = t`
/// the builder and optimizer emit).
fn affine(
    ctx: &Ctx,
    iv: Reg,
    iv_def: InstrRef,
    site: InstrRef,
    r: Reg,
    depth: u32,
) -> Option<(i64, i64)> {
    if depth == 0 {
        return None;
    }
    if r == iv {
        return if site.block == iv_def.block && site.index <= iv_def.index {
            Some((1, 0))
        } else {
            None
        };
    }
    match ctx.ud.unique_reaching_def(ctx.func, site, r)? {
        DefSite::Param(_) => None,
        DefSite::Instr(s) => match ctx.func.instr(s) {
            Instr::Const { value, .. } => const_as_i64(*value).map(|v| (0, v)),
            Instr::Move { src, .. } => affine(ctx, iv, iv_def, s, *src, depth - 1),
            Instr::Bin { op, a, b, .. } => {
                let ea = affine(ctx, iv, iv_def, s, *a, depth - 1)?;
                let eb = affine(ctx, iv, iv_def, s, *b, depth - 1)?;
                combine(*op, ea, eb)
            }
            _ => None,
        },
    }
}

fn combine(op: BinOp, (ca, ka): (i64, i64), (cb, kb): (i64, i64)) -> Option<(i64, i64)> {
    match op {
        BinOp::Add => Some((ca.checked_add(cb)?, ka.checked_add(kb)?)),
        BinOp::Sub => Some((ca.checked_sub(cb)?, ka.checked_sub(kb)?)),
        // A product is affine only when one side is a pure constant.
        BinOp::Mul if ca == 0 => Some((ka.checked_mul(cb)?, ka.checked_mul(kb)?)),
        BinOp::Mul if cb == 0 => Some((kb.checked_mul(ca)?, kb.checked_mul(ka)?)),
        BinOp::Shl if cb == 0 && (0..63).contains(&kb) => {
            let f = 1i64.checked_shl(kb as u32)?;
            Some((ca.checked_mul(f)?, ka.checked_mul(f)?))
        }
        _ => None,
    }
}

fn const_as_i64(c: Const) -> Option<i64> {
    match c {
        Const::I32(v) => Some(v as i64),
        Const::I64(v) => Some(v),
        _ => None,
    }
}

/// Per-iteration delta of the value of `r` read at `site`: how much the
/// value changes between two consecutive iterations of the target loop.
/// Loop-invariant values have delta 0, a basic IV its step; everything else
/// is chased through its unique reaching definition.
fn delta(ctx: &Ctx, site: InstrRef, r: Reg, depth: u32) -> Option<i64> {
    if depth == 0 {
        return None;
    }
    if let Some(&step) = ctx.ivs.get(&r) {
        return Some(step);
    }
    if ctx.ud.defs_of(r).all(|d| match d {
        DefSite::Param(_) => true,
        DefSite::Instr(s) => !ctx.info.contains(s.block),
    }) {
        return Some(0); // never written inside the loop
    }
    match ctx.ud.unique_reaching_def(ctx.func, site, r)? {
        DefSite::Param(_) => Some(0),
        // A unique def outside the loop reaching an in-loop read means the
        // value is set once before entry: invariant along this chain.
        DefSite::Instr(s) if !ctx.info.contains(s.block) => Some(0),
        DefSite::Instr(s) => match ctx.func.instr(s) {
            Instr::Const { .. } => Some(0), // reassigned to the same constant
            Instr::Move { src, .. } => delta(ctx, s, *src, depth - 1),
            Instr::Convert { src, .. } => delta(ctx, s, *src, depth - 1),
            Instr::Bin { op, a, b, .. } => {
                let op = *op;
                let (a, b) = (*a, *b);
                match op {
                    BinOp::Add => {
                        let da = delta(ctx, s, a, depth - 1)?;
                        let db = delta(ctx, s, b, depth - 1)?;
                        da.checked_add(db)
                    }
                    BinOp::Sub => {
                        let da = delta(ctx, s, a, depth - 1)?;
                        let db = delta(ctx, s, b, depth - 1)?;
                        da.checked_sub(db)
                    }
                    BinOp::Mul => {
                        if let Some(c) = const_value(ctx, s, a, depth - 1) {
                            delta(ctx, s, b, depth - 1)?.checked_mul(c)
                        } else if let Some(c) = const_value(ctx, s, b, depth - 1) {
                            delta(ctx, s, a, depth - 1)?.checked_mul(c)
                        } else {
                            None
                        }
                    }
                    BinOp::Shl => {
                        let c = const_value(ctx, s, b, depth - 1)?;
                        if !(0..63).contains(&c) {
                            return None;
                        }
                        delta(ctx, s, a, depth - 1)?.checked_mul(1i64.checked_shl(c as u32)?)
                    }
                    _ => None,
                }
            }
            _ => None,
        },
    }
}

/// Compile-time constant value of `r` read at `site`, chased through moves.
fn const_value(ctx: &Ctx, site: InstrRef, r: Reg, depth: u32) -> Option<i64> {
    if depth == 0 {
        return None;
    }
    match ctx.ud.unique_reaching_def(ctx.func, site, r)? {
        DefSite::Param(_) => None,
        DefSite::Instr(s) => match ctx.func.instr(s) {
            Instr::Const { value, .. } => const_as_i64(*value),
            Instr::Move { src, .. } => const_value(ctx, s, *src, depth - 1),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::builder::ProgramBuilder;
    use spf_ir::types::{ElemTy, Ty};
    use spf_ir::{CmpOp, MethodId, Program};

    fn strides_of(p: &Program, m: MethodId) -> (HashMap<InstrRef, i64>, &Function) {
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        let ud = UseDef::compute(f, &cfg);
        assert_eq!(forest.len(), 1, "tests use single-loop functions");
        let target = forest.roots()[0];
        (loop_static_strides(f, &cfg, &dom, &forest, &ud, target), f)
    }

    fn load_site(f: &Function, pred: impl Fn(&Instr) -> bool) -> InstrRef {
        f.instr_sites()
            .find(|&s| pred(f.instr(s)))
            .expect("load site")
    }

    #[test]
    fn unit_stride_array_walk() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("aw", &[Ty::Ref, Ty::I32], None);
        let arr = b.param(0);
        let n = b.param(1);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let _ = b.aload(arr, i, ElemTy::I64);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (strides, f) = strides_of(&p, m);
        let site = load_site(f, |i| matches!(i, Instr::ALoad { .. }));
        assert_eq!(strides.get(&site), Some(&8), "i += 1 over i64[] is 8B");
    }

    #[test]
    fn stepped_and_scaled_strides() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("sw", &[Ty::Ref, Ty::I32], None);
        let arr = b.param(0);
        let n = b.param(1);
        b.for_i32(
            0,
            2,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let three = b.const_i32(3);
                let j = b.mul(i, three);
                let _ = b.aload(arr, j, ElemTy::I32);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (strides, f) = strides_of(&p, m);
        let site = load_site(f, |i| matches!(i, Instr::ALoad { .. }));
        // idx = 3i, i += 2 → idx delta 6 elements of 4 bytes.
        assert_eq!(strides.get(&site), Some(&24));
    }

    #[test]
    fn pointer_chase_is_not_proven() {
        let mut pb = ProgramBuilder::new();
        let (_, fields) = pb.add_class("node", &[("next", ElemTy::Ref)]);
        let mut b = pb.function("pc", &[Ty::Ref], None);
        let head = b.param(0);
        let cur = b.new_reg(Ty::Ref);
        b.move_(cur, head);
        b.while_(
            |b| {
                let nil = b.null();
                b.ne(cur, nil)
            },
            |b| {
                let nx = b.getfield(cur, fields[0]);
                b.move_(cur, nx);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (strides, f) = strides_of(&p, m);
        let site = load_site(f, |i| matches!(i, Instr::GetField { .. }));
        assert_eq!(
            strides.get(&site),
            None,
            "linked-list chase needs dynamic inspection"
        );
    }

    #[test]
    fn invariant_field_access_is_zero() {
        let mut pb = ProgramBuilder::new();
        let (_, fields) = pb.add_class("box", &[("v", ElemTy::I64)]);
        let mut b = pb.function("inv", &[Ty::Ref, Ty::I32], None);
        let obj = b.param(0);
        let n = b.param(1);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                let _ = b.getfield(obj, fields[0]);
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (strides, f) = strides_of(&p, m);
        let site = load_site(f, |i| matches!(i, Instr::GetField { .. }));
        assert_eq!(strides.get(&site), Some(&0));
    }

    #[test]
    fn conditional_load_is_skipped() {
        // A load that only executes on some iterations is not once-per-
        // iteration; the analysis must not claim a stride for it.
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("cond", &[Ty::Ref, Ty::I32], None);
        let arr = b.param(0);
        let n = b.param(1);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, i| {
                let two = b.const_i32(2);
                let r = b.rem(i, two);
                let zero = b.const_i32(0);
                let c = b.eq(r, zero);
                b.if_(c, |b| {
                    let _ = b.aload(arr, i, ElemTy::I64);
                });
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (strides, f) = strides_of(&p, m);
        let site = load_site(f, |i| matches!(i, Instr::ALoad { .. }));
        assert_eq!(strides.get(&site), None);
    }
}
