//! Static analyses over the stride-prefetch IR.
//!
//! The paper derives strides *dynamically* by inspecting objects (§3.2)
//! exactly where static analysis is weak, but cites Wu et al. (PLDI'02) for
//! the many loops whose inter-iteration strides a compiler can prove
//! statically. This crate is that static counterpoint, three analyses on
//! one forward-dataflow engine over `spf-ir`'s CFG/dominator/def-use
//! infrastructure:
//!
//! - [`definite_init`] — a must-analysis proving every register use is
//!   assigned on all paths (the structural verifier only checks ranges);
//! - [`speclint`] — a taint analysis proving `SpecLoad` speculation never
//!   leaks into architectural state, plus prefetch-placement and
//!   guarded-policy conformance checks;
//! - [`scev`] — SCEV-lite induction-variable and affine-recurrence
//!   analysis producing statically-proven inter-iteration strides, which
//!   the pipeline cross-checks against object inspection — and, in
//!   static-first mode, uses to emit prefetches without inspecting;
//! - [`provenance`] — a lint over the static/dynamic/hybrid tags the
//!   static-first pipeline assigns to every emitted prefetch site.
//!
//! The crate deliberately depends only on `spf-ir`: both the prefetch
//! pipeline (`spf-core`) and the VM (`spf-vm`) call into it.

pub mod dataflow;
pub mod definite_init;
pub mod provenance;
pub mod scev;
pub mod speclint;

pub use provenance::{Provenance, ProvenanceConfig, SiteProvenance};

use spf_ir::cfg::Cfg;
use spf_ir::dom::DomTree;
use spf_ir::entities::BlockId;
use spf_ir::func::Function;
use spf_ir::loops::LoopForest;

/// One lint violation, anchored to an instruction site (or a block's
/// terminator when `index` is `None`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Block containing the offending instruction or terminator.
    pub block: BlockId,
    /// Instruction index within the block; `None` for the terminator.
    pub index: Option<u32>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    pub(crate) fn at(block: BlockId, index: Option<usize>, message: String) -> Self {
        Finding {
            block,
            index: index.map(|i| u32::try_from(i).expect("instruction index overflow")),
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}:{}: {}", self.block, i, self.message),
            None => write!(f, "{}:term: {}", self.block, self.message),
        }
    }
}

/// The prefetch-kind discipline the speculation lint checks generated code
/// against. Mirrors `spf-core`'s `GuardedPolicy` resolved against the
/// simulated processor (this crate cannot depend on `spf-core` without a
/// cycle, so the caller maps policy + processor to one of these).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyCheck {
    /// Every `Prefetch` must map to the hardware instruction.
    AllHardware,
    /// Every `Prefetch` must be a guarded load.
    AllGuarded,
    /// Auto policy on a processor that drops prefetches on TLB misses
    /// (paper §3.3, Pentium 4): dereference-based prefetches — those whose
    /// address comes from a speculative load — must be guarded.
    AutoDrops,
    /// Auto policy on a processor that keeps prefetches on TLB misses
    /// (Athlon MP): no static constraint on the chosen kind.
    AutoKeeps,
}

/// Configuration for [`lint`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LintConfig {
    /// Prefetch-kind discipline to enforce.
    pub policy: PolicyCheck,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            policy: PolicyCheck::AutoKeeps,
        }
    }
}

/// Runs the full lint over one function: definite initialization plus the
/// speculation-safety and placement checks. Returns every violation found;
/// an empty vector means the function is clean.
pub fn lint(func: &Function, config: &LintConfig) -> Vec<Finding> {
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);
    let mut findings = definite_init::check(func, &cfg);
    findings.extend(speclint::check(func, &cfg, &forest, config));
    findings
}
