//! Speculation-safety lint.
//!
//! `SpecLoad` yields a *speculative* reference: it silently produces null
//! for invalid addresses instead of trapping, so its result must never
//! influence architectural state. The code generator only feeds such values
//! into `PrefetchAddr` operands and further `SpecLoad` chains (paper §3.3's
//! dereference-based prefetch shapes); this lint proves that discipline
//! survives every later rewrite. It also checks placement — a prefetch with
//! no enclosing loop can never be stride-driven — and conformance with the
//! configured guarded-load policy.

use spf_ir::bitset::BitSet;
use spf_ir::cfg::Cfg;
use spf_ir::func::Function;
use spf_ir::loops::LoopForest;
use spf_ir::{Instr, PrefetchAddr, PrefetchKind};

use crate::dataflow::{forward, Join};
use crate::{Finding, LintConfig, PolicyCheck};

/// Whether any register the address expression reads is tainted.
fn addr_tainted(addr: &PrefetchAddr, taint: &BitSet) -> bool {
    let mut used = Vec::new();
    addr.uses(&mut used);
    used.iter().any(|r| taint.contains(r.index()))
}

/// Runs the speculation-safety, placement, and policy checks.
pub fn check(func: &Function, cfg: &Cfg, forest: &LoopForest, config: &LintConfig) -> Vec<Finding> {
    // Taint propagation (may-analysis): a register is tainted if some path
    // assigns it a value derived from a SpecLoad result. Redefinition from
    // untainted operands cleans the register.
    let bits = func.reg_count();
    let entry = BitSet::new(bits);
    let mut used = Vec::new();
    let states = forward(func, cfg, bits, Join::Union, &entry, |state, b| {
        let mut used = Vec::new();
        for instr in &func.block(b).instrs {
            match instr {
                Instr::SpecLoad { dst, .. } => {
                    state.insert(dst.index());
                }
                _ => {
                    if let Some(dst) = instr.dst() {
                        used.clear();
                        instr.uses(&mut used);
                        if used.iter().any(|r| state.contains(r.index())) {
                            state.insert(dst.index());
                        } else {
                            state.remove(dst.index());
                        }
                    }
                }
            }
        }
    });

    let mut findings = Vec::new();
    for &b in cfg.rpo() {
        let mut taint = states.block_in[b.index()].clone();
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            match instr {
                // Speculative values may feed prefetch/spec-load addresses.
                Instr::Prefetch { addr, kind } => {
                    if forest.innermost(b).is_none() {
                        findings.push(Finding::at(
                            b,
                            Some(i),
                            format!("{}: prefetch outside any loop", func.name()),
                        ));
                    }
                    let deref = addr_tainted(addr, &taint);
                    let bad_kind = match config.policy {
                        PolicyCheck::AllHardware => *kind != PrefetchKind::Hardware,
                        PolicyCheck::AllGuarded => *kind != PrefetchKind::GuardedLoad,
                        PolicyCheck::AutoDrops => deref && *kind != PrefetchKind::GuardedLoad,
                        PolicyCheck::AutoKeeps => false,
                    };
                    if bad_kind {
                        findings.push(Finding::at(
                            b,
                            Some(i),
                            format!(
                                "{}: {kind} prefetch violates the {:?} policy",
                                func.name(),
                                config.policy
                            ),
                        ));
                    }
                }
                Instr::SpecLoad { dst, .. } => {
                    if forest.innermost(b).is_none() {
                        findings.push(Finding::at(
                            b,
                            Some(i),
                            format!("{}: speculative load outside any loop", func.name()),
                        ));
                    }
                    taint.insert(dst.index());
                }
                // Everything else must not read speculative values: stores
                // and calls would leak them into architectural state, loads
                // through them could trap, arithmetic forwards them to
                // consumers that might.
                _ => {
                    used.clear();
                    instr.uses(&mut used);
                    for &r in &used {
                        if taint.contains(r.index()) {
                            findings.push(Finding::at(
                                b,
                                Some(i),
                                format!(
                                    "{}: speculative value {r} leaks into non-speculative use",
                                    func.name()
                                ),
                            ));
                        }
                    }
                    if let Some(dst) = instr.dst() {
                        if used.iter().any(|r| taint.contains(r.index())) {
                            taint.insert(dst.index());
                        } else {
                            taint.remove(dst.index());
                        }
                    }
                }
            }
        }
        used.clear();
        func.block(b).term.uses(&mut used);
        for &r in &used {
            if taint.contains(r.index()) {
                findings.push(Finding::at(
                    b,
                    None,
                    format!(
                        "{}: speculative value {r} reaches a terminator",
                        func.name()
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::dom::DomTree;
    use spf_ir::entities::Reg;
    use spf_ir::types::{Const, Ty};
    use spf_ir::Terminator;

    /// Builds `fn f(head: ref, n: i32)` with one counted loop whose body is
    /// filled by `body`, returning the function and the body's registers
    /// `(head, i)`.
    fn loop_fn(body: impl FnOnce(&mut Function, spf_ir::BlockId, Reg)) -> Function {
        let mut f = Function::with_signature("t", &[Ty::Ref, Ty::I32], None);
        let head = f.params().next().unwrap();
        let n = f.params().nth(1).unwrap();
        let i = f.new_reg(Ty::I32);
        let cond = f.new_reg(Ty::I32);
        let one = f.new_reg(Ty::I32);
        let entry = f.entry();
        let header = f.add_block();
        let bodyb = f.add_block();
        let exit = f.add_block();
        {
            let blk = f.block_mut(entry);
            blk.instrs.push(Instr::Const {
                dst: i,
                value: Const::I32(0),
            });
            blk.instrs.push(Instr::Const {
                dst: one,
                value: Const::I32(1),
            });
            blk.term = Terminator::Jump(header);
        }
        {
            let blk = f.block_mut(header);
            blk.instrs.push(Instr::Cmp {
                dst: cond,
                op: spf_ir::CmpOp::Lt,
                a: i,
                b: n,
            });
            blk.term = Terminator::Branch {
                cond,
                then_bb: bodyb,
                else_bb: exit,
            };
        }
        body(&mut f, bodyb, head);
        {
            let blk = f.block_mut(bodyb);
            blk.instrs.push(Instr::Bin {
                dst: i,
                op: spf_ir::BinOp::Add,
                a: i,
                b: one,
            });
            blk.term = Terminator::Jump(header);
        }
        f.block_mut(exit).term = Terminator::Return(None);
        f
    }

    fn run(f: &Function, policy: PolicyCheck) -> Vec<Finding> {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        check(f, &cfg, &forest, &LintConfig { policy })
    }

    #[test]
    fn codegen_shape_is_clean() {
        // The paper's dereference-based shape: spec-load the next node's
        // link, prefetch through it. Speculation only reaches prefetches.
        let mut spec = Reg::new(0);
        let f = loop_fn(|f, bodyb, head| {
            spec = f.new_reg(Ty::Ref);
            let blk = f.block_mut(bodyb);
            blk.instrs.push(Instr::SpecLoad {
                dst: spec,
                addr: PrefetchAddr::FieldOf {
                    base: head,
                    delta: 8,
                },
            });
            blk.instrs.push(Instr::Prefetch {
                addr: PrefetchAddr::FieldOf {
                    base: spec,
                    delta: 0,
                },
                kind: PrefetchKind::GuardedLoad,
            });
        });
        assert!(run(&f, PolicyCheck::AutoDrops).is_empty());
        assert!(run(&f, PolicyCheck::AllGuarded).is_empty());
    }

    #[test]
    fn spec_value_to_store_is_flagged() {
        let f = loop_fn(|f, bodyb, head| {
            let spec = f.new_reg(Ty::Ref);
            let dummy = f.new_reg(Ty::I32);
            let blk = f.block_mut(bodyb);
            blk.instrs.push(Instr::SpecLoad {
                dst: spec,
                addr: PrefetchAddr::FieldOf {
                    base: head,
                    delta: 8,
                },
            });
            blk.instrs.push(Instr::Const {
                dst: dummy,
                value: Const::I32(7),
            });
            // Architectural leak: storing through the speculative reference.
            blk.instrs.push(Instr::AStore {
                arr: spec,
                idx: dummy,
                src: dummy,
                elem: spf_ir::ElemTy::I32,
            });
        });
        let findings = run(&f, PolicyCheck::AutoKeeps);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("leaks"));
    }

    #[test]
    fn taint_propagates_through_moves() {
        let f = loop_fn(|f, bodyb, head| {
            let spec = f.new_reg(Ty::Ref);
            let alias = f.new_reg(Ty::Ref);
            let blk = f.block_mut(bodyb);
            blk.instrs.push(Instr::SpecLoad {
                dst: spec,
                addr: PrefetchAddr::FieldOf {
                    base: head,
                    delta: 8,
                },
            });
            blk.instrs.push(Instr::Move {
                dst: alias,
                src: spec,
            });
            // Loading through the alias could trap.
            let v = f.new_reg(Ty::I32);
            f.block_mut(bodyb)
                .instrs
                .push(Instr::ArrayLen { dst: v, arr: alias });
        });
        let findings = run(&f, PolicyCheck::AutoKeeps);
        // Two findings: the Move itself leaks, and the ArrayLen through the
        // alias leaks again.
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn prefetch_outside_loop_is_flagged() {
        let mut f = Function::with_signature("noloop", &[Ty::Ref], None);
        let head = f.params().next().unwrap();
        let entry = f.entry();
        f.block_mut(entry).instrs.push(Instr::Prefetch {
            addr: PrefetchAddr::FieldOf {
                base: head,
                delta: 0,
            },
            kind: PrefetchKind::Hardware,
        });
        f.block_mut(entry).term = Terminator::Return(None);
        let findings = run(&f, PolicyCheck::AutoKeeps);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("outside any loop"));
    }

    #[test]
    fn policy_conformance() {
        let build = |kind: PrefetchKind| {
            loop_fn(move |f, bodyb, head| {
                let spec = f.new_reg(Ty::Ref);
                let blk = f.block_mut(bodyb);
                blk.instrs.push(Instr::SpecLoad {
                    dst: spec,
                    addr: PrefetchAddr::FieldOf {
                        base: head,
                        delta: 8,
                    },
                });
                blk.instrs.push(Instr::Prefetch {
                    addr: PrefetchAddr::FieldOf {
                        base: spec,
                        delta: 0,
                    },
                    kind,
                });
            })
        };
        let hw = build(PrefetchKind::Hardware);
        let guarded = build(PrefetchKind::GuardedLoad);
        // A dereference-based hardware prefetch would be dropped on the TLB
        // miss it is supposed to cover (paper §3.3).
        assert_eq!(run(&hw, PolicyCheck::AutoDrops).len(), 1);
        assert!(run(&hw, PolicyCheck::AutoKeeps).is_empty());
        assert_eq!(run(&hw, PolicyCheck::AllGuarded).len(), 1);
        assert!(run(&guarded, PolicyCheck::AllGuarded).is_empty());
        assert_eq!(run(&guarded, PolicyCheck::AllHardware).len(), 1);
    }
}
