//! `DEOPT_events.jsonl` — the per-cell adaptive-reprofiling event record,
//! and the aggregation behind `spf-trace-report deopt-summary`.
//!
//! ROADMAP open item 1 is a diagnosis problem: db/ADAPTIVE blows up to
//! ~16.5M cycles because a single deopt with zero recompiles strands the
//! cell in the interpreter. The raw evidence is already in the trace
//! stream ([`TraceEvent::SiteStale`], [`TraceEvent::Deopt`],
//! [`TraceEvent::Recompile`]), but scattered across per-run JSONL dumps.
//! This module extracts those events per cell, round-trips them through a
//! JSONL file, and aggregates them into one row per cell with a
//! `stranded` column: methods that deopted more often than they
//! recompiled, i.e. methods currently stuck in the interpreter.
//!
//! Emitter and parser are hand-rolled like `summary` (no serde in this
//! build environment) and only promise to round-trip each other's output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::TraceEvent;

/// One adaptive-reprofiling event of one cell (run).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeoptRow {
    /// The run key, `workload/mode/processor`.
    pub run: String,
    /// Event tag: `site_stale`, `deopt`, or `recompile`.
    pub tag: String,
    /// Method index in the program.
    pub method: u32,
    /// Compilation generation the event refers to.
    pub generation: u32,
    /// Staleness reason for `site_stale` rows, `-` otherwise.
    pub reason: String,
    /// Simulated cycle of the event.
    pub now: u64,
}

/// Extracts the adaptive-reprofiling rows of one run from its event
/// stream, in stream order.
pub fn rows(run: &str, events: &[TraceEvent]) -> Vec<DeoptRow> {
    events
        .iter()
        .filter_map(|ev| {
            let (tag, method, generation, reason, now) = match *ev {
                TraceEvent::SiteStale {
                    method,
                    generation,
                    reason,
                    now,
                } => ("site_stale", method, generation, reason.to_string(), now),
                TraceEvent::Deopt {
                    method,
                    generation,
                    now,
                } => ("deopt", method, generation, "-".to_string(), now),
                TraceEvent::Recompile {
                    method,
                    generation,
                    now,
                } => ("recompile", method, generation, "-".to_string(), now),
                _ => return None,
            };
            Some(DeoptRow {
                run: run.to_string(),
                tag: tag.to_string(),
                method,
                generation,
                reason,
                now,
            })
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders rows as `DEOPT_events.jsonl` (one object per line).
pub fn emit(rows: &[DeoptRow]) -> String {
    let mut s = String::new();
    for r in rows {
        let _ = writeln!(
            s,
            "{{\"run\": \"{}\", \"tag\": \"{}\", \"method\": {}, \"generation\": {}, \
             \"reason\": \"{}\", \"now\": {}}}",
            escape(&r.run),
            escape(&r.tag),
            r.method,
            r.generation,
            escape(&r.reason),
            r.now,
        );
    }
    s
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Parses a file produced by [`emit`] back into its rows. Lines whose tag
/// is not an adaptive-reprofiling event are skipped, so a full
/// `events.jsonl` dump also parses (its rows get run key `-`).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<DeoptRow>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !(line.starts_with('{') && line.contains("\"tag\"")) {
            continue;
        }
        let tag = field(line, "tag").ok_or_else(|| format!("missing tag in line: {line}"))?;
        if !matches!(tag, "site_stale" | "deopt" | "recompile") {
            continue;
        }
        let num = |key: &str| -> Result<u64, String> {
            field(line, key)
                .ok_or_else(|| format!("missing field {key} in line: {line}"))?
                .parse()
                .map_err(|e| format!("bad {key} in {line}: {e}"))
        };
        out.push(DeoptRow {
            run: field(line, "run").unwrap_or("-").to_string(),
            tag: tag.to_string(),
            method: num("method")? as u32,
            generation: num("generation")? as u32,
            reason: field(line, "reason").unwrap_or("-").to_string(),
            now: num("now")?,
        });
    }
    Ok(out)
}

/// One cell's aggregated adaptive-reprofiling activity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeoptSummary {
    /// The run key, `workload/mode/processor`.
    pub run: String,
    /// `SiteStale` verdicts observed.
    pub site_stale: u64,
    /// Staleness verdicts caused by a GC moving objects.
    pub gc_moved: u64,
    /// Staleness verdicts caused by the useless-prefetch ratio.
    pub useless_ratio: u64,
    /// Deoptimizations (compiled body discarded).
    pub deopts: u64,
    /// Recompilations after re-inspection.
    pub recompiles: u64,
    /// Distinct methods with at least one event.
    pub methods: u64,
    /// Methods with more deopts than recompiles — currently stranded in
    /// the interpreter. A nonzero count on a slow ADAPTIVE cell is the
    /// db-blow-up signature.
    pub stranded: u64,
    /// Simulated cycle of the cell's first event.
    pub first_now: u64,
    /// Simulated cycle of the cell's last event.
    pub last_now: u64,
}

/// Aggregates rows into one summary per run, in first-seen run order.
pub fn aggregate(rows: &[DeoptRow]) -> Vec<DeoptSummary> {
    let mut order: Vec<String> = Vec::new();
    let mut by_run: BTreeMap<String, Vec<&DeoptRow>> = BTreeMap::new();
    for r in rows {
        if !by_run.contains_key(&r.run) {
            order.push(r.run.clone());
        }
        by_run.entry(r.run.clone()).or_default().push(r);
    }
    order
        .into_iter()
        .map(|run| {
            let rs = &by_run[&run];
            let mut s = DeoptSummary {
                run,
                site_stale: 0,
                gc_moved: 0,
                useless_ratio: 0,
                deopts: 0,
                recompiles: 0,
                methods: 0,
                stranded: 0,
                first_now: u64::MAX,
                last_now: 0,
            };
            // (deopts, recompiles) per method, in method order.
            let mut per_method: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
            for r in rs {
                match r.tag.as_str() {
                    "site_stale" => {
                        s.site_stale += 1;
                        match r.reason.as_str() {
                            "gc-moved" => s.gc_moved += 1,
                            "useless-ratio" => s.useless_ratio += 1,
                            _ => {}
                        }
                        per_method.entry(r.method).or_default();
                    }
                    "deopt" => {
                        s.deopts += 1;
                        per_method.entry(r.method).or_default().0 += 1;
                    }
                    "recompile" => {
                        s.recompiles += 1;
                        per_method.entry(r.method).or_default().1 += 1;
                    }
                    _ => {}
                }
                s.first_now = s.first_now.min(r.now);
                s.last_now = s.last_now.max(r.now);
            }
            s.methods = per_method.len() as u64;
            s.stranded = per_method.values().filter(|(d, rc)| d > rc).count() as u64;
            if s.first_now == u64::MAX {
                s.first_now = 0;
            }
            s
        })
        .collect()
}

/// Renders the per-cell table (one line per run plus a grand total).
pub fn render(summaries: &[DeoptSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>6} {:>9} {:>8} {:>7} {:>10} {:>8} {:>9}",
        "run", "stale", "gc-moved", "useless", "deopts", "recompiles", "methods", "stranded"
    );
    let mut t = [0u64; 6];
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<36} {:>6} {:>9} {:>8} {:>7} {:>10} {:>8} {:>9}{}",
            s.run,
            s.site_stale,
            s.gc_moved,
            s.useless_ratio,
            s.deopts,
            s.recompiles,
            s.methods,
            s.stranded,
            if s.stranded > 0 { "  <- stranded" } else { "" },
        );
        t[0] += s.site_stale;
        t[1] += s.gc_moved;
        t[2] += s.useless_ratio;
        t[3] += s.deopts;
        t[4] += s.recompiles;
        t[5] += s.stranded;
    }
    let _ = writeln!(
        out,
        "\ntotal: {} cell(s), {} stale ({} gc-moved, {} useless-ratio), \
         {} deopt(s), {} recompile(s), {} stranded method(s)",
        summaries.len(),
        t[0],
        t[1],
        t[2],
        t[3],
        t[4],
        t[5],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SiteId, StaleReason};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SiteStale {
                method: 2,
                generation: 0,
                reason: StaleReason::GcMoved,
                now: 100,
            },
            TraceEvent::Deopt {
                method: 2,
                generation: 0,
                now: 101,
            },
            TraceEvent::Recompile {
                method: 2,
                generation: 1,
                now: 500,
            },
            TraceEvent::SiteStale {
                method: 5,
                generation: 0,
                reason: StaleReason::UselessRatio,
                now: 900,
            },
            TraceEvent::Deopt {
                method: 5,
                generation: 0,
                now: 901,
            },
            // An unrelated runtime event that must be filtered out.
            TraceEvent::SwpfIssued {
                site: SiteId(0),
                line: 0x40,
                now: 950,
            },
        ]
    }

    #[test]
    fn rows_filter_the_adaptive_events() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        assert_eq!(rs.len(), 5);
        assert_eq!(rs[0].tag, "site_stale");
        assert_eq!(rs[0].reason, "gc-moved");
        assert_eq!(rs[2].tag, "recompile");
        assert_eq!(rs[2].generation, 1);
    }

    #[test]
    fn emit_parse_round_trip() {
        let rs = rows("db/ADAPTIVE/Athlon MP", &sample_events());
        let parsed = parse(&emit(&rs)).unwrap();
        assert_eq!(parsed, rs);
    }

    #[test]
    fn parse_skips_foreign_tags_and_flags_bad_rows() {
        let text = "{\"tag\": \"swpf_issued\", \"site\": 0, \"line\": 64, \"now\": 1}\n\
                    {\"tag\": \"deopt\", \"method\": 1, \"generation\": 0, \"now\": 9}\n";
        let rs = parse(text).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].run, "-", "events.jsonl rows have no run key");
        assert!(parse("{\"tag\": \"deopt\", \"method\": 1}").is_err());
    }

    #[test]
    fn aggregate_counts_stranded_methods() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        let sums = aggregate(&rs);
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert_eq!(s.site_stale, 2);
        assert_eq!(s.gc_moved, 1);
        assert_eq!(s.useless_ratio, 1);
        assert_eq!(s.deopts, 2);
        assert_eq!(s.recompiles, 1);
        assert_eq!(s.methods, 2);
        assert_eq!(s.stranded, 1, "method 5 deopted and never came back");
        assert_eq!(s.first_now, 100);
        assert_eq!(s.last_now, 901);
    }

    #[test]
    fn aggregate_keeps_first_seen_run_order() {
        let mut rs = rows("b", &sample_events());
        rs.extend(rows("a", &sample_events()));
        let sums = aggregate(&rs);
        assert_eq!(sums[0].run, "b");
        assert_eq!(sums[1].run, "a");
    }

    #[test]
    fn render_marks_stranded_cells() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        let table = render(&aggregate(&rs));
        assert!(table.contains("<- stranded"), "{table}");
        assert!(table.contains("1 stranded method(s)"), "{table}");
    }
}
