//! `DEOPT_events.jsonl` — the per-cell adaptive-reprofiling event record,
//! and the aggregation behind `spf-trace-report deopt-summary`.
//!
//! ROADMAP open item 1 was a diagnosis problem: db/ADAPTIVE blew up to
//! ~16.5M cycles because a single deopt with zero recompiles stranded the
//! cell in the interpreter. The raw evidence is in the trace stream
//! ([`TraceEvent::SiteStale`], [`TraceEvent::Deopt`],
//! [`TraceEvent::Recompile`], and — since deopt went per-loop —
//! [`TraceEvent::LoopInvalidated`] / [`TraceEvent::LoopRepatched`]), but
//! scattered across per-run JSONL dumps. This module extracts those
//! events per cell, round-trips them through a JSONL file, and aggregates
//! them into one row per cell with a `stranded` column counting *loops*
//! (not methods) that were invalidated more often than they were
//! repatched, i.e. loops currently running with their prefetch sites
//! patched out. Legacy whole-method deopt/recompile events participate as
//! the pseudo-loop `-` of their method, so old dumps still aggregate.
//!
//! Emitter and parser are hand-rolled like `summary` (no serde in this
//! build environment) and only promise to round-trip each other's output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::TraceEvent;

/// One adaptive-reprofiling event of one cell (run).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeoptRow {
    /// The run key, `workload/mode/processor`.
    pub run: String,
    /// Event tag: `site_stale`, `deopt`, `recompile`, `loop_invalidated`,
    /// or `loop_repatched`.
    pub tag: String,
    /// Method index in the program.
    pub method: u32,
    /// Loop header block index for per-loop rows, `-` for method-level
    /// rows (and for the straight-line pseudo-loop, rendered as `*`).
    pub loop_header: String,
    /// Compilation generation the event refers to.
    pub generation: u32,
    /// Staleness reason for `site_stale`/`loop_invalidated` rows, `-`
    /// otherwise.
    pub reason: String,
    /// Simulated cycle of the event.
    pub now: u64,
}

fn loop_key(header: u32) -> String {
    if header == u32::MAX {
        "*".to_string()
    } else {
        header.to_string()
    }
}

/// Extracts the adaptive-reprofiling rows of one run from its event
/// stream, in stream order.
pub fn rows(run: &str, events: &[TraceEvent]) -> Vec<DeoptRow> {
    events
        .iter()
        .filter_map(|ev| {
            let (tag, method, lp, generation, reason, now) = match *ev {
                TraceEvent::SiteStale {
                    method,
                    generation,
                    reason,
                    now,
                } => (
                    "site_stale",
                    method,
                    "-".to_string(),
                    generation,
                    reason.to_string(),
                    now,
                ),
                TraceEvent::Deopt {
                    method,
                    generation,
                    now,
                } => (
                    "deopt",
                    method,
                    "-".to_string(),
                    generation,
                    "-".to_string(),
                    now,
                ),
                TraceEvent::Recompile {
                    method,
                    generation,
                    now,
                } => (
                    "recompile",
                    method,
                    "-".to_string(),
                    generation,
                    "-".to_string(),
                    now,
                ),
                TraceEvent::LoopInvalidated {
                    method,
                    loop_header,
                    generation,
                    reason,
                    now,
                } => (
                    "loop_invalidated",
                    method,
                    loop_key(loop_header),
                    generation,
                    reason.to_string(),
                    now,
                ),
                TraceEvent::LoopRepatched {
                    method,
                    loop_header,
                    generation,
                    now,
                } => (
                    "loop_repatched",
                    method,
                    loop_key(loop_header),
                    generation,
                    "-".to_string(),
                    now,
                ),
                _ => return None,
            };
            Some(DeoptRow {
                run: run.to_string(),
                tag: tag.to_string(),
                method,
                loop_header: lp,
                generation,
                reason,
                now,
            })
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders rows as `DEOPT_events.jsonl` (one object per line).
pub fn emit(rows: &[DeoptRow]) -> String {
    let mut s = String::new();
    for r in rows {
        let _ = writeln!(
            s,
            "{{\"run\": \"{}\", \"tag\": \"{}\", \"method\": {}, \"loop\": \"{}\", \
             \"generation\": {}, \"reason\": \"{}\", \"now\": {}}}",
            escape(&r.run),
            escape(&r.tag),
            r.method,
            escape(&r.loop_header),
            r.generation,
            escape(&r.reason),
            r.now,
        );
    }
    s
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Parses a file produced by [`emit`] back into its rows. Lines whose tag
/// is not an adaptive-reprofiling event are skipped, so a full
/// `events.jsonl` dump also parses (its rows get run key `-`). Rows from
/// pre-per-loop dumps have no `loop` field and get `-`.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<DeoptRow>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !(line.starts_with('{') && line.contains("\"tag\"")) {
            continue;
        }
        let tag = field(line, "tag").ok_or_else(|| format!("missing tag in line: {line}"))?;
        if !matches!(
            tag,
            "site_stale" | "deopt" | "recompile" | "loop_invalidated" | "loop_repatched"
        ) {
            continue;
        }
        let num = |key: &str| -> Result<u64, String> {
            field(line, key)
                .ok_or_else(|| format!("missing field {key} in line: {line}"))?
                .parse()
                .map_err(|e| format!("bad {key} in {line}: {e}"))
        };
        out.push(DeoptRow {
            run: field(line, "run").unwrap_or("-").to_string(),
            tag: tag.to_string(),
            method: num("method")? as u32,
            loop_header: field(line, "loop").unwrap_or("-").to_string(),
            generation: num("generation")? as u32,
            reason: field(line, "reason").unwrap_or("-").to_string(),
            now: num("now")?,
        });
    }
    Ok(out)
}

/// One cell's aggregated adaptive-reprofiling activity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeoptSummary {
    /// The run key, `workload/mode/processor`.
    pub run: String,
    /// `SiteStale` verdicts observed (legacy whole-method staleness).
    pub site_stale: u64,
    /// Staleness verdicts (method- or loop-level) caused by a GC moving
    /// objects.
    pub gc_moved: u64,
    /// Staleness verdicts caused by the useless-prefetch ratio.
    pub useless_ratio: u64,
    /// Whole-method deoptimizations (compiled body discarded).
    pub deopts: u64,
    /// Whole-method recompilations after re-inspection.
    pub recompiles: u64,
    /// Per-loop invalidations (prefetch sites patched to no-ops, body
    /// kept live).
    pub loop_invalidated: u64,
    /// Per-loop repatches (stale loops re-inspected in place).
    pub loop_repatched: u64,
    /// Distinct methods with at least one event.
    pub methods: u64,
    /// Loops (keyed method+loop; whole-method events count as the `-`
    /// pseudo-loop of their method) invalidated more often than
    /// repatched — currently running with their prefetch sites patched
    /// out. A nonzero count on a slow ADAPTIVE cell is the db-blow-up
    /// signature.
    pub stranded: u64,
    /// Simulated cycle of the cell's first event.
    pub first_now: u64,
    /// Simulated cycle of the cell's last event.
    pub last_now: u64,
}

/// Aggregates rows into one summary per run, in first-seen run order.
pub fn aggregate(rows: &[DeoptRow]) -> Vec<DeoptSummary> {
    let mut order: Vec<String> = Vec::new();
    let mut by_run: BTreeMap<String, Vec<&DeoptRow>> = BTreeMap::new();
    for r in rows {
        if !by_run.contains_key(&r.run) {
            order.push(r.run.clone());
        }
        by_run.entry(r.run.clone()).or_default().push(r);
    }
    order
        .into_iter()
        .map(|run| {
            let rs = &by_run[&run];
            let mut s = DeoptSummary {
                run,
                site_stale: 0,
                gc_moved: 0,
                useless_ratio: 0,
                deopts: 0,
                recompiles: 0,
                loop_invalidated: 0,
                loop_repatched: 0,
                methods: 0,
                stranded: 0,
                first_now: u64::MAX,
                last_now: 0,
            };
            // (invalidations, repatches) per (method, loop), in key order.
            // Whole-method deopt/recompile rows land on pseudo-loop `-`.
            let mut per_loop: BTreeMap<(u32, String), (u64, u64)> = BTreeMap::new();
            let mut methods: BTreeMap<u32, ()> = BTreeMap::new();
            for r in rs {
                methods.insert(r.method, ());
                let key = (r.method, r.loop_header.clone());
                match r.tag.as_str() {
                    "site_stale" => {
                        s.site_stale += 1;
                        per_loop.entry(key).or_default();
                    }
                    "deopt" => {
                        s.deopts += 1;
                        per_loop.entry(key).or_default().0 += 1;
                    }
                    "recompile" => {
                        s.recompiles += 1;
                        per_loop.entry(key).or_default().1 += 1;
                    }
                    "loop_invalidated" => {
                        s.loop_invalidated += 1;
                        per_loop.entry(key).or_default().0 += 1;
                    }
                    "loop_repatched" => {
                        s.loop_repatched += 1;
                        per_loop.entry(key).or_default().1 += 1;
                    }
                    _ => {}
                }
                if matches!(r.tag.as_str(), "site_stale" | "loop_invalidated") {
                    match r.reason.as_str() {
                        "gc-moved" => s.gc_moved += 1,
                        "useless-ratio" => s.useless_ratio += 1,
                        _ => {}
                    }
                }
                s.first_now = s.first_now.min(r.now);
                s.last_now = s.last_now.max(r.now);
            }
            s.methods = methods.len() as u64;
            s.stranded = per_loop.values().filter(|(inv, rp)| inv > rp).count() as u64;
            if s.first_now == u64::MAX {
                s.first_now = 0;
            }
            s
        })
        .collect()
}

/// Renders the per-cell table (one line per run plus a grand total).
pub fn render(summaries: &[DeoptSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>6} {:>9} {:>8} {:>7} {:>10} {:>9} {:>9} {:>8} {:>9}",
        "run",
        "stale",
        "gc-moved",
        "useless",
        "deopts",
        "recompiles",
        "loop-inv",
        "loop-rep",
        "methods",
        "stranded"
    );
    let mut t = [0u64; 8];
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<36} {:>6} {:>9} {:>8} {:>7} {:>10} {:>9} {:>9} {:>8} {:>9}{}",
            s.run,
            s.site_stale,
            s.gc_moved,
            s.useless_ratio,
            s.deopts,
            s.recompiles,
            s.loop_invalidated,
            s.loop_repatched,
            s.methods,
            s.stranded,
            if s.stranded > 0 { "  <- stranded" } else { "" },
        );
        t[0] += s.site_stale;
        t[1] += s.gc_moved;
        t[2] += s.useless_ratio;
        t[3] += s.deopts;
        t[4] += s.recompiles;
        t[5] += s.loop_invalidated;
        t[6] += s.loop_repatched;
        t[7] += s.stranded;
    }
    let _ = writeln!(
        out,
        "\ntotal: {} cell(s), {} stale ({} gc-moved, {} useless-ratio), \
         {} deopt(s), {} recompile(s), {} loop invalidation(s), \
         {} loop repatch(es), {} stranded loop(s)",
        summaries.len(),
        t[0],
        t[1],
        t[2],
        t[3],
        t[4],
        t[5],
        t[6],
        t[7],
    );
    out
}

/// Reconciles the per-loop stranding counts of a `DEOPT_events.jsonl`
/// aggregation against the per-mode `stranded` field of a
/// `SERVE_summary.json`. The deopt run key is `workload/mode/processor`,
/// so runs are bucketed by their middle component and each bucket's
/// stranded-loop total is compared with the serve row of the same mode.
/// Chaos rows (which carry `stranded_final`, not `stranded`) are ignored.
/// Returns the report text and the number of mismatching modes.
///
/// # Errors
///
/// Returns a message when `serve_text` contains no mode rows (wrong
/// file), or a row's `stranded` field is malformed.
pub fn reconcile(summaries: &[DeoptSummary], serve_text: &str) -> Result<(String, u64), String> {
    let mut serve: Vec<(String, u64)> = Vec::new();
    for line in serve_text.lines() {
        let line = line.trim();
        // Mode rows carry `stranded`; chaos rows carry `stranded_final`
        // and `post_p99_ratio_milli` instead.
        if !line.contains("\"mode\"") || line.contains("\"post_p99_ratio_milli\"") {
            continue;
        }
        let Some(mode) = field(line, "mode") else {
            continue;
        };
        let Some(stranded) = field(line, "stranded") else {
            continue;
        };
        let stranded: u64 = stranded
            .parse()
            .map_err(|e| format!("bad stranded in {line}: {e}"))?;
        serve.push((mode.to_string(), stranded));
    }
    if serve.is_empty() {
        return Err("not a SERVE_summary.json: no mode rows with a stranded field".to_string());
    }
    let mut out = String::new();
    let mut mismatches = 0u64;
    let _ = writeln!(out, "\nreconciliation against SERVE_summary.json:");
    for (mode, serve_stranded) in &serve {
        let trace_stranded: u64 = summaries
            .iter()
            .filter(|s| s.run.split('/').nth(1) == Some(mode))
            .map(|s| s.stranded)
            .sum();
        let ok = trace_stranded == *serve_stranded;
        if !ok {
            mismatches += 1;
        }
        let _ = writeln!(
            out,
            "  {:<14} serve stranded {:>3}, trace stranded {:>3}  {}",
            mode,
            serve_stranded,
            trace_stranded,
            if ok { "OK" } else { "MISMATCH" },
        );
    }
    Ok((out, mismatches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SiteId, StaleReason};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::LoopInvalidated {
                method: 2,
                loop_header: 4,
                generation: 0,
                reason: StaleReason::GcMoved,
                now: 100,
            },
            TraceEvent::LoopRepatched {
                method: 2,
                loop_header: 4,
                generation: 1,
                now: 500,
            },
            TraceEvent::LoopInvalidated {
                method: 5,
                loop_header: 7,
                generation: 0,
                reason: StaleReason::UselessRatio,
                now: 900,
            },
            // An unrelated runtime event that must be filtered out.
            TraceEvent::SwpfIssued {
                site: SiteId(0),
                line: 0x40,
                now: 950,
            },
        ]
    }

    fn legacy_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SiteStale {
                method: 2,
                generation: 0,
                reason: StaleReason::GcMoved,
                now: 100,
            },
            TraceEvent::Deopt {
                method: 2,
                generation: 0,
                now: 101,
            },
            TraceEvent::Recompile {
                method: 2,
                generation: 1,
                now: 500,
            },
            TraceEvent::Deopt {
                method: 5,
                generation: 0,
                now: 901,
            },
        ]
    }

    #[test]
    fn rows_filter_the_adaptive_events() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].tag, "loop_invalidated");
        assert_eq!(rs[0].loop_header, "4");
        assert_eq!(rs[0].reason, "gc-moved");
        assert_eq!(rs[1].tag, "loop_repatched");
        assert_eq!(rs[1].generation, 1);
    }

    #[test]
    fn straight_line_pseudo_loop_renders_as_star() {
        let rs = rows(
            "r",
            &[TraceEvent::LoopInvalidated {
                method: 1,
                loop_header: u32::MAX,
                generation: 0,
                reason: StaleReason::GcMoved,
                now: 1,
            }],
        );
        assert_eq!(rs[0].loop_header, "*");
    }

    #[test]
    fn emit_parse_round_trip() {
        let mut rs = rows("db/ADAPTIVE/Athlon MP", &sample_events());
        rs.extend(rows("db/ADAPTIVE/Athlon MP", &legacy_events()));
        let parsed = parse(&emit(&rs)).unwrap();
        assert_eq!(parsed, rs);
    }

    #[test]
    fn parse_skips_foreign_tags_and_flags_bad_rows() {
        let text = "{\"tag\": \"swpf_issued\", \"site\": 0, \"line\": 64, \"now\": 1}\n\
                    {\"tag\": \"deopt\", \"method\": 1, \"generation\": 0, \"now\": 9}\n";
        let rs = parse(text).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].run, "-", "events.jsonl rows have no run key");
        assert_eq!(rs[0].loop_header, "-", "legacy rows have no loop field");
        assert!(parse("{\"tag\": \"deopt\", \"method\": 1}").is_err());
    }

    #[test]
    fn aggregate_counts_stranded_loops() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        let sums = aggregate(&rs);
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert_eq!(s.loop_invalidated, 2);
        assert_eq!(s.loop_repatched, 1);
        assert_eq!(s.gc_moved, 1);
        assert_eq!(s.useless_ratio, 1);
        assert_eq!(s.methods, 2);
        assert_eq!(s.stranded, 1, "loop 7 of method 5 never came back");
        assert_eq!(s.first_now, 100);
        assert_eq!(s.last_now, 900);
    }

    #[test]
    fn legacy_method_events_strand_on_the_pseudo_loop() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &legacy_events());
        let s = &aggregate(&rs)[0];
        assert_eq!(s.deopts, 2);
        assert_eq!(s.recompiles, 1);
        assert_eq!(s.stranded, 1, "method 5 deopted and never came back");
    }

    #[test]
    fn per_loop_stranding_distinguishes_loops_of_one_method() {
        // Two loops of one method: one repatched, one not. Method-level
        // stranding would see 2 invalidations vs 1 repatch on the same
        // method; per-loop must see exactly one stranded loop.
        let evs = vec![
            TraceEvent::LoopInvalidated {
                method: 9,
                loop_header: 3,
                generation: 0,
                reason: StaleReason::GcMoved,
                now: 10,
            },
            TraceEvent::LoopInvalidated {
                method: 9,
                loop_header: 6,
                generation: 0,
                reason: StaleReason::GcMoved,
                now: 10,
            },
            TraceEvent::LoopRepatched {
                method: 9,
                loop_header: 3,
                generation: 1,
                now: 90,
            },
        ];
        let s = &aggregate(&rows("r", &evs))[0];
        assert_eq!(s.methods, 1);
        assert_eq!(s.stranded, 1);
    }

    #[test]
    fn aggregate_keeps_first_seen_run_order() {
        let mut rs = rows("b", &sample_events());
        rs.extend(rows("a", &sample_events()));
        let sums = aggregate(&rs);
        assert_eq!(sums[0].run, "b");
        assert_eq!(sums[1].run, "a");
    }

    #[test]
    fn reconcile_matches_serve_stranded_by_mode() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        let sums = aggregate(&rs); // 1 stranded loop on ADAPTIVE
        let serve = "{\"mode\": \"BASELINE\", \"stranded\": 0, \"checksum\": 1}\n\
                     {\"mode\": \"ADAPTIVE\", \"stranded\": 1, \"checksum\": 1}\n\
                     {\"mode\": \"ADAPTIVE\", \"stranded_final\": 9, \
                      \"post_p99_ratio_milli\": 1000}\n";
        let (text, mismatches) = reconcile(&sums, serve).unwrap();
        assert_eq!(mismatches, 0, "{text}");
        assert!(text.contains("ADAPTIVE"));
        assert!(text.contains("OK"));

        let bad = serve.replace("\"stranded\": 1", "\"stranded\": 5");
        let (text, mismatches) = reconcile(&sums, &bad).unwrap();
        assert_eq!(mismatches, 1);
        assert!(text.contains("MISMATCH"), "{text}");

        assert!(reconcile(&sums, "not json").is_err());
    }

    #[test]
    fn render_marks_stranded_cells() {
        let rs = rows("db/ADAPTIVE/Pentium 4", &sample_events());
        let table = render(&aggregate(&rs));
        assert!(table.contains("<- stranded"), "{table}");
        assert!(table.contains("1 stranded loop(s)"), "{table}");
    }
}
