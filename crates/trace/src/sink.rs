//! Trace sinks: where events go.
//!
//! The sink is a *type parameter* of every traced component, not a trait
//! object: the instrumentation hot paths are written as
//! `if S::ENABLED { sink.emit(…) }`, so instantiating a component with
//! [`NoopSink`] (the default everywhere) erases both the branch and the
//! event construction at monomorphization time. Tracing off therefore
//! costs literally zero instructions — the hard invariant the bench
//! harness asserts by diffing traced against untraced simulated numbers.

use crate::event::TraceEvent;

/// Receives trace events.
pub trait TraceSink {
    /// Whether this sink records anything. Emission sites are guarded by
    /// `if S::ENABLED`, so a `false` here removes the instrumentation at
    /// compile time.
    const ENABLED: bool;

    /// Records one event.
    fn emit(&mut self, event: TraceEvent);

    /// Discards all recorded events (called by `MemorySystem::reset`
    /// between benchmark runs so no events leak across matrix cells).
    fn clear(&mut self);

    /// A copy of the held events, oldest first. Empty for sinks that keep
    /// nothing; lets generic harnesses read a trace back without naming
    /// the concrete sink type.
    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Events lost to capacity since the last [`clear`](Self::clear)
    /// (non-zero means [`snapshot`](Self::snapshot) is truncated).
    fn lost(&self) -> u64 {
        0
    }
}

/// The default sink: drops everything, compiles to nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: TraceEvent) {}

    #[inline(always)]
    fn clear(&mut self) {}
}

/// A fixed-capacity flight recorder: keeps the most recent `capacity`
/// events, overwriting the oldest once full. [`RingSink::overwritten`]
/// reports how many were lost, so consumers can tell a complete trace
/// from a truncated one.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    /// Total events ever emitted (including overwritten ones).
    total: u64,
}

/// Default ring capacity: enough for the tiny/small experiment sizes the
/// tracing harness targets (~10 MB of events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

impl Default for RingSink {
    fn default() -> Self {
        RingSink::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: Vec::new(),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events emitted since creation or the last [`clear`], including
    /// ones that have since been overwritten.
    ///
    /// [`clear`]: TraceSink::clear
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to capacity (oldest-first overwrites).
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl TraceSink for RingSink {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        self.events()
    }

    fn lost(&self) -> u64 {
        self.overwritten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SiteId;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::SwpfIssued {
            site: SiteId(0),
            line: 0,
            now: n,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = RingSink::with_capacity(3);
        for n in 0..5 {
            r.emit(ev(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.overwritten(), 2);
        let nows: Vec<u64> = r.events().iter().filter_map(|e| e.now()).collect();
        assert_eq!(nows, vec![2, 3, 4], "oldest events were overwritten");
    }

    #[test]
    fn ring_below_capacity_is_in_order() {
        let mut r = RingSink::with_capacity(8);
        for n in 0..3 {
            r.emit(ev(n));
        }
        let nows: Vec<u64> = r.events().iter().filter_map(|e| e.now()).collect();
        assert_eq!(nows, vec![0, 1, 2]);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = RingSink::with_capacity(2);
        for n in 0..5 {
            r.emit(ev(n));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
        r.emit(ev(9));
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopSink::ENABLED) };
        const { assert!(RingSink::ENABLED) };
        let mut n = NoopSink;
        n.emit(ev(0)); // must be a no-op, not a panic
        n.clear();
    }
}
