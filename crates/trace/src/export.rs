//! Trace exporters: JSONL and Chrome `trace_event`.
//!
//! Both are hand-rolled (the build environment has no registry access, so
//! serde is not available) and only promise to produce valid output for
//! the event vocabulary of this crate.
//!
//! * [`events_jsonl`] writes one JSON object per event per line — the
//!   archival format, trivially greppable and `jq`-able.
//! * [`chrome_trace`] writes a JSON array in the Chrome `trace_event`
//!   format (load `chrome://tracing` or Perfetto and drop the file in).
//!   Runtime events become instant events on the simulated-cycle
//!   timeline; fills become duration events spanning issue→ready;
//!   compile-time events sit on their own track at timestamp 0.

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::site::SiteTable;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Appends the variant-specific fields of `ev` as `"key": value` pairs.
fn fields(out: &mut String, ev: &TraceEvent) {
    match *ev {
        TraceEvent::JitBegin { method } => {
            let _ = write!(out, "\"method\": {method}");
        }
        TraceEvent::LdgBuilt {
            loop_header,
            nodes,
            edges,
        } => {
            let _ = write!(
                out,
                "\"loop_header\": {loop_header}, \"nodes\": {nodes}, \"edges\": {edges}"
            );
        }
        TraceEvent::Inspected {
            loop_header,
            iterations,
            steps,
            inter_patterns,
            intra_patterns,
        } => {
            let _ = write!(
                out,
                "\"loop_header\": {loop_header}, \"iterations\": {iterations}, \
                 \"steps\": {steps}, \"inter_patterns\": {inter_patterns}, \
                 \"intra_patterns\": {intra_patterns}"
            );
        }
        TraceEvent::Suppressed {
            block,
            index,
            reason,
        } => {
            let _ = write!(
                out,
                "\"block\": {block}, \"index\": {index}, \"reason\": \"{reason}\""
            );
        }
        TraceEvent::Planned {
            block,
            index,
            shape,
            param,
        } => {
            let _ = write!(
                out,
                "\"block\": {block}, \"index\": {index}, \"shape\": \"{shape}\", \
                 \"param\": {param}"
            );
        }
        TraceEvent::SiteRegistered {
            site,
            method,
            block,
            index,
            generation,
        } => {
            let _ = write!(
                out,
                "\"site\": {}, \"method\": {method}, \"block\": {block}, \"index\": {index}, \
                 \"generation\": {generation}",
                site.0
            );
        }
        TraceEvent::DemandMiss {
            level,
            line,
            now,
            store,
        } => {
            let _ = write!(
                out,
                "\"level\": \"{level:?}\", \"line\": {line}, \"now\": {now}, \"store\": {store}"
            );
        }
        TraceEvent::SwpfIssued { site, line, now }
        | TraceEvent::SwpfDropped { site, line, now }
        | TraceEvent::SwpfRedundant { site, line, now } => {
            let _ = write!(
                out,
                "\"site\": {}, \"line\": {line}, \"now\": {now}",
                site.0
            );
        }
        TraceEvent::SwpfFill {
            site,
            line,
            now,
            ready_at,
        }
        | TraceEvent::GuardedFill {
            site,
            line,
            now,
            ready_at,
        } => {
            let _ = write!(
                out,
                "\"site\": {}, \"line\": {line}, \"now\": {now}, \"ready_at\": {ready_at}",
                site.0
            );
        }
        TraceEvent::GuardedIssued {
            site,
            line,
            now,
            tlb_primed,
        } => {
            let _ = write!(
                out,
                "\"site\": {}, \"line\": {line}, \"now\": {now}, \"tlb_primed\": {tlb_primed}",
                site.0
            );
        }
        TraceEvent::HwPrefetchFill {
            line,
            now,
            ready_at,
        } => {
            let _ = write!(
                out,
                "\"line\": {line}, \"now\": {now}, \"ready_at\": {ready_at}"
            );
        }
        TraceEvent::PrefetchUsed {
            site,
            line,
            now,
            wait,
        } => {
            let _ = write!(
                out,
                "\"site\": {}, \"line\": {line}, \"now\": {now}, \"wait\": {wait}",
                site.0
            );
        }
        TraceEvent::PrefetchEvicted { site, line, now } => {
            let _ = write!(
                out,
                "\"site\": {}, \"line\": {line}, \"now\": {now}",
                site.0
            );
        }
        TraceEvent::SiteStale {
            method,
            generation,
            reason,
            now,
        } => {
            let _ = write!(
                out,
                "\"method\": {method}, \"generation\": {generation}, \"reason\": \"{reason}\", \
                 \"now\": {now}"
            );
        }
        TraceEvent::Deopt {
            method,
            generation,
            now,
        }
        | TraceEvent::Recompile {
            method,
            generation,
            now,
        } => {
            let _ = write!(
                out,
                "\"method\": {method}, \"generation\": {generation}, \"now\": {now}"
            );
        }
        TraceEvent::LoopInvalidated {
            method,
            loop_header,
            generation,
            reason,
            now,
        } => {
            let _ = write!(
                out,
                "\"method\": {method}, \"loop_header\": {loop_header}, \
                 \"generation\": {generation}, \"reason\": \"{reason}\", \"now\": {now}"
            );
        }
        TraceEvent::LoopRepatched {
            method,
            loop_header,
            generation,
            now,
        } => {
            let _ = write!(
                out,
                "\"method\": {method}, \"loop_header\": {loop_header}, \
                 \"generation\": {generation}, \"now\": {now}"
            );
        }
        TraceEvent::CompileEnqueued {
            tenant,
            method,
            depth,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"method\": {method}, \"depth\": {depth}, \"now\": {now}"
            );
        }
        TraceEvent::CompileInstalled {
            tenant,
            method,
            wait,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"method\": {method}, \"wait\": {wait}, \"now\": {now}"
            );
        }
        TraceEvent::CodeCacheEvicted {
            tenant,
            method,
            instrs,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"method\": {method}, \"instrs\": {instrs}, \"now\": {now}"
            );
        }
        TraceEvent::RequestCompleted {
            tenant,
            request,
            latency,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"request\": {request}, \"latency\": {latency}, \
                 \"now\": {now}"
            );
        }
        TraceEvent::FaultInjected {
            kind,
            tenant,
            now,
            until,
        } => {
            let _ = write!(
                out,
                "\"kind\": \"{kind}\", \"tenant\": {tenant}, \"now\": {now}, \"until\": {until}"
            );
        }
        TraceEvent::RequestShed {
            tenant,
            request,
            depth,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"request\": {request}, \"depth\": {depth}, \"now\": {now}"
            );
        }
        TraceEvent::CompileRetried {
            tenant,
            method,
            attempt,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"method\": {method}, \"attempt\": {attempt}, \
                 \"now\": {now}"
            );
        }
        TraceEvent::GuardRearmed {
            tenant,
            method,
            generation,
            now,
        } => {
            let _ = write!(
                out,
                "\"tenant\": {tenant}, \"method\": {method}, \"generation\": {generation}, \
                 \"now\": {now}"
            );
        }
        TraceEvent::GcSlide {
            now,
            live_bytes,
            freed_bytes,
            moved_objects,
        } => {
            let _ = write!(
                out,
                "\"now\": {now}, \"live_bytes\": {live_bytes}, \"freed_bytes\": {freed_bytes}, \
                 \"moved_objects\": {moved_objects}"
            );
        }
    }
}

/// The site's human-readable location, if the table resolves it.
fn site_location(ev: &TraceEvent, sites: Option<&SiteTable>) -> Option<String> {
    let site = match *ev {
        TraceEvent::SwpfIssued { site, .. }
        | TraceEvent::SwpfDropped { site, .. }
        | TraceEvent::SwpfFill { site, .. }
        | TraceEvent::SwpfRedundant { site, .. }
        | TraceEvent::GuardedIssued { site, .. }
        | TraceEvent::GuardedFill { site, .. }
        | TraceEvent::PrefetchUsed { site, .. }
        | TraceEvent::PrefetchEvicted { site, .. } => site,
        _ => return None,
    };
    sites?.get(site).map(|info| info.location())
}

/// Renders events as JSONL, one object per line, oldest first. When a
/// [`SiteTable`] is supplied, site-carrying events gain a resolved
/// `"at"` location field.
pub fn events_jsonl(events: &[TraceEvent], sites: Option<&SiteTable>) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(out, "{{\"tag\": \"{}\", ", ev.tag());
        fields(&mut out, ev);
        if let Some(at) = site_location(ev, sites) {
            let _ = write!(out, ", \"at\": \"{}\"", escape(&at));
        }
        out.push_str("}\n");
    }
    out
}

/// Renders events in the Chrome `trace_event` JSON array format.
///
/// Simulated cycles are mapped 1:1 to trace microseconds. Fill events get
/// a duration (`ph: "X"`) spanning issue to completion; other runtime
/// events are instants (`ph: "i"`); compile-time events are instants at
/// timestamp 0 on a separate "compile" thread.
pub fn chrome_trace(events: &[TraceEvent], sites: Option<&SiteTable>) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        let name = match site_location(ev, sites) {
            Some(at) => format!("{} {}", ev.tag(), at),
            None => ev.tag().to_string(),
        };
        let (ph, ts, dur, tid) = match *ev {
            TraceEvent::SwpfFill { now, ready_at, .. }
            | TraceEvent::GuardedFill { now, ready_at, .. }
            | TraceEvent::HwPrefetchFill { now, ready_at, .. } => {
                ("X", now, Some(ready_at.saturating_sub(now)), 0)
            }
            _ => match ev.now() {
                Some(now) => ("i", now, None, 0),
                None => ("i", 0, None, 1),
            },
        };
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"ph\": \"{ph}\", \"ts\": {ts}, ",
            escape(&name)
        );
        if let Some(dur) = dur {
            let _ = write!(out, "\"dur\": {dur}, ");
        }
        if ph == "i" {
            out.push_str("\"s\": \"t\", ");
        }
        let _ = write!(out, "\"pid\": 0, \"tid\": {tid}, \"args\": {{");
        fields(&mut out, ev);
        out.push_str("}}");
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MissLevel, SiteId, SuppressReason};
    use crate::site::{SiteInfo, SiteKind};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JitBegin { method: 2 },
            TraceEvent::Suppressed {
                block: 4,
                index: 1,
                reason: SuppressReason::StrideTooSmall,
            },
            TraceEvent::SwpfIssued {
                site: SiteId(0),
                line: 0x1c0,
                now: 10,
            },
            TraceEvent::SwpfFill {
                site: SiteId(0),
                line: 0x1c0,
                now: 10,
                ready_at: 210,
            },
            TraceEvent::DemandMiss {
                level: MissLevel::L1,
                line: 0x200,
                now: 20,
                store: false,
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = events_jsonl(&sample(), None);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[2].contains("\"tag\": \"swpf_issued\""));
        assert!(lines[4].contains("\"level\": \"L1\""));
    }

    #[test]
    fn jsonl_resolves_sites() {
        let mut sites = SiteTable::new();
        sites.register(SiteInfo::new(
            "findInMemory",
            2,
            4,
            1,
            Some(4),
            SiteKind::Swpf,
            0,
        ));
        let text = events_jsonl(&sample(), Some(&sites));
        assert!(text.contains("\"at\": \"findInMemory@b4.1\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let text = chrome_trace(&sample(), None);
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert!(text.contains("\"ph\": \"X\""), "fills become durations");
        assert!(text.contains("\"dur\": 200"));
        assert!(text.contains("\"tid\": 1"), "compile events on own track");
        // Every event line but the last must end with a comma.
        let body: Vec<&str> = text.lines().filter(|l| l.contains("\"ph\"")).collect();
        assert_eq!(body.len(), 5);
        assert!(body[..4].iter().all(|l| l.ends_with(',')));
        assert!(!body[4].ends_with(','));
    }
}
