//! The trace event vocabulary.
//!
//! Events are small `Copy` values so the ring buffer is a flat array and
//! emission is a couple of stores. Compile-time events are ordered with
//! respect to the [`TraceEvent::JitBegin`] of the method they belong to;
//! runtime events carry the simulated cycle at which they occurred.

/// Identifies one prefetch site: a `Prefetch` or `SpecLoad` instruction in
/// a compiled method body. Allocated by [`crate::SiteTable`]; ties every
/// runtime event back to the IR instruction (and loop) that generated it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Events emitted by a memory system whose driver never attributed the
    /// access to a site (e.g. a hand-driven simulator in a test).
    pub const UNKNOWN: SiteId = SiteId(u32::MAX);
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == SiteId::UNKNOWN {
            f.write_str("?")
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

/// Which structure missed on a demand access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissLevel {
    /// L1 data cache.
    L1,
    /// L2 unified cache.
    L2,
    /// Data TLB.
    Dtlb,
}

/// Why the optimizer declined to generate a prefetch for a candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SuppressReason {
    /// The anchor's address is loop-invariant (stride 0).
    ZeroStride,
    /// No instruction depends on the load (paper §3.3, condition 1).
    NoDependent,
    /// The inter-iteration stride is within half a prefetched cache line
    /// (§3.3, condition 3 — covered by the hardware prefetcher).
    StrideTooSmall,
    /// A prefetch for the same cache line was already issued (§3.3,
    /// condition 2).
    LineShared,
    /// The load sits in a nested loop whose measured trip count is too
    /// large for the fold-in rule (§3).
    NestedTripCount,
}

impl std::fmt::Display for SuppressReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SuppressReason::ZeroStride => "zero-stride",
            SuppressReason::NoDependent => "no-dependent",
            SuppressReason::StrideTooSmall => "stride-too-small",
            SuppressReason::LineShared => "line-shared",
            SuppressReason::NestedTripCount => "nested-trip-count",
        })
    }
}

/// Why the adaptive-reprofiling guards declared a compiled method's
/// prefetch sites stale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StaleReason {
    /// A sliding compaction moved objects since the method was compiled,
    /// so the inspected strides may no longer hold.
    GcMoved,
    /// The method's useless-prefetch ratio (issues finding the line
    /// already resident) crossed the staleness threshold.
    UselessRatio,
}

impl std::fmt::Display for StaleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StaleReason::GcMoved => "gc-moved",
            StaleReason::UselessRatio => "useless-ratio",
        })
    }
}

/// The kind of a fault injected by the serving chaos harness
/// (`spf-serve`'s `faults` module). Lives here — like [`StaleReason`] —
/// so trace events can carry it without the trace crate depending on the
/// serving crate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultKind {
    /// Forced heap moves bump every tenant's GC epoch each epoch of the
    /// window, driving adaptive-guard deopt waves.
    GcStorm,
    /// The background compile queue stops assigning jobs to workers.
    CompileStall,
    /// The shared code cache shrinks to a squeeze capacity for the
    /// window, evicting until the fleet fits.
    CacheSqueeze,
    /// One tenant receives a burst of extra requests on top of the base
    /// open-loop stream.
    TrafficBurst,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::GcStorm => "gc-storm",
            FaultKind::CompileStall => "compile-stall",
            FaultKind::CacheSqueeze => "cache-squeeze",
            FaultKind::TrafficBurst => "traffic-burst",
        })
    }
}

/// The code shape of a planned prefetch (mirrors the report's
/// `GeneratedKind` without depending on `spf-core`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlannedShape {
    /// `prefetch(A(Lx) + d*c)`.
    InterStride,
    /// `a = spec_load(A(Lx) + d*c)`.
    SpeculativeLoad,
    /// `prefetch(F[Lx,Ly](a))`.
    Dereference,
    /// `prefetch(F[Lx,Ly](a) + S[Ly,Lz])`.
    IntraStride,
}

impl std::fmt::Display for PlannedShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlannedShape::InterStride => "inter-stride",
            PlannedShape::SpeculativeLoad => "spec-load",
            PlannedShape::Dereference => "dereference",
            PlannedShape::IntraStride => "intra-stride",
        })
    }
}

/// One trace event. `line` fields are line-aligned simulated addresses;
/// `now` is the simulated cycle of the event; `ready_at` the cycle an
/// initiated fill completes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    // ---- compile time -------------------------------------------------
    /// JIT compilation of a method begins; subsequent compile-time events
    /// belong to it until the next `JitBegin`.
    JitBegin {
        /// Method index in the program.
        method: u32,
    },
    /// A load dependence graph was built for one loop.
    LdgBuilt {
        /// The loop's header block index.
        loop_header: u32,
        /// LDG node count.
        nodes: u32,
        /// LDG edge count.
        edges: u32,
    },
    /// Object inspection ran for one loop.
    Inspected {
        /// The loop's header block index.
        loop_header: u32,
        /// Target-loop iterations interpreted.
        iterations: u32,
        /// Instructions interpreted.
        steps: u64,
        /// Nodes with an inter-iteration stride pattern.
        inter_patterns: u32,
        /// Edges with an intra-iteration stride pattern.
        intra_patterns: u32,
    },
    /// The profitability analysis suppressed a candidate prefetch.
    Suppressed {
        /// Anchor load's block index.
        block: u32,
        /// Anchor load's instruction index within the block.
        index: u32,
        /// Why it was suppressed.
        reason: SuppressReason,
    },
    /// The code generator planned one prefetch (or speculative load).
    Planned {
        /// Anchor load's block index.
        block: u32,
        /// Anchor load's instruction index within the block.
        index: u32,
        /// Code shape.
        shape: PlannedShape,
        /// Shape parameter: the stride `d`, offset `F`, or accumulated
        /// intra stride `S`.
        param: i64,
    },
    /// A prefetch site in a freshly compiled body was assigned an ID.
    SiteRegistered {
        /// The new site ID.
        site: SiteId,
        /// Method index in the program.
        method: u32,
        /// Block index of the site.
        block: u32,
        /// Instruction index within the block.
        index: u32,
        /// Compilation generation of the body containing the site (0 for
        /// the first compilation, +1 per adaptive recompilation).
        generation: u32,
    },

    // ---- runtime ------------------------------------------------------
    /// A demand access missed in `level`.
    DemandMiss {
        /// Which structure missed.
        level: MissLevel,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
        /// Whether the access was a store.
        store: bool,
    },
    /// A software prefetch instruction was issued.
    SwpfIssued {
        /// Issuing site.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
    },
    /// A software prefetch was cancelled by a DTLB miss (Pentium 4).
    SwpfDropped {
        /// Issuing site.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
    },
    /// A software prefetch initiated a fill of its target level.
    SwpfFill {
        /// Issuing site.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
        /// Cycle at which the fill completes.
        ready_at: u64,
    },
    /// A software prefetch found its line already resident (no fill).
    SwpfRedundant {
        /// Issuing site.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
    },
    /// A guarded prefetch load was issued.
    GuardedIssued {
        /// Issuing site.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
        /// Whether it primed a missing DTLB entry (§3.3 "TLB priming").
        tlb_primed: bool,
    },
    /// A guarded prefetch load initiated a fill.
    GuardedFill {
        /// Issuing site.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
        /// Cycle at which the fill completes.
        ready_at: u64,
    },
    /// The hardware next-line prefetcher filled a line.
    HwPrefetchFill {
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle.
        now: u64,
        /// Cycle at which the fill completes.
        ready_at: u64,
    },
    /// A demand access used a line that a software prefetch or guarded
    /// load had filled (first use only).
    PrefetchUsed {
        /// The site whose fill was used.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle of the demand access.
        now: u64,
        /// Cycles the demand access still had to wait for the in-flight
        /// fill: 0 means the prefetch was timely (useful), >0 means it
        /// was issued too late.
        wait: u64,
    },
    /// A prefetched line was evicted from its target level before any
    /// demand access used it — the prefetch was issued too early.
    PrefetchEvicted {
        /// The site whose fill was evicted.
        site: SiteId,
        /// Line-aligned address.
        line: u64,
        /// Simulated cycle of the eviction.
        now: u64,
    },
    // ---- adaptive reprofiling -----------------------------------------
    /// The guards of a compiled method declared its prefetch sites stale.
    SiteStale {
        /// Method index in the program.
        method: u32,
        /// Generation that went stale.
        generation: u32,
        /// Why.
        reason: StaleReason,
        /// Simulated cycle.
        now: u64,
    },
    /// The VM deoptimized a stale method back to the unprefetched
    /// (interpreted) body.
    Deopt {
        /// Method index in the program.
        method: u32,
        /// Generation that was discarded.
        generation: u32,
        /// Simulated cycle.
        now: u64,
    },
    /// A previously deoptimized method was recompiled after re-inspection.
    Recompile {
        /// Method index in the program.
        method: u32,
        /// The new generation (≥ 1).
        generation: u32,
        /// Simulated cycle.
        now: u64,
    },
    /// One loop of a compiled method went stale and its prefetch sites
    /// were patched to no-ops; the rest of the body stays live.
    LoopInvalidated {
        /// Method index in the program.
        method: u32,
        /// The stale loop's header block index (`u32::MAX` for the
        /// pseudo-loop holding straight-line sites).
        loop_header: u32,
        /// The loop's generation that went stale.
        generation: u32,
        /// Why.
        reason: StaleReason,
        /// Simulated cycle.
        now: u64,
    },
    /// A previously invalidated loop was re-inspected through the normal
    /// pipeline and its prefetch sites re-emitted into the live body.
    LoopRepatched {
        /// Method index in the program.
        method: u32,
        /// The repatched loop's header block index.
        loop_header: u32,
        /// The loop's new generation (≥ 1).
        generation: u32,
        /// Simulated cycle.
        now: u64,
    },

    // ---- serving ------------------------------------------------------
    /// The serving layer enqueued a background compilation request for a
    /// tenant's hot method (the tenant keeps interpreting meanwhile).
    CompileEnqueued {
        /// Tenant (VM instance) index in the serving fleet.
        tenant: u32,
        /// Method index in the tenant's program.
        method: u32,
        /// Compilation-queue depth *after* this enqueue.
        depth: u32,
        /// Simulated serving-clock cycle.
        now: u64,
    },
    /// A background compilation finished and its body was installed into
    /// the tenant's VM (and the shared code cache).
    CompileInstalled {
        /// Tenant (VM instance) index in the serving fleet.
        tenant: u32,
        /// Method index in the tenant's program.
        method: u32,
        /// Simulated cycles between enqueue and install.
        wait: u64,
        /// Simulated serving-clock cycle.
        now: u64,
    },
    /// The bounded shared code cache evicted a tenant's compiled body to
    /// make room; the tenant falls back to the interpreter until a forced
    /// recompile lands.
    CodeCacheEvicted {
        /// Tenant (VM instance) index in the serving fleet.
        tenant: u32,
        /// Method index in the tenant's program.
        method: u32,
        /// Compiled-body size (instruction count) released.
        instrs: u32,
        /// Simulated serving-clock cycle.
        now: u64,
    },
    /// A served request (one workload invocation on a tenant's VM)
    /// completed.
    RequestCompleted {
        /// Tenant (VM instance) index in the serving fleet.
        tenant: u32,
        /// Request sequence number in arrival order.
        request: u32,
        /// Simulated cycles from arrival to completion (queueing +
        /// service).
        latency: u64,
        /// Simulated serving-clock cycle of completion.
        now: u64,
    },

    // ---- chaos / degradation ------------------------------------------
    /// The chaos harness activated a scheduled fault window.
    FaultInjected {
        /// What was injected.
        kind: FaultKind,
        /// Target tenant, or `u32::MAX` for a fleet-wide fault.
        tenant: u32,
        /// Simulated serving-clock cycle the window opened.
        now: u64,
        /// Simulated serving-clock cycle the window closes.
        until: u64,
    },
    /// Admission control shed an arriving request because the target
    /// tenant's queue was at its depth limit — a typed outcome instead of
    /// unbounded queueing latency.
    RequestShed {
        /// Tenant (VM instance) index in the serving fleet.
        tenant: u32,
        /// Request sequence number in arrival order.
        request: u32,
        /// The tenant's queue depth at the shed decision.
        depth: u32,
        /// Simulated serving-clock cycle.
        now: u64,
    },
    /// A queued background compile exceeded its waiting deadline and was
    /// re-enqueued with exponential backoff instead of running stale.
    CompileRetried {
        /// Tenant (VM instance) index in the serving fleet.
        tenant: u32,
        /// Method index in the tenant's program.
        method: u32,
        /// Retry attempt number (1 for the first retry).
        attempt: u32,
        /// Simulated serving-clock cycle.
        now: u64,
    },
    /// A guard whose recompile budget was exhausted regained one credit
    /// after the configured number of stable GC epochs and re-armed.
    GuardRearmed {
        /// Tenant index, or `u32::MAX` when emitted by a standalone VM.
        tenant: u32,
        /// Method index in the program.
        method: u32,
        /// The guard's generation at re-arm time.
        generation: u32,
        /// Simulated serving-clock cycle (barrier time in serve runs).
        now: u64,
    },

    /// The garbage collector ran a sliding compaction.
    GcSlide {
        /// Simulated cycle.
        now: u64,
        /// Bytes live after compaction.
        live_bytes: u64,
        /// Bytes reclaimed.
        freed_bytes: u64,
        /// Live allocations whose address changed.
        moved_objects: u64,
    },
}

impl TraceEvent {
    /// A short machine-friendly tag naming the variant.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::JitBegin { .. } => "jit_begin",
            TraceEvent::LdgBuilt { .. } => "ldg_built",
            TraceEvent::Inspected { .. } => "inspected",
            TraceEvent::Suppressed { .. } => "suppressed",
            TraceEvent::Planned { .. } => "planned",
            TraceEvent::SiteRegistered { .. } => "site_registered",
            TraceEvent::DemandMiss { .. } => "demand_miss",
            TraceEvent::SwpfIssued { .. } => "swpf_issued",
            TraceEvent::SwpfDropped { .. } => "swpf_dropped",
            TraceEvent::SwpfFill { .. } => "swpf_fill",
            TraceEvent::SwpfRedundant { .. } => "swpf_redundant",
            TraceEvent::GuardedIssued { .. } => "guarded_issued",
            TraceEvent::GuardedFill { .. } => "guarded_fill",
            TraceEvent::HwPrefetchFill { .. } => "hw_prefetch_fill",
            TraceEvent::PrefetchUsed { .. } => "prefetch_used",
            TraceEvent::PrefetchEvicted { .. } => "prefetch_evicted",
            TraceEvent::SiteStale { .. } => "site_stale",
            TraceEvent::Deopt { .. } => "deopt",
            TraceEvent::Recompile { .. } => "recompile",
            TraceEvent::LoopInvalidated { .. } => "loop_invalidated",
            TraceEvent::LoopRepatched { .. } => "loop_repatched",
            TraceEvent::CompileEnqueued { .. } => "compile_enqueued",
            TraceEvent::CompileInstalled { .. } => "compile_installed",
            TraceEvent::CodeCacheEvicted { .. } => "code_cache_evicted",
            TraceEvent::RequestCompleted { .. } => "request_completed",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RequestShed { .. } => "request_shed",
            TraceEvent::CompileRetried { .. } => "compile_retried",
            TraceEvent::GuardRearmed { .. } => "guard_rearmed",
            TraceEvent::GcSlide { .. } => "gc_slide",
        }
    }

    /// The simulated cycle of a runtime event (`None` for compile-time
    /// events, which are not on the simulated clock).
    pub fn now(&self) -> Option<u64> {
        match *self {
            TraceEvent::DemandMiss { now, .. }
            | TraceEvent::SwpfIssued { now, .. }
            | TraceEvent::SwpfDropped { now, .. }
            | TraceEvent::SwpfFill { now, .. }
            | TraceEvent::SwpfRedundant { now, .. }
            | TraceEvent::GuardedIssued { now, .. }
            | TraceEvent::GuardedFill { now, .. }
            | TraceEvent::HwPrefetchFill { now, .. }
            | TraceEvent::PrefetchUsed { now, .. }
            | TraceEvent::PrefetchEvicted { now, .. }
            | TraceEvent::SiteStale { now, .. }
            | TraceEvent::Deopt { now, .. }
            | TraceEvent::Recompile { now, .. }
            | TraceEvent::LoopInvalidated { now, .. }
            | TraceEvent::LoopRepatched { now, .. }
            | TraceEvent::CompileEnqueued { now, .. }
            | TraceEvent::CompileInstalled { now, .. }
            | TraceEvent::CodeCacheEvicted { now, .. }
            | TraceEvent::RequestCompleted { now, .. }
            | TraceEvent::FaultInjected { now, .. }
            | TraceEvent::RequestShed { now, .. }
            | TraceEvent::CompileRetried { now, .. }
            | TraceEvent::GuardRearmed { now, .. }
            | TraceEvent::GcSlide { now, .. } => Some(now),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_display() {
        assert_eq!(SiteId(3).to_string(), "s3");
        assert_eq!(SiteId::UNKNOWN.to_string(), "?");
    }

    #[test]
    fn events_stay_small() {
        // The ring buffer stores events by value; keep them cache-friendly.
        const { assert!(std::mem::size_of::<TraceEvent>() <= 40) };
    }

    #[test]
    fn now_distinguishes_compile_and_runtime() {
        assert_eq!(TraceEvent::JitBegin { method: 0 }.now(), None);
        assert_eq!(
            TraceEvent::SwpfIssued {
                site: SiteId(0),
                line: 0,
                now: 7
            }
            .now(),
            Some(7)
        );
    }
}
