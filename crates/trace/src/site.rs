//! The site table: stable IDs for prefetch instructions.
//!
//! Runtime events carry only a [`SiteId`]; this table maps the ID back to
//! the IR instruction — method, block, index — the loop it sits in, and
//! the kind of prefetch the code generator emitted there. The VM owns one
//! table per execution and registers every `Prefetch`/`SpecLoad`
//! instruction of each freshly compiled body.

use crate::event::SiteId;

/// What kind of instruction a site is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SiteKind {
    /// A software prefetch instruction (`Prefetch` mapped to hardware).
    Swpf,
    /// A guarded prefetch load (`Prefetch` mapped to a guarded load).
    Guarded,
    /// A speculative load anchor (`SpecLoad`).
    SpecLoad,
    /// Registered on demand without compile-time metadata.
    Unknown,
}

impl std::fmt::Display for SiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SiteKind::Swpf => "swpf",
            SiteKind::Guarded => "guarded",
            SiteKind::SpecLoad => "spec-load",
            SiteKind::Unknown => "unknown",
        })
    }
}

impl SiteKind {
    /// Parses the display form back (for summary round-trips).
    pub fn parse(s: &str) -> SiteKind {
        match s {
            "swpf" => SiteKind::Swpf,
            "guarded" => SiteKind::Guarded,
            "spec-load" => SiteKind::SpecLoad,
            _ => SiteKind::Unknown,
        }
    }
}

/// Everything known about one prefetch site.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SiteInfo {
    /// The site's ID.
    pub id: SiteId,
    /// Name of the method containing the site.
    pub method: String,
    /// Method index in the program.
    pub method_index: u32,
    /// Block index of the instruction.
    pub block: u32,
    /// Instruction index within the block.
    pub index: u32,
    /// Header block index of the innermost loop containing the site, if
    /// any.
    pub loop_header: Option<u32>,
    /// Kind of prefetch instruction.
    pub kind: SiteKind,
    /// Compilation generation of the body containing the site: 0 for the
    /// first compilation, incremented every time adaptive reprofiling
    /// recompiles the method. Recompilation registers fresh sites, so the
    /// generation keys attribution to one compiled body.
    pub generation: u32,
}

impl SiteInfo {
    /// A site awaiting registration (the table allocates the real ID).
    pub fn new(
        method: &str,
        method_index: u32,
        block: u32,
        index: u32,
        loop_header: Option<u32>,
        kind: SiteKind,
        generation: u32,
    ) -> SiteInfo {
        SiteInfo {
            id: SiteId::UNKNOWN,
            method: method.to_string(),
            method_index,
            block,
            index,
            loop_header,
            kind,
            generation,
        }
    }

    /// `method@bN.i` — the site's position, human-readable.
    pub fn location(&self) -> String {
        format!("{}@b{}.{}", self.method, self.block, self.index)
    }
}

/// Allocates and resolves [`SiteId`]s.
#[derive(Clone, Debug, Default)]
pub struct SiteTable {
    sites: Vec<SiteInfo>,
}

impl SiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SiteTable::default()
    }

    /// Registers a site and returns its fresh ID (the `id` field of the
    /// passed-in info is overwritten with the allocated one).
    pub fn register(&mut self, info: SiteInfo) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(SiteInfo { id, ..info });
        id
    }

    /// Resolves an ID ([`SiteId::UNKNOWN`] and out-of-range IDs yield
    /// `None`).
    pub fn get(&self, id: SiteId) -> Option<&SiteInfo> {
        self.sites.get(id.0 as usize)
    }

    /// All sites, in registration (ID) order.
    pub fn iter(&self) -> impl Iterator<Item = &SiteInfo> {
        self.sites.iter()
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site is registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(index: u32, kind: SiteKind, generation: u32) -> SiteInfo {
        SiteInfo {
            id: SiteId::UNKNOWN,
            method: "findInMemory".to_string(),
            method_index: 2,
            block: 4,
            index,
            loop_header: Some(4),
            kind,
            generation,
        }
    }

    #[test]
    fn register_and_resolve() {
        let mut t = SiteTable::new();
        let a = t.register(site(1, SiteKind::SpecLoad, 0));
        let b = t.register(site(2, SiteKind::Guarded, 1));
        assert_eq!(a, SiteId(0));
        assert_eq!(b, SiteId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap().location(), "findInMemory@b4.1");
        assert_eq!(t.get(b).unwrap().generation, 1);
        assert_eq!(t.get(SiteId::UNKNOWN), None);
    }

    #[test]
    fn kind_round_trips() {
        for k in [
            SiteKind::Swpf,
            SiteKind::Guarded,
            SiteKind::SpecLoad,
            SiteKind::Unknown,
        ] {
            assert_eq!(SiteKind::parse(&k.to_string()), k);
        }
    }
}
