//! The aggregation pass: from an event stream to a per-site
//! prefetch-effectiveness report.
//!
//! Every issued prefetch is classified into exactly one of four buckets,
//! reproducing the paper's Figure 8 taxonomy per *site* instead of per
//! run:
//!
//! * **dropped** — a software prefetch cancelled by a DTLB miss
//!   (Pentium 4 semantics);
//! * **too late** — the fill was still in flight when the first demand
//!   access arrived (`PrefetchUsed` with `wait > 0`);
//! * **too early** — the line was evicted from its target level before
//!   any demand use, or was never demanded at all before the run ended;
//! * **useful** — everything else: the fill settled before its first
//!   demand use, or the line was already resident (a redundant prefetch
//!   whose data was cache-resident when demanded).
//!
//! The buckets partition the issue count: for every site,
//! `useful + too_early + too_late + dropped == issued`, and summed over
//! sites the totals equal the `MemStats` aggregate counters — the
//! cross-check the integration tests enforce.

use std::collections::HashMap;

use crate::event::{SiteId, TraceEvent};

/// Per-site counters accumulated from the event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteEffect {
    /// Software prefetch instructions issued.
    pub swpf_issued: u64,
    /// Software prefetches cancelled by a DTLB miss.
    pub swpf_dropped: u64,
    /// Software prefetches that initiated a fill.
    pub swpf_fills: u64,
    /// Software prefetches whose line was already resident.
    pub swpf_redundant: u64,
    /// Guarded prefetch loads issued.
    pub guarded_issued: u64,
    /// Guarded loads that initiated a fill.
    pub guarded_fills: u64,
    /// Guarded loads that primed a missing DTLB entry.
    pub guarded_tlb_primed: u64,
    /// Fills used by a demand access after settling (timely).
    pub used_settled: u64,
    /// Fills used while still in flight (the demand access waited).
    pub used_waited: u64,
    /// Fills evicted from the target level before any use.
    pub evicted: u64,
}

impl SiteEffect {
    /// Prefetches issued from this site (software + guarded).
    pub fn issued(&self) -> u64 {
        self.swpf_issued + self.guarded_issued
    }

    /// Guarded loads whose line was already resident (no fill).
    pub fn guarded_redundant(&self) -> u64 {
        self.guarded_issued - self.guarded_fills
    }

    /// Fills never used and never evicted (still resident, unused, when
    /// the run ended).
    pub fn unused_at_end(&self) -> u64 {
        (self.swpf_fills + self.guarded_fills)
            .saturating_sub(self.used_settled + self.used_waited + self.evicted)
    }

    /// **useful**: fills settled before first use, plus redundant
    /// prefetches (the demanded data was already cache-resident).
    pub fn useful(&self) -> u64 {
        self.used_settled + self.swpf_redundant + self.guarded_redundant()
    }

    /// **too early**: evicted before use, or never demanded.
    pub fn too_early(&self) -> u64 {
        self.evicted + self.unused_at_end()
    }

    /// **too late**: first demand access waited on the in-flight fill.
    pub fn too_late(&self) -> u64 {
        self.used_waited
    }

    /// **dropped**: cancelled on a DTLB miss.
    pub fn dropped(&self) -> u64 {
        self.swpf_dropped
    }
}

/// The result of aggregating one event stream.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    /// Per-site effects, ascending by site ID; [`SiteId::UNKNOWN`] last if
    /// present.
    pub per_site: Vec<(SiteId, SiteEffect)>,
    /// Demand L1 miss events observed.
    pub l1_misses: u64,
    /// Demand L2 miss events observed.
    pub l2_misses: u64,
    /// Demand DTLB miss events observed.
    pub dtlb_misses: u64,
    /// Hardware next-line prefetcher fills observed.
    pub hw_prefetch_fills: u64,
    /// GC sliding compactions observed.
    pub gc_slides: u64,
    /// Compile-time suppression events observed.
    pub suppressions: u64,
    /// Adaptive staleness verdicts observed.
    pub site_stales: u64,
    /// Adaptive deoptimizations observed.
    pub deopts: u64,
    /// Adaptive recompilations observed.
    pub recompiles: u64,
    /// Per-loop invalidations observed (stale loops patched to no-ops).
    pub loop_invalidated: u64,
    /// Per-loop repatches observed (stale loops re-inspected in place).
    pub loop_repatched: u64,
}

impl Attribution {
    /// The effect recorded for `site` (default-empty when absent).
    pub fn site(&self, site: SiteId) -> SiteEffect {
        self.per_site
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, e)| *e)
            .unwrap_or_default()
    }

    /// Sums a per-site field over all sites.
    pub fn total(&self, f: impl Fn(&SiteEffect) -> u64) -> u64 {
        self.per_site.iter().map(|(_, e)| f(e)).sum()
    }
}

/// Aggregates an event stream (oldest first) into per-site effects.
///
/// Classification is exact when the stream is complete; if the producing
/// ring overwrote events, fills whose issue event was lost are still
/// attributed via the site carried by the use/eviction event itself.
pub fn attribute(events: &[TraceEvent]) -> Attribution {
    let mut sites: HashMap<SiteId, SiteEffect> = HashMap::new();
    let mut out = Attribution::default();
    for ev in events {
        match *ev {
            TraceEvent::SwpfIssued { site, .. } => sites.entry(site).or_default().swpf_issued += 1,
            TraceEvent::SwpfDropped { site, .. } => {
                sites.entry(site).or_default().swpf_dropped += 1;
            }
            TraceEvent::SwpfFill { site, .. } => sites.entry(site).or_default().swpf_fills += 1,
            TraceEvent::SwpfRedundant { site, .. } => {
                sites.entry(site).or_default().swpf_redundant += 1;
            }
            TraceEvent::GuardedIssued {
                site, tlb_primed, ..
            } => {
                let e = sites.entry(site).or_default();
                e.guarded_issued += 1;
                e.guarded_tlb_primed += u64::from(tlb_primed);
            }
            TraceEvent::GuardedFill { site, .. } => {
                sites.entry(site).or_default().guarded_fills += 1;
            }
            TraceEvent::PrefetchUsed { site, wait, .. } => {
                let e = sites.entry(site).or_default();
                if wait > 0 {
                    e.used_waited += 1;
                } else {
                    e.used_settled += 1;
                }
            }
            TraceEvent::PrefetchEvicted { site, .. } => sites.entry(site).or_default().evicted += 1,
            TraceEvent::DemandMiss { level, .. } => match level {
                crate::event::MissLevel::L1 => out.l1_misses += 1,
                crate::event::MissLevel::L2 => out.l2_misses += 1,
                crate::event::MissLevel::Dtlb => out.dtlb_misses += 1,
            },
            TraceEvent::HwPrefetchFill { .. } => out.hw_prefetch_fills += 1,
            TraceEvent::GcSlide { .. } => out.gc_slides += 1,
            TraceEvent::Suppressed { .. } => out.suppressions += 1,
            TraceEvent::SiteStale { .. } => out.site_stales += 1,
            TraceEvent::Deopt { .. } => out.deopts += 1,
            TraceEvent::Recompile { .. } => out.recompiles += 1,
            TraceEvent::LoopInvalidated { .. } => out.loop_invalidated += 1,
            TraceEvent::LoopRepatched { .. } => out.loop_repatched += 1,
            TraceEvent::JitBegin { .. }
            | TraceEvent::LdgBuilt { .. }
            | TraceEvent::Inspected { .. }
            | TraceEvent::Planned { .. }
            | TraceEvent::SiteRegistered { .. }
            | TraceEvent::CompileEnqueued { .. }
            | TraceEvent::CompileInstalled { .. }
            | TraceEvent::CodeCacheEvicted { .. }
            | TraceEvent::RequestCompleted { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::RequestShed { .. }
            | TraceEvent::CompileRetried { .. }
            | TraceEvent::GuardRearmed { .. } => {}
        }
    }
    let mut per_site: Vec<(SiteId, SiteEffect)> = sites.into_iter().collect();
    per_site.sort_by_key(|(s, _)| *s);
    out.per_site = per_site;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: SiteId = SiteId(0);

    fn issue_and_fill(evs: &mut Vec<TraceEvent>, line: u64, now: u64, ready: u64) {
        evs.push(TraceEvent::SwpfIssued { site: S, line, now });
        evs.push(TraceEvent::SwpfFill {
            site: S,
            line,
            now,
            ready_at: ready,
        });
    }

    #[test]
    fn useful_prefetch() {
        let mut evs = Vec::new();
        issue_and_fill(&mut evs, 0x100, 10, 210);
        evs.push(TraceEvent::PrefetchUsed {
            site: S,
            line: 0x100,
            now: 500,
            wait: 0,
        });
        let a = attribute(&evs);
        let e = a.site(S);
        assert_eq!(e.useful(), 1);
        assert_eq!(e.too_early() + e.too_late() + e.dropped(), 0);
        assert_eq!(e.issued(), 1);
    }

    #[test]
    fn too_late_prefetch() {
        let mut evs = Vec::new();
        issue_and_fill(&mut evs, 0x100, 10, 210);
        evs.push(TraceEvent::PrefetchUsed {
            site: S,
            line: 0x100,
            now: 50,
            wait: 160,
        });
        let e = attribute(&evs).site(S);
        assert_eq!(e.too_late(), 1);
        assert_eq!(e.useful(), 0);
    }

    #[test]
    fn too_early_via_eviction_and_unused() {
        let mut evs = Vec::new();
        issue_and_fill(&mut evs, 0x100, 10, 210);
        evs.push(TraceEvent::PrefetchEvicted {
            site: S,
            line: 0x100,
            now: 400,
        });
        issue_and_fill(&mut evs, 0x200, 500, 700); // never used
        let e = attribute(&evs).site(S);
        assert_eq!(e.evicted, 1);
        assert_eq!(e.unused_at_end(), 1);
        assert_eq!(e.too_early(), 2);
        assert_eq!(e.issued(), 2);
    }

    #[test]
    fn dropped_and_redundant() {
        let evs = vec![
            TraceEvent::SwpfIssued {
                site: S,
                line: 0x100,
                now: 0,
            },
            TraceEvent::SwpfDropped {
                site: S,
                line: 0x100,
                now: 0,
            },
            TraceEvent::SwpfIssued {
                site: S,
                line: 0x200,
                now: 5,
            },
            TraceEvent::SwpfRedundant {
                site: S,
                line: 0x200,
                now: 5,
            },
        ];
        let e = attribute(&evs).site(S);
        assert_eq!(e.dropped(), 1);
        assert_eq!(e.useful(), 1, "redundant counts as useful");
        assert_eq!(
            e.useful() + e.too_early() + e.too_late() + e.dropped(),
            e.issued()
        );
    }

    #[test]
    fn guarded_loads_classify_like_prefetches() {
        let evs = vec![
            TraceEvent::GuardedIssued {
                site: S,
                line: 0x100,
                now: 0,
                tlb_primed: true,
            },
            TraceEvent::GuardedFill {
                site: S,
                line: 0x100,
                now: 0,
                ready_at: 200,
            },
            TraceEvent::PrefetchUsed {
                site: S,
                line: 0x100,
                now: 300,
                wait: 0,
            },
            TraceEvent::GuardedIssued {
                site: S,
                line: 0x100,
                now: 400,
                tlb_primed: false,
            },
        ];
        let e = attribute(&evs).site(S);
        assert_eq!(e.guarded_issued, 2);
        assert_eq!(e.guarded_tlb_primed, 1);
        assert_eq!(e.guarded_redundant(), 1);
        assert_eq!(e.useful(), 2);
        assert_eq!(
            e.useful() + e.too_early() + e.too_late() + e.dropped(),
            e.issued()
        );
    }

    #[test]
    fn buckets_partition_issues_across_sites() {
        let s1 = SiteId(1);
        let mut evs = Vec::new();
        issue_and_fill(&mut evs, 0x100, 0, 200);
        evs.push(TraceEvent::SwpfIssued {
            site: s1,
            line: 0x300,
            now: 1,
        });
        evs.push(TraceEvent::SwpfDropped {
            site: s1,
            line: 0x300,
            now: 1,
        });
        let a = attribute(&evs);
        assert_eq!(a.per_site.len(), 2);
        let issued = a.total(SiteEffect::issued);
        let classified = a.total(SiteEffect::useful)
            + a.total(SiteEffect::too_early)
            + a.total(SiteEffect::too_late)
            + a.total(SiteEffect::dropped);
        assert_eq!(issued, 2);
        assert_eq!(classified, issued);
    }

    #[test]
    fn run_level_counters() {
        let evs = vec![
            TraceEvent::DemandMiss {
                level: crate::event::MissLevel::L1,
                line: 0,
                now: 0,
                store: false,
            },
            TraceEvent::DemandMiss {
                level: crate::event::MissLevel::Dtlb,
                line: 0,
                now: 0,
                store: true,
            },
            TraceEvent::HwPrefetchFill {
                line: 0,
                now: 0,
                ready_at: 10,
            },
            TraceEvent::GcSlide {
                now: 5,
                live_bytes: 100,
                freed_bytes: 50,
                moved_objects: 2,
            },
        ];
        let a = attribute(&evs);
        assert_eq!(a.l1_misses, 1);
        assert_eq!(a.dtlb_misses, 1);
        assert_eq!(a.hw_prefetch_fills, 1);
        assert_eq!(a.gc_slides, 1);
    }

    #[test]
    fn adaptive_events_count_at_run_level() {
        let evs = vec![
            TraceEvent::SiteStale {
                method: 3,
                generation: 0,
                reason: crate::event::StaleReason::GcMoved,
                now: 100,
            },
            TraceEvent::Deopt {
                method: 3,
                generation: 0,
                now: 100,
            },
            TraceEvent::Recompile {
                method: 3,
                generation: 1,
                now: 250,
            },
        ];
        let a = attribute(&evs);
        assert_eq!(a.site_stales, 1);
        assert_eq!(a.deopts, 1);
        assert_eq!(a.recompiles, 1);
        assert!(a.per_site.is_empty(), "adaptive events are run-level");
    }
}
