//! `TRACE_summary.jsonl` — the per-site effectiveness record of a traced
//! run, and the rendering/diffing behind the `spf-trace-report` CLI.
//!
//! One JSON object per prefetch site per line. Emitter and parser are
//! hand-rolled like `BENCH_matrix.json` and only promise to round-trip
//! each other's output.

use std::fmt::Write as _;

use crate::attribution::Attribution;
use crate::site::{SiteKind, SiteTable};

/// One prefetch site's effectiveness in one run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SummaryRow {
    /// The run key, `workload/mode/processor`.
    pub run: String,
    /// Site ID within the run.
    pub site: u32,
    /// Method name of the site.
    pub method: String,
    /// Block index of the site.
    pub block: u32,
    /// Instruction index within the block.
    pub index: u32,
    /// Innermost loop header block, or -1 if the site is not in a loop.
    pub loop_header: i64,
    /// Site kind (display form of [`SiteKind`]).
    pub kind: String,
    /// Compilation generation of the body containing the site (0 unless
    /// adaptive reprofiling recompiled the method).
    pub generation: u32,
    /// Prefetches issued (software + guarded).
    pub issued: u64,
    /// Useful: settled before first use, or line already resident.
    pub useful: u64,
    /// Too early: evicted before use, or never demanded.
    pub too_early: u64,
    /// Too late: first use waited on the in-flight fill.
    pub too_late: u64,
    /// Dropped on a DTLB miss.
    pub dropped: u64,
    /// Guarded loads issued from this site.
    pub guarded_issued: u64,
    /// Guarded loads that primed a missing DTLB entry.
    pub guarded_tlb_primed: u64,
}

impl SummaryRow {
    /// The (run, method, block, index, generation) key identifying this
    /// site across runs (site IDs are allocation-order-dependent;
    /// positions and generations are not).
    pub fn key(&self) -> (String, String, u32, u32, u32) {
        (
            self.run.clone(),
            self.method.clone(),
            self.block,
            self.index,
            self.generation,
        )
    }

    /// `method@bN.i` — the site's position.
    pub fn location(&self) -> String {
        format!("{}@b{}.{}", self.method, self.block, self.index)
    }
}

/// Builds the per-site rows for one run from its attribution and site
/// table. Sites that never fired are included with zero counters so the
/// report shows planned-but-idle sites; events attributed to
/// [`SiteId::UNKNOWN`](crate::SiteId::UNKNOWN) get a synthetic `?` row.
pub fn rows(run: &str, attr: &Attribution, sites: &SiteTable) -> Vec<SummaryRow> {
    let mut out: Vec<SummaryRow> = sites
        .iter()
        .map(|info| {
            let e = attr.site(info.id);
            SummaryRow {
                run: run.to_string(),
                site: info.id.0,
                method: info.method.clone(),
                block: info.block,
                index: info.index,
                loop_header: info.loop_header.map_or(-1, i64::from),
                kind: info.kind.to_string(),
                generation: info.generation,
                issued: e.issued(),
                useful: e.useful(),
                too_early: e.too_early(),
                too_late: e.too_late(),
                dropped: e.dropped(),
                guarded_issued: e.guarded_issued,
                guarded_tlb_primed: e.guarded_tlb_primed,
            }
        })
        .collect();
    for (id, e) in &attr.per_site {
        if sites.get(*id).is_none() && e.issued() > 0 {
            out.push(SummaryRow {
                run: run.to_string(),
                site: id.0,
                method: "?".to_string(),
                block: 0,
                index: 0,
                loop_header: -1,
                kind: SiteKind::Unknown.to_string(),
                generation: 0,
                issued: e.issued(),
                useful: e.useful(),
                too_early: e.too_early(),
                too_late: e.too_late(),
                dropped: e.dropped(),
                guarded_issued: e.guarded_issued,
                guarded_tlb_primed: e.guarded_tlb_primed,
            });
        }
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders rows as `TRACE_summary.jsonl` (one object per line).
pub fn emit(rows: &[SummaryRow]) -> String {
    let mut s = String::new();
    for r in rows {
        let _ = writeln!(
            s,
            "{{\"run\": \"{}\", \"site\": {}, \"method\": \"{}\", \"block\": {}, \
             \"index\": {}, \"loop_header\": {}, \"kind\": \"{}\", \"generation\": {}, \
             \"issued\": {}, \
             \"useful\": {}, \"too_early\": {}, \"too_late\": {}, \"dropped\": {}, \
             \"guarded_issued\": {}, \"guarded_tlb_primed\": {}}}",
            escape(&r.run),
            r.site,
            escape(&r.method),
            r.block,
            r.index,
            r.loop_header,
            escape(&r.kind),
            r.generation,
            r.issued,
            r.useful,
            r.too_early,
            r.too_late,
            r.dropped,
            r.guarded_issued,
            r.guarded_tlb_primed,
        );
    }
    s
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Parses a file produced by [`emit`] back into its rows.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<SummaryRow>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !(line.starts_with('{') && line.contains("\"run\"")) {
            continue;
        }
        let get = |key: &str| {
            field(line, key).ok_or_else(|| format!("missing field {key} in line: {line}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("bad {key} in {line}: {e}"))
        };
        out.push(SummaryRow {
            run: get("run")?.to_string(),
            site: num("site")? as u32,
            method: get("method")?.to_string(),
            block: num("block")? as u32,
            index: num("index")? as u32,
            loop_header: get("loop_header")?
                .parse()
                .map_err(|e| format!("bad loop_header in {line}: {e}"))?,
            kind: get("kind")?.to_string(),
            // Absent in summaries written before adaptive reprofiling.
            generation: field(line, "generation")
                .map_or(Ok(0), |v| v.parse())
                .map_err(|e| format!("bad generation in {line}: {e}"))?,
            issued: num("issued")?,
            useful: num("useful")?,
            too_early: num("too_early")?,
            too_late: num("too_late")?,
            dropped: num("dropped")?,
            guarded_issued: num("guarded_issued")?,
            guarded_tlb_primed: num("guarded_tlb_primed")?,
        });
    }
    Ok(out)
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.0}%", part as f64 * 100.0 / whole as f64)
    }
}

/// Renders the per-site effectiveness table for one summary file.
pub fn render(rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    let mut last_run = "";
    let mut totals = [0u64; 5];
    for r in rows {
        if r.run != last_run {
            if !last_run.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "== {} ==", r.run);
            let _ = writeln!(
                out,
                "{:<28} {:<10} {:>7} {:>8} {:>10} {:>9} {:>8} {:>8}",
                "site", "kind", "loop", "issued", "useful", "too-early", "too-late", "dropped"
            );
            last_run = &r.run;
        }
        let loop_col = if r.loop_header < 0 {
            "-".to_string()
        } else {
            format!("b{}", r.loop_header)
        };
        let gen_col = if r.generation == 0 {
            String::new()
        } else {
            format!(" g{}", r.generation)
        };
        let _ = writeln!(
            out,
            "{:<28} {:<10} {:>7} {:>8} {:>4} {:>5} {:>4} {:>4} {:>4} {:>3} {:>4} {:>3}",
            format!("s{} {}{}", r.site, r.location(), gen_col),
            r.kind,
            loop_col,
            r.issued,
            r.useful,
            pct(r.useful, r.issued),
            r.too_early,
            pct(r.too_early, r.issued),
            r.too_late,
            pct(r.too_late, r.issued),
            r.dropped,
            pct(r.dropped, r.issued),
        );
        totals[0] += r.issued;
        totals[1] += r.useful;
        totals[2] += r.too_early;
        totals[3] += r.too_late;
        totals[4] += r.dropped;
    }
    let _ = writeln!(
        out,
        "\ntotal: {} sites, {} issued ({} useful, {} too-early, {} too-late, {} dropped)",
        rows.len(),
        totals[0],
        totals[1],
        totals[2],
        totals[3],
        totals[4],
    );
    out
}

/// Compares two summaries site by site (matched on run + site position).
/// Returns the rendered diff and the number of sites whose classification
/// changed.
pub fn diff(old: &[SummaryRow], new: &[SummaryRow]) -> (String, usize) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>16} {:>16} {:>16} {:>16}",
        "run / site", "issued", "useful", "too-early", "too-late"
    );
    let mut changed = 0usize;
    let mut matched = 0usize;
    for o in old {
        let Some(n) = new.iter().find(|n| n.key() == o.key()) else {
            continue;
        };
        matched += 1;
        let same = o.issued == n.issued
            && o.useful == n.useful
            && o.too_early == n.too_early
            && o.too_late == n.too_late
            && o.dropped == n.dropped;
        if same {
            continue;
        }
        changed += 1;
        let delta = |a: u64, b: u64| format!("{a} -> {b}");
        let _ = writeln!(
            out,
            "{:<40} {:>16} {:>16} {:>16} {:>16}",
            format!("{} {}", o.run, o.location()),
            delta(o.issued, n.issued),
            delta(o.useful, n.useful),
            delta(o.too_early, n.too_early),
            delta(o.too_late, n.too_late),
        );
    }
    for n in new {
        if !old.iter().any(|o| o.key() == n.key()) {
            changed += 1;
            let _ = writeln!(
                out,
                "{:<40} {:>16} {:>16} {:>16} {:>16}",
                format!("{} {} (new)", n.run, n.location()),
                n.issued,
                n.useful,
                n.too_early,
                n.too_late,
            );
        }
    }
    let _ = writeln!(
        out,
        "total: {matched} matched site(s), {changed} changed classification"
    );
    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::attribute;
    use crate::event::{SiteId, TraceEvent};
    use crate::site::SiteInfo;

    fn sample_rows() -> Vec<SummaryRow> {
        let mut sites = SiteTable::new();
        sites.register(SiteInfo::new(
            "findInMemory",
            2,
            4,
            1,
            Some(4),
            SiteKind::Swpf,
            0,
        ));
        sites.register(SiteInfo::new(
            "findInMemory",
            2,
            4,
            2,
            None,
            SiteKind::Guarded,
            1,
        ));
        let evs = vec![
            TraceEvent::SwpfIssued {
                site: SiteId(0),
                line: 0x100,
                now: 0,
            },
            TraceEvent::SwpfFill {
                site: SiteId(0),
                line: 0x100,
                now: 0,
                ready_at: 200,
            },
            TraceEvent::PrefetchUsed {
                site: SiteId(0),
                line: 0x100,
                now: 300,
                wait: 0,
            },
        ];
        rows("db/INTER/Pentium 4", &attribute(&evs), &sites)
    }

    #[test]
    fn rows_cover_idle_sites() {
        let rows = sample_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].issued, 1);
        assert_eq!(rows[0].useful, 1);
        assert_eq!(rows[1].issued, 0, "idle site still listed");
        assert_eq!(rows[1].loop_header, -1);
    }

    #[test]
    fn unknown_site_gets_synthetic_row() {
        let evs = vec![TraceEvent::SwpfIssued {
            site: SiteId::UNKNOWN,
            line: 0,
            now: 0,
        }];
        let rows = rows("t", &attribute(&evs), &SiteTable::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].method, "?");
        assert_eq!(rows[0].issued, 1);
    }

    #[test]
    fn emit_parse_round_trip() {
        let rows = sample_rows();
        let parsed = parse(&emit(&rows)).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(parse("{\"run\": \"db\", \"site\": 0}").is_err());
    }

    #[test]
    fn render_and_diff() {
        let rows = sample_rows();
        let table = render(&rows);
        assert!(table.contains("== db/INTER/Pentium 4 =="));
        assert!(table.contains("findInMemory@b4.1"));

        let (text, changed) = diff(&rows, &rows);
        assert_eq!(changed, 0, "{text}");

        let mut moved = rows.clone();
        moved[0].useful = 0;
        moved[0].too_late = 1;
        let (text, changed) = diff(&rows, &moved);
        assert_eq!(changed, 1);
        assert!(text.contains("1 -> 0"));
    }
}
