//! Structured event tracing and per-prefetch-site effectiveness
//! attribution.
//!
//! The paper's evaluation (§4, Figures 8–10) argues from *per-mechanism*
//! evidence: which prefetch sites fire, which fire too early (the line is
//! evicted before its use), too late (the fill completes after the first
//! demand access), and which are cancelled by a DTLB miss. The rest of the
//! workspace only exposes whole-run aggregates (`MemStats`); this crate
//! supplies the missing object/site-centric layer:
//!
//! * [`TraceEvent`] — a small `Copy` event vocabulary covering both
//!   compile-time decisions (LDG construction, inspection verdicts,
//!   profitability suppressions, planned prefetches) and runtime events
//!   (miss events, software-prefetch issue/drop/fill, guarded-load TLB
//!   priming, hardware-prefetch fills, per-line use/eviction of prefetched
//!   data, GC slides).
//! * [`TraceSink`] — the emission interface. [`NoopSink`] has
//!   `ENABLED == false`, so every emission site guarded by
//!   `if S::ENABLED { … }` is removed by monomorphization: a simulator
//!   instantiated with the no-op sink compiles to *exactly* the untraced
//!   code. [`RingSink`] is a fixed-capacity flight recorder that
//!   overwrites its oldest events.
//! * [`SiteTable`] — maps stable [`SiteId`]s back to the IR instruction
//!   (method, block, index), the enclosing loop, and the prefetch shape
//!   that generated them.
//! * [`attribution`] — the aggregation pass that classifies every issued
//!   prefetch into exactly one of **useful / too-early / too-late /
//!   dropped**, per site — the paper's Figure 8 breakdown, but per
//!   prefetch site instead of per run.
//! * [`export`] — JSONL and Chrome `trace_event` exporters.
//! * [`summary`] — a per-site summary record that round-trips through a
//!   JSONL file, with a renderer and a differ (the `spf-trace-report`
//!   CLI).
//! * [`deopt`] — the per-cell Deopt/Recompile/SiteStale aggregation
//!   (`spf-trace-report deopt-summary`), the diagnostic entry point for
//!   adaptive-mode cycle blow-ups.
//!
//! The crate is dependency-free on purpose: it sits below `spf-memsim` in
//! the workspace graph, so events name IR entities by their raw indices.

pub mod attribution;
pub mod deopt;
pub mod event;
pub mod export;
pub mod sink;
pub mod site;
pub mod summary;

pub use attribution::{attribute, Attribution, SiteEffect};
pub use event::{
    FaultKind, MissLevel, PlannedShape, SiteId, StaleReason, SuppressReason, TraceEvent,
};
pub use sink::{NoopSink, RingSink, TraceSink};
pub use site::{SiteInfo, SiteKind, SiteTable};
pub use summary::SummaryRow;
