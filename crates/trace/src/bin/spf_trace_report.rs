//! Renders or diffs `TRACE_summary.jsonl` files.
//!
//! ```text
//! cargo run -p spf-trace --bin spf-trace-report -- TRACE_summary.jsonl
//! cargo run -p spf-trace --bin spf-trace-report -- OLD.jsonl NEW.jsonl
//! cargo run -p spf-trace --bin spf-trace-report -- deopt-summary DEOPT_events.jsonl
//! cargo run -p spf-trace --bin spf-trace-report -- deopt-summary DEOPT.jsonl SERVE_summary.json
//! ```
//!
//! With one file, prints the per-site effectiveness table. With two,
//! diffs them site by site (matched on run + site position) and exits 1
//! if any site's classification changed, 0 otherwise — the same
//! conventions as `bench_diff`. `deopt-summary` aggregates the per-loop
//! invalidation/repatch events of a `DEOPT_events.jsonl` (written by
//! `figures --trace`; legacy Deopt/Recompile/SiteStale rows still count)
//! per cell — the diagnostic entry point for adaptive-mode cycle
//! blow-ups such as db/ADAPTIVE. An optional `SERVE_summary.json` after
//! the events file reconciles the trace-derived stranded-loop counts
//! against the serving report's per-mode `stranded` field, exiting 1 on
//! any mismatch.

use std::io::Write as _;
use std::process::ExitCode;

use spf_trace::deopt;
use spf_trace::summary::{self, SummaryRow};

fn load(path: &str) -> Result<Vec<SummaryRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    summary::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Render into a buffer and write it in one shot, ignoring EPIPE, so
    // `spf-trace-report ... | head` still yields the right exit code.
    let (out, code) = match args.as_slice() {
        [cmd, rest @ ..] if cmd == "deopt-summary" && matches!(rest.len(), 1 | 2) => {
            let path = &rest[0];
            let rows = std::fs::read_to_string(path)
                .map_err(|e| format!("{path}: {e}"))
                .and_then(|text| deopt::parse(&text).map_err(|e| format!("{path}: {e}")));
            let sums = match rows {
                Ok(rows) => deopt::aggregate(&rows),
                Err(e) => {
                    eprintln!("spf-trace-report: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut text = deopt::render(&sums);
            let mut code = ExitCode::SUCCESS;
            // Optional second path: a SERVE_summary.json whose per-mode
            // stranded field must agree with the trace-derived counts.
            if let Some(serve_path) = rest.get(1) {
                let reconciled = std::fs::read_to_string(serve_path)
                    .map_err(|e| format!("{serve_path}: {e}"))
                    .and_then(|serve| {
                        deopt::reconcile(&sums, &serve).map_err(|e| format!("{serve_path}: {e}"))
                    });
                match reconciled {
                    Ok((section, mismatches)) => {
                        text.push_str(&section);
                        if mismatches > 0 {
                            code = ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("spf-trace-report: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            (text, code)
        }
        [path] => match load(path) {
            Ok(rows) => (summary::render(&rows), ExitCode::SUCCESS),
            Err(e) => {
                eprintln!("spf-trace-report: {e}");
                return ExitCode::FAILURE;
            }
        },
        [old_path, new_path] => match (load(old_path), load(new_path)) {
            (Ok(old), Ok(new)) => {
                let (text, changed) = summary::diff(&old, &new);
                let code = if changed > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                };
                (text, code)
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("spf-trace-report: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!(
                "usage: spf-trace-report SUMMARY.jsonl [NEW.jsonl]\n\
                 \x20      spf-trace-report deopt-summary DEOPT_events.jsonl [SERVE_summary.json]"
            );
            return ExitCode::FAILURE;
        }
    };
    let _ = std::io::stdout().write_all(out.as_bytes());
    code
}
