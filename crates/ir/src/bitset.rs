//! A dense, fixed-capacity bitset used by the dataflow analyses.

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `self` with `other`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all elements of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn union_and_subtract() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        b.insert(1);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn intersect() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(70);
        assert!(a.intersect_with(&b));
        assert!(!a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![65]);
    }

    #[test]
    fn matches_reference_hashset() {
        spf_testkit::cases(256, "bitset matches BTreeSet", |rng| {
            let ops = rng.vec(0, 200, |r| (r.index(200), r.bool()));
            let mut s = BitSet::new(200);
            let mut r = std::collections::BTreeSet::new();
            for (i, add) in ops {
                if add {
                    assert_eq!(s.insert(i), r.insert(i));
                } else {
                    assert_eq!(s.remove(i), r.remove(&i));
                }
            }
            assert_eq!(
                s.iter().collect::<Vec<_>>(),
                r.iter().copied().collect::<Vec<_>>()
            );
            assert_eq!(s.len(), r.len());
        });
    }
}
