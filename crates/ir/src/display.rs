//! Human-readable printing of functions (used by reports and debugging).

use crate::func::Function;
use crate::instr::{Instr, PrefetchAddr, Terminator};
use crate::program::Program;

/// Renders `func` as text, resolving field/method/class names via `program`.
pub fn function_to_string(program: &Program, func: &Function) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let params: Vec<String> = func
        .params()
        .map(|r| format!("{r}: {}", func.reg_ty(r)))
        .collect();
    let ret = func
        .ret_ty()
        .map(|t| format!(" -> {t}"))
        .unwrap_or_default();
    let _ = writeln!(s, "fn {}({}){ret} {{", func.name(), params.join(", "));
    for b in func.block_ids() {
        let _ = writeln!(s, "{b}:");
        for instr in &func.block(b).instrs {
            let _ = writeln!(s, "    {}", instr_to_string(program, func, instr));
        }
        let t = match &func.block(b).term {
            Terminator::Jump(t) => format!("jump {t}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!("br {cond} ? {then_bb} : {else_bb}"),
            Terminator::Return(Some(r)) => format!("ret {r}"),
            Terminator::Return(None) => "ret".to_string(),
            Terminator::Unreachable => "unreachable".to_string(),
        };
        let _ = writeln!(s, "    {t}");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders one instruction as text.
pub fn instr_to_string(program: &Program, _func: &Function, instr: &Instr) -> String {
    let addr_str = |a: &PrefetchAddr| match *a {
        PrefetchAddr::FieldOf { base, delta } => format!("[{base} + {delta}]"),
        PrefetchAddr::ArrayElem {
            arr,
            idx,
            scale,
            delta,
        } => format!("[{arr} + {idx}*{scale} + {delta}]"),
    };
    match instr {
        Instr::Const { dst, value } => format!("{dst} = const {value}"),
        Instr::Move { dst, src } => format!("{dst} = {src}"),
        Instr::Bin { dst, op, a, b } => format!("{dst} = {op:?} {a}, {b}"),
        Instr::Un { dst, op, src } => format!("{dst} = {op:?} {src}"),
        Instr::Cmp { dst, op, a, b } => format!("{dst} = {op:?} {a}, {b}"),
        Instr::Convert { dst, conv, src } => format!("{dst} = {conv:?} {src}"),
        Instr::GetField { dst, obj, field } => {
            let fd = program.field(*field);
            format!("{dst} = getfield {obj}.{}", fd.name)
        }
        Instr::PutField { obj, field, src } => {
            let fd = program.field(*field);
            format!("putfield {obj}.{} = {src}", fd.name)
        }
        Instr::GetStatic { dst, sid } => {
            format!("{dst} = getstatic {}", program.static_def(*sid).name)
        }
        Instr::PutStatic { sid, src } => {
            format!("putstatic {} = {src}", program.static_def(*sid).name)
        }
        Instr::ALoad {
            dst,
            arr,
            idx,
            elem,
        } => format!("{dst} = aload.{elem} {arr}[{idx}]"),
        Instr::AStore {
            arr,
            idx,
            src,
            elem,
        } => format!("astore.{elem} {arr}[{idx}] = {src}"),
        Instr::ArrayLen { dst, arr } => format!("{dst} = arraylength {arr}"),
        Instr::New { dst, class } => format!("{dst} = new {}", program.class(*class).name),
        Instr::NewArray { dst, elem, len } => format!("{dst} = newarray {elem}[{len}]"),
        Instr::Call { dst, callee, args } => {
            let name = program.method(*callee).name();
            let args: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            match dst {
                Some(d) => format!("{d} = call {name}({})", args.join(", ")),
                None => format!("call {name}({})", args.join(", ")),
            }
        }
        Instr::Prefetch { addr, kind } => format!("prefetch.{kind} {}", addr_str(addr)),
        Instr::SpecLoad { dst, addr } => format!("{dst} = spec_load {}", addr_str(addr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::{ElemTy, Ty};

    #[test]
    fn renders_all_major_forms() {
        let mut pb = ProgramBuilder::new();
        let (cls, fields) = pb.add_class("Token", &[("size", ElemTy::I32)]);
        let sid = pb.add_static("g", ElemTy::I32);
        let mut b = pb.function("show", &[Ty::Ref], Some(Ty::I32));
        let o = b.param(0);
        let v = b.getfield(o, fields[0]);
        b.putstatic(sid, v);
        let t = b.new_object(cls);
        let n = b.const_i32(4);
        let arr = b.new_array(ElemTy::Ref, n);
        let zero = b.const_i32(0);
        b.astore(arr, zero, t, ElemTy::Ref);
        let len = b.arraylen(arr);
        b.ret(Some(len));
        let m = b.finish();
        let p = pb.finish();
        let text = function_to_string(&p, p.method(m).func());
        assert!(text.contains("getfield r0.size"), "{text}");
        assert!(text.contains("new Token"), "{text}");
        assert!(text.contains("newarray ref"), "{text}");
        assert!(text.contains("arraylength"), "{text}");
        assert!(text.contains("putstatic g"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }
}
