//! The program: classes, fields, statics, and methods.

use std::collections::HashMap;

use crate::entities::{ClassId, FieldId, MethodId, StaticId};
use crate::func::Function;
use crate::types::ElemTy;

/// An instance field declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDef {
    /// Field name (unique within its class).
    pub name: String,
    /// The class declaring the field.
    pub owner: ClassId,
    /// Storage type.
    pub ty: ElemTy,
}

/// A class declaration. Layout (field offsets, instance size) is computed by
/// the heap crate, not here, so the IR stays machine-independent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassDef {
    /// Class name (unique within the program).
    pub name: String,
    /// Fields in declaration order (which is also layout order).
    pub fields: Vec<FieldId>,
}

/// A static (global) variable slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StaticDef {
    /// Name (unique within the program).
    pub name: String,
    /// Storage type.
    pub ty: ElemTy,
}

/// A method: a named [`Function`].
#[derive(Clone, PartialEq, Debug)]
pub struct MethodDef {
    func: Function,
}

impl MethodDef {
    /// The method's name.
    pub fn name(&self) -> &str {
        self.func.name()
    }

    /// The method's body.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

/// A complete program: the unit the VM loads and the JIT compiles from.
#[derive(Clone, Default, Debug)]
pub struct Program {
    classes: Vec<ClassDef>,
    fields: Vec<FieldDef>,
    statics: Vec<StaticDef>,
    methods: Vec<MethodDef>,
    method_names: HashMap<String, MethodId>,
    class_names: HashMap<String, ClassId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class with the given fields; returns the class id and the
    /// field ids in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn add_class(&mut self, name: &str, fields: &[(&str, ElemTy)]) -> (ClassId, Vec<FieldId>) {
        assert!(
            !self.class_names.contains_key(name),
            "duplicate class {name}"
        );
        let cid = ClassId::new(self.classes.len());
        let mut fids = Vec::with_capacity(fields.len());
        for (fname, ty) in fields {
            let fid = FieldId::new(self.fields.len());
            self.fields.push(FieldDef {
                name: (*fname).to_string(),
                owner: cid,
                ty: *ty,
            });
            fids.push(fid);
        }
        self.classes.push(ClassDef {
            name: name.to_string(),
            fields: fids.clone(),
        });
        self.class_names.insert(name.to_string(), cid);
        (cid, fids)
    }

    /// Adds a static slot.
    pub fn add_static(&mut self, name: &str, ty: ElemTy) -> StaticId {
        let sid = StaticId::new(self.statics.len());
        self.statics.push(StaticDef {
            name: name.to_string(),
            ty,
        });
        sid
    }

    /// Adds a method; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a method with the same name already exists.
    pub fn add_method(&mut self, func: Function) -> MethodId {
        let name = func.name().to_string();
        assert!(
            !self.method_names.contains_key(&name),
            "duplicate method {name}"
        );
        let mid = MethodId::new(self.methods.len());
        self.methods.push(MethodDef { func });
        self.method_names.insert(name, mid);
        mid
    }

    /// Replaces the body of `mid` (used by the JIT to install optimized
    /// code — the VM keeps original and compiled bodies separately, so this
    /// is mostly for tests).
    pub fn replace_method_body(&mut self, mid: MethodId, func: Function) {
        self.methods[mid.index()].func = func;
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of static slots.
    pub fn static_count(&self) -> usize {
        self.statics.len()
    }

    /// Number of fields across all classes.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Borrows class `cid`.
    ///
    /// # Panics
    ///
    /// Panics on an id from another program.
    pub fn class(&self, cid: ClassId) -> &ClassDef {
        &self.classes[cid.index()]
    }

    /// Borrows field `fid`.
    ///
    /// # Panics
    ///
    /// Panics on an id from another program.
    pub fn field(&self, fid: FieldId) -> &FieldDef {
        &self.fields[fid.index()]
    }

    /// Borrows static `sid`.
    ///
    /// # Panics
    ///
    /// Panics on an id from another program.
    pub fn static_def(&self, sid: StaticId) -> &StaticDef {
        &self.statics[sid.index()]
    }

    /// Borrows method `mid`.
    ///
    /// # Panics
    ///
    /// Panics on an id from another program.
    pub fn method(&self, mid: MethodId) -> &MethodDef {
        &self.methods[mid.index()]
    }

    /// Looks up a method by name.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.method_names.get(name).copied()
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// All method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len()).map(MethodId::new)
    }

    /// All class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId::new)
    }

    /// All static ids.
    pub fn static_ids(&self) -> impl Iterator<Item = StaticId> {
        (0..self.statics.len()).map(StaticId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    #[test]
    fn classes_and_fields() {
        let mut p = Program::new();
        let (c, fs) = p.add_class("Token", &[("size", ElemTy::I32), ("facts", ElemTy::Ref)]);
        assert_eq!(p.class(c).name, "Token");
        assert_eq!(fs.len(), 2);
        assert_eq!(p.field(fs[1]).ty, ElemTy::Ref);
        assert_eq!(p.field(fs[0]).owner, c);
        assert_eq!(p.class_by_name("Token"), Some(c));
        assert_eq!(p.class_by_name("Nope"), None);
    }

    #[test]
    fn methods() {
        let mut p = Program::new();
        let f = Function::with_signature("main", &[], Some(Ty::I32));
        let m = p.add_method(f);
        assert_eq!(p.method_by_name("main"), Some(m));
        assert_eq!(p.method(m).name(), "main");
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut p = Program::new();
        p.add_class("A", &[]);
        p.add_class("A", &[]);
    }

    #[test]
    fn statics() {
        let mut p = Program::new();
        let s = p.add_static("roots", ElemTy::Ref);
        assert_eq!(p.static_def(s).ty, ElemTy::Ref);
        assert_eq!(p.static_count(), 1);
    }
}
