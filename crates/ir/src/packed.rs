//! Dense operand encodings for pre-decoded (threaded) code.
//!
//! The direct-threaded interpreter in `spf-vm` flattens every instruction
//! into a fixed-size op word; enum operands travel as small integer codes
//! and register pairs are packed into a single `u32`. The encodings here are
//! the single source of truth for that packing so the decoder and the
//! handlers cannot drift apart.

use crate::entities::{BlockId, InstrRef, Reg};
use crate::instr::{BinOp, CmpOp, Conv, UnOp};
use crate::types::ElemTy;

/// Implements `code`/`from_code` for a C-like enum with a stable numbering.
macro_rules! packable_enum {
    ($ty:ty, $($variant:ident = $code:expr),+ $(,)?) => {
        impl $ty {
            /// Stable small-integer code for packed operand words.
            #[inline(always)]
            pub fn code(self) -> u8 {
                match self {
                    $(<$ty>::$variant => $code,)+
                }
            }

            /// Inverse of [`Self::code`]. Panics on an unknown code, which
            /// can only happen if a decoder packs with a different table.
            #[inline(always)]
            pub fn from_code(code: u8) -> Self {
                match code {
                    $($code => <$ty>::$variant,)+
                    _ => panic!(concat!("invalid ", stringify!($ty), " code: {}"), code),
                }
            }
        }
    };
}

packable_enum!(
    BinOp,
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    Rem = 4,
    And = 5,
    Or = 6,
    Xor = 7,
    Shl = 8,
    Shr = 9,
    UShr = 10,
);

packable_enum!(CmpOp, Eq = 0, Ne = 1, Lt = 2, Le = 3, Gt = 4, Ge = 5);

packable_enum!(UnOp, Neg = 0, Not = 1);

packable_enum!(
    Conv,
    I32ToI64 = 0,
    I64ToI32 = 1,
    I32ToF64 = 2,
    F64ToI32 = 3,
    I64ToF64 = 4,
    F64ToI64 = 5,
);

packable_enum!(ElemTy, I8 = 0, I32 = 1, I64 = 2, F64 = 3, Ref = 4);

/// Packed kind code for [`crate::Const::I32`].
pub const CONST_I32: u8 = 0;
/// Packed kind code for [`crate::Const::I64`].
pub const CONST_I64: u8 = 1;
/// Packed kind code for [`crate::Const::F64`].
pub const CONST_F64: u8 = 2;
/// Packed kind code for [`crate::Const::Null`].
pub const CONST_NULL: u8 = 3;

impl InstrRef {
    /// Packs the site into one `u64` (`block << 32 | index`) so threaded ops
    /// can carry error/profile attribution without widening the op word.
    #[inline(always)]
    pub fn pack(self) -> u64 {
        ((self.block.index() as u64) << 32) | self.index as u64
    }

    /// Inverse of [`Self::pack`].
    #[inline(always)]
    pub fn unpack(packed: u64) -> Self {
        InstrRef {
            block: BlockId::new((packed >> 32) as usize),
            index: packed as u32,
        }
    }
}

/// Packs two registers into one `u32` (`a << 16 | b`), or `None` if either
/// index does not fit in 16 bits (the decoder then skips fusion for that
/// pair rather than miscompiling it).
#[inline(always)]
pub fn pack_reg_pair(a: Reg, b: Reg) -> Option<u32> {
    if a.index() <= u16::MAX as usize && b.index() <= u16::MAX as usize {
        Some(((a.index() as u32) << 16) | b.index() as u32)
    } else {
        None
    }
}

/// Inverse of [`pack_reg_pair`].
#[inline(always)]
pub fn unpack_reg_pair(packed: u32) -> (Reg, Reg) {
    (
        Reg::new((packed >> 16) as usize),
        Reg::new((packed & 0xffff) as usize),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_codes_round_trip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::UShr,
        ] {
            assert_eq!(BinOp::from_code(op.code()), op);
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(CmpOp::from_code(op.code()), op);
        }
        for op in [UnOp::Neg, UnOp::Not] {
            assert_eq!(UnOp::from_code(op.code()), op);
        }
        for c in [
            Conv::I32ToI64,
            Conv::I64ToI32,
            Conv::I32ToF64,
            Conv::F64ToI32,
            Conv::I64ToF64,
            Conv::F64ToI64,
        ] {
            assert_eq!(Conv::from_code(c.code()), c);
        }
        for e in [
            ElemTy::I8,
            ElemTy::I32,
            ElemTy::I64,
            ElemTy::F64,
            ElemTy::Ref,
        ] {
            assert_eq!(ElemTy::from_code(e.code()), e);
        }
    }

    #[test]
    fn site_packing_round_trips() {
        let site = InstrRef::new(BlockId::new(7), 123);
        assert_eq!(InstrRef::unpack(site.pack()), site);
        let wide = InstrRef::new(BlockId::new(0xabcdef), u32::MAX as usize);
        assert_eq!(InstrRef::unpack(wide.pack()), wide);
    }

    #[test]
    fn reg_pair_packing() {
        let (a, b) = (Reg::new(3), Reg::new(65535));
        let packed = pack_reg_pair(a, b).unwrap();
        assert_eq!(unpack_reg_pair(packed), (a, b));
        assert_eq!(pack_reg_pair(Reg::new(65536), b), None);
        assert_eq!(pack_reg_pair(a, Reg::new(70000)), None);
    }
}
