//! Typed register IR for the stride-prefetch JIT reproduction.
//!
//! This crate provides the compiler substrate the paper's algorithm runs on:
//!
//! * a Java-bytecode-like, register-based intermediate representation
//!   ([`Instr`], [`Function`], [`Program`]) including the load instructions
//!   that can appear in a *load dependence graph* (`GetField`, `GetStatic`,
//!   `ALoad`, `ArrayLen`) and the two pseudo-instructions the optimizer
//!   inserts (`Prefetch`, `SpecLoad`);
//! * a [`FunctionBuilder`] with structured control flow for writing
//!   workloads by hand;
//! * classic analyses: control-flow graph ([`cfg::Cfg`]), dominators
//!   ([`dom::DomTree`]), a loop nesting forest ([`loops::LoopForest`]) and
//!   reaching definitions / use-def chains ([`defuse::UseDef`]);
//! * an IR [`verify::verify`] pass used by tests and by the builder.
//!
//! # Example
//!
//! ```
//! use spf_ir::{ProgramBuilder, Ty, Const};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut b = pb.function("add1", &[Ty::I32], Some(Ty::I32));
//! let x = b.param(0);
//! let one = b.const_i32(1);
//! let y = b.add(x, one);
//! b.ret(Some(y));
//! let m = b.finish();
//! let program = pb.finish();
//! assert_eq!(program.method(m).name(), "add1");
//! ```

pub mod bitset;
pub mod builder;
pub mod cfg;
pub mod defuse;
pub mod display;
pub mod dom;
pub mod dot;
pub mod entities;
pub mod func;
pub mod instr;
pub mod loops;
pub mod packed;
pub mod program;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use entities::{BlockId, ClassId, FieldId, InstrRef, MethodId, Reg, StaticId};
pub use func::{Block, Function};
pub use instr::{BinOp, CmpOp, Conv, Instr, PrefetchAddr, PrefetchKind, Terminator, UnOp};
pub use packed::{pack_reg_pair, unpack_reg_pair};
pub use program::{ClassDef, FieldDef, MethodDef, Program, StaticDef};
pub use types::{Const, ElemTy, Ty};
