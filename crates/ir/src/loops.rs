//! Natural loops and the loop nesting forest.
//!
//! The paper's algorithm "first attempts to identify loops, constructing a
//! loop nesting forest. The algorithm then traverses the loops in each tree
//! in a postorder traversal, walking the trees in the program order"
//! (§3). [`LoopForest::postorder`] provides exactly that traversal order.

use std::collections::VecDeque;

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::entities::BlockId;
use crate::func::Function;

/// Identifies a loop within a [`LoopForest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LoopId(u32);

impl LoopId {
    fn new(i: usize) -> Self {
        LoopId(u32::try_from(i).expect("loop index overflow"))
    }

    /// Dense index of this loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// One natural loop: header plus body blocks (including nested loops'
/// blocks).
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The loop header block.
    pub header: BlockId,
    /// All blocks of the loop (header included), as a bitset over block ids.
    pub blocks: BitSet,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
}

impl LoopInfo {
    /// Whether `b` belongs to this loop (header included).
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(b.index())
    }

    /// Number of blocks in the loop.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// The loop nesting forest of a function.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<LoopInfo>,
    roots: Vec<LoopId>,
    /// innermost loop containing each block, if any
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detects natural loops (back edges `n -> h` with `h` dominating `n`),
    /// merging loops that share a header, and builds the nesting forest.
    pub fn compute(func: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let nblocks = func.block_count();
        // Collect back edges grouped by header, in program order of headers.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches: Vec<Vec<BlockId>> = Vec::new();
        for b in func.block_ids() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for s in func.block(b).term.successors() {
                if dom.dominates(s, b) {
                    match headers.iter().position(|&h| h == s) {
                        Some(i) => latches[i].push(b),
                        None => {
                            headers.push(s);
                            latches.push(vec![b]);
                        }
                    }
                }
            }
        }
        // Body of each loop: header + all blocks that reach a latch without
        // passing through the header (standard worklist over predecessors).
        let mut loops: Vec<LoopInfo> = Vec::with_capacity(headers.len());
        for (i, &h) in headers.iter().enumerate() {
            let mut blocks = BitSet::new(nblocks);
            blocks.insert(h.index());
            let mut work: VecDeque<BlockId> = VecDeque::new();
            for &l in &latches[i] {
                if blocks.insert(l.index()) {
                    work.push_back(l);
                }
            }
            while let Some(b) = work.pop_front() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) && blocks.insert(p.index()) {
                        work.push_back(p);
                    }
                }
            }
            loops.push(LoopInfo {
                header: h,
                blocks,
                parent: None,
                children: Vec::new(),
            });
        }
        // Nesting: loop A is the parent of loop B if A contains B's header
        // and A is the smallest such loop.
        let order: Vec<usize> = {
            let mut o: Vec<usize> = (0..loops.len()).collect();
            o.sort_by_key(|&i| loops[i].block_count());
            o
        };
        for bi in 0..loops.len() {
            let header = loops[bi].header;
            let mut best: Option<usize> = None;
            for &ai in &order {
                if ai != bi
                    && loops[ai].contains(header)
                    && loops[ai].block_count() > loops[bi].block_count()
                {
                    best = Some(ai);
                    break; // order is by size, so the first hit is smallest
                }
            }
            if let Some(p) = best {
                loops[bi].parent = Some(LoopId::new(p));
            }
        }
        let mut roots = Vec::new();
        for i in 0..loops.len() {
            match loops[i].parent {
                Some(p) => {
                    let child = LoopId::new(i);
                    loops[p.index()].children.push(child);
                }
                None => roots.push(LoopId::new(i)),
            }
        }
        // Innermost loop per block.
        let mut innermost: Vec<Option<LoopId>> = vec![None; nblocks];
        let mut by_size: Vec<usize> = (0..loops.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(loops[i].block_count()));
        for &i in &by_size {
            for b in loops[i].blocks.iter() {
                innermost[b] = Some(LoopId::new(i));
            }
        }
        LoopForest {
            loops,
            roots,
            innermost,
        }
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Borrows a loop.
    ///
    /// # Panics
    ///
    /// Panics on a [`LoopId`] from another forest.
    pub fn info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Top-level loops in program order.
    pub fn roots(&self) -> &[LoopId] {
        &self.roots
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.index()]
    }

    /// Nesting depth of a loop (top-level = 1).
    pub fn depth(&self, id: LoopId) -> usize {
        let mut d = 1;
        let mut cur = id;
        while let Some(p) = self.loops[cur.index()].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// All loops in the paper's processing order: each tree in program
    /// order, loops within a tree in postorder (innermost first).
    pub fn postorder(&self) -> Vec<LoopId> {
        let mut out = Vec::with_capacity(self.loops.len());
        fn visit(f: &LoopForest, id: LoopId, out: &mut Vec<LoopId>) {
            for &c in &f.loops[id.index()].children {
                visit(f, c, out);
            }
            out.push(id);
        }
        for &r in &self.roots {
            visit(self, r, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Ty;
    use crate::CmpOp;

    fn analyse(p: &crate::Program, m: crate::MethodId) -> (Cfg, DomTree, LoopForest) {
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let lf = LoopForest::compute(f, &cfg, &dom);
        (cfg, dom, lf)
    }

    #[test]
    fn single_loop() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("l", &[Ty::I32], None);
        let n = b.param(0);
        b.for_i32(0, 1, CmpOp::Lt, |_| n, |_, _| {});
        let m = b.finish();
        let p = pb.finish();
        let (_, _, lf) = analyse(&p, m);
        assert_eq!(lf.len(), 1);
        assert_eq!(lf.roots().len(), 1);
        assert_eq!(lf.depth(lf.roots()[0]), 1);
    }

    #[test]
    fn doubly_nested_loop() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("nest", &[Ty::I32], None);
        let n = b.param(0);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _| {
                b.for_i32(0, 1, CmpOp::Lt, |_| n, |_, _| {});
            },
        );
        let m = b.finish();
        let p = pb.finish();
        let (_, _, lf) = analyse(&p, m);
        assert_eq!(lf.len(), 2);
        assert_eq!(lf.roots().len(), 1);
        let outer = lf.roots()[0];
        assert_eq!(lf.info(outer).children.len(), 1);
        let inner = lf.info(outer).children[0];
        assert_eq!(lf.depth(inner), 2);
        // Postorder visits the inner loop first.
        assert_eq!(lf.postorder(), vec![inner, outer]);
        // The outer loop contains the inner loop's header.
        assert!(lf.info(outer).contains(lf.info(inner).header));
    }

    #[test]
    fn sequential_loops_are_siblings() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("seq", &[Ty::I32], None);
        let n = b.param(0);
        b.for_i32(0, 1, CmpOp::Lt, |_| n, |_, _| {});
        b.for_i32(0, 1, CmpOp::Lt, |_| n, |_, _| {});
        let m = b.finish();
        let p = pb.finish();
        let (_, _, lf) = analyse(&p, m);
        assert_eq!(lf.len(), 2);
        assert_eq!(lf.roots().len(), 2);
        // Program order: first loop's header precedes the second's.
        let a = lf.info(lf.roots()[0]).header;
        let c = lf.info(lf.roots()[1]).header;
        assert!(a < c);
    }

    #[test]
    fn no_loops() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("s", &[], None);
        let _ = b.const_i32(1);
        let m = b.finish();
        let p = pb.finish();
        let (_, _, lf) = analyse(&p, m);
        assert!(lf.is_empty());
        assert!(lf.postorder().is_empty());
    }

    #[test]
    fn while_loop_innermost_mapping() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("w", &[Ty::I32], None);
        let n = b.param(0);
        let i = b.new_reg(Ty::I32);
        let z = b.const_i32(0);
        b.move_(i, z);
        b.while_(|b| b.lt(i, n), |b| b.inc(i, 1));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let (_, _, lf) = analyse(&p, m);
        let l = lf.roots()[0];
        let header = lf.info(l).header;
        assert_eq!(lf.innermost(header), Some(l));
        assert_eq!(lf.innermost(f.entry()), None);
    }
}
