//! Program and function builders with structured control flow.
//!
//! [`FunctionBuilder`] keeps track of a *current block* and provides
//! structured helpers (`if_`, `if_else`, `while_`, `for_i32`) plus
//! `break_`/`continue_` that work across nesting levels — enough to express
//! the labelled `continue TokenLoop` of the paper's motivating example.

use crate::entities::{BlockId, ClassId, FieldId, MethodId, Reg, StaticId};
use crate::func::Function;
use crate::instr::{BinOp, CmpOp, Conv, Instr, Terminator, UnOp};
use crate::program::Program;
use crate::types::{Const, ElemTy, Ty};

/// Incrementally builds a [`Program`].
#[derive(Default, Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class; see [`Program::add_class`].
    pub fn add_class(&mut self, name: &str, fields: &[(&str, ElemTy)]) -> (ClassId, Vec<FieldId>) {
        self.program.add_class(name, fields)
    }

    /// Adds a static slot; see [`Program::add_static`].
    pub fn add_static(&mut self, name: &str, ty: ElemTy) -> StaticId {
        self.program.add_static(name, ty)
    }

    /// Declares a method signature without a body, so it can be called
    /// recursively or before its body is built. Define it later with
    /// [`ProgramBuilder::define`].
    pub fn declare(&mut self, name: &str, params: &[Ty], ret: Option<Ty>) -> MethodId {
        self.program
            .add_method(Function::with_signature(name, params, ret))
    }

    /// Starts building the body of a previously [`declare`](Self::declare)d
    /// method.
    pub fn define(&mut self, mid: MethodId) -> FunctionBuilder<'_> {
        let decl = self.program.method(mid).func();
        let params: Vec<Ty> = decl.params().map(|r| decl.reg_ty(r)).collect();
        let func = Function::with_signature(decl.name(), &params, decl.ret_ty());
        FunctionBuilder::with_parts(self, mid, func)
    }

    /// Declares a new method and starts building its body in one step.
    pub fn function(&mut self, name: &str, params: &[Ty], ret: Option<Ty>) -> FunctionBuilder<'_> {
        let mid = self.declare(name, params, ret);
        self.define(mid)
    }

    /// Read access to the program built so far.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Finishes and returns the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

#[derive(Debug, Clone, Copy)]
struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

/// Builds one function body; created by [`ProgramBuilder::function`] or
/// [`ProgramBuilder::define`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    mid: MethodId,
    func: Function,
    cur: BlockId,
    done: bool,
    loops: Vec<LoopCtx>,
}

impl<'a> FunctionBuilder<'a> {
    fn with_parts(pb: &'a mut ProgramBuilder, mid: MethodId, func: Function) -> Self {
        let cur = func.entry();
        FunctionBuilder {
            pb,
            mid,
            func,
            cur,
            done: false,
            loops: Vec::new(),
        }
    }

    /// The program being built (for id lookups while building).
    pub fn program(&self) -> &Program {
        self.pb.program()
    }

    /// The id of the method being built.
    pub fn method_id(&self) -> MethodId {
        self.mid
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.func.param_count(), "parameter {i} out of range");
        Reg::new(i)
    }

    /// Allocates a fresh register of type `ty` (a mutable local variable).
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        self.func.new_reg(ty)
    }

    fn push(&mut self, i: Instr) {
        assert!(!self.done, "function already finished");
        self.func.block_mut(self.cur).instrs.push(i);
    }

    fn emit_value(&mut self, ty: Ty, make: impl FnOnce(Reg) -> Instr) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(make(dst));
        dst
    }

    // ---- constants ------------------------------------------------------

    /// Materializes an `I32` constant.
    pub fn const_i32(&mut self, v: i32) -> Reg {
        self.emit_value(Ty::I32, |dst| Instr::Const {
            dst,
            value: Const::I32(v),
        })
    }

    /// Materializes an `I64` constant.
    pub fn const_i64(&mut self, v: i64) -> Reg {
        self.emit_value(Ty::I64, |dst| Instr::Const {
            dst,
            value: Const::I64(v),
        })
    }

    /// Materializes an `F64` constant.
    pub fn const_f64(&mut self, v: f64) -> Reg {
        self.emit_value(Ty::F64, |dst| Instr::Const {
            dst,
            value: Const::F64(v),
        })
    }

    /// Materializes the null reference.
    pub fn null(&mut self) -> Reg {
        self.emit_value(Ty::Ref, |dst| Instr::Const {
            dst,
            value: Const::Null,
        })
    }

    // ---- data movement and arithmetic ------------------------------------

    /// Copies `src` into the existing register `dst` (assignment to a local).
    pub fn move_(&mut self, dst: Reg, src: Reg) {
        self.push(Instr::Move { dst, src });
    }

    /// Emits `dst = op a b` into a fresh register typed like `a`.
    pub fn bin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let ty = self.func.reg_ty(a);
        self.emit_value(ty, |dst| Instr::Bin { dst, op, a, b })
    }

    /// Addition.
    pub fn add(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Add, a, b)
    }

    /// Subtraction.
    pub fn sub(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }

    /// Multiplication.
    pub fn mul(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }

    /// Division.
    pub fn div(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Div, a, b)
    }

    /// Remainder.
    pub fn rem(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Rem, a, b)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::And, a, b)
    }

    /// Bitwise or.
    pub fn or(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Or, a, b)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Xor, a, b)
    }

    /// Left shift.
    pub fn shl(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Shl, a, b)
    }

    /// Arithmetic right shift.
    pub fn shr(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Shr, a, b)
    }

    /// Unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, src: Reg) -> Reg {
        let ty = self.func.reg_ty(src);
        self.emit_value(ty, |dst| Instr::Un { dst, op, src })
    }

    /// Numeric conversion into a fresh register.
    pub fn convert(&mut self, conv: Conv, src: Reg) -> Reg {
        let (_, to) = conv.signature();
        self.emit_value(to, |dst| Instr::Convert { dst, conv, src })
    }

    /// Comparison into a fresh `I32` register (0 or 1).
    pub fn cmp(&mut self, op: CmpOp, a: Reg, b: Reg) -> Reg {
        self.emit_value(Ty::I32, |dst| Instr::Cmp { dst, op, a, b })
    }

    /// `a < b`.
    pub fn lt(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Lt, a, b)
    }

    /// `a <= b`.
    pub fn le(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Le, a, b)
    }

    /// `a > b`.
    pub fn gt(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Gt, a, b)
    }

    /// `a >= b`.
    pub fn ge(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Ge, a, b)
    }

    /// `a == b`.
    pub fn eq(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Ne, a, b)
    }

    /// Adds the `I32` constant `by` to register `var` in place.
    pub fn inc(&mut self, var: Reg, by: i32) {
        let c = self.const_i32(by);
        let sum = self.add(var, c);
        self.move_(var, sum);
    }

    // ---- memory -----------------------------------------------------------

    /// `obj.field` into a fresh register of the field's type.
    pub fn getfield(&mut self, obj: Reg, field: FieldId) -> Reg {
        let ty = self.pb.program().field(field).ty.reg_ty();
        self.emit_value(ty, |dst| Instr::GetField { dst, obj, field })
    }

    /// `obj.field = src`.
    pub fn putfield(&mut self, obj: Reg, field: FieldId, src: Reg) {
        self.push(Instr::PutField { obj, field, src });
    }

    /// Loads a static slot.
    pub fn getstatic(&mut self, sid: StaticId) -> Reg {
        let ty = self.pb.program().static_def(sid).ty.reg_ty();
        self.emit_value(ty, |dst| Instr::GetStatic { dst, sid })
    }

    /// Stores to a static slot.
    pub fn putstatic(&mut self, sid: StaticId, src: Reg) {
        self.push(Instr::PutStatic { sid, src });
    }

    /// `arr[idx]` with element type `elem`.
    pub fn aload(&mut self, arr: Reg, idx: Reg, elem: ElemTy) -> Reg {
        self.emit_value(elem.reg_ty(), |dst| Instr::ALoad {
            dst,
            arr,
            idx,
            elem,
        })
    }

    /// `arr[idx] = src`.
    pub fn astore(&mut self, arr: Reg, idx: Reg, src: Reg, elem: ElemTy) {
        self.push(Instr::AStore {
            arr,
            idx,
            src,
            elem,
        });
    }

    /// `arr.length`.
    pub fn arraylen(&mut self, arr: Reg) -> Reg {
        self.emit_value(Ty::I32, |dst| Instr::ArrayLen { dst, arr })
    }

    /// Allocates an object.
    pub fn new_object(&mut self, class: ClassId) -> Reg {
        self.emit_value(Ty::Ref, |dst| Instr::New { dst, class })
    }

    /// Allocates an array.
    pub fn new_array(&mut self, elem: ElemTy, len: Reg) -> Reg {
        self.emit_value(Ty::Ref, |dst| Instr::NewArray { dst, elem, len })
    }

    /// Calls a method that returns a value.
    ///
    /// # Panics
    ///
    /// Panics if the callee returns nothing; use
    /// [`call_void`](Self::call_void) for those.
    pub fn call(&mut self, callee: MethodId, args: &[Reg]) -> Reg {
        let ret = self
            .pb
            .program()
            .method(callee)
            .func()
            .ret_ty()
            .expect("callee returns no value; use call_void");
        let args = args.to_vec();
        self.emit_value(ret, |dst| Instr::Call {
            dst: Some(dst),
            callee,
            args,
        })
    }

    /// Calls a method that returns nothing.
    pub fn call_void(&mut self, callee: MethodId, args: &[Reg]) {
        self.push(Instr::Call {
            dst: None,
            callee,
            args: args.to_vec(),
        });
    }

    // ---- control flow -----------------------------------------------------

    /// Creates a new (empty) block.
    pub fn create_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Switches emission to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The current block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            matches!(self.func.block(self.cur).term, Terminator::Unreachable),
            "block {} already terminated",
            self.cur
        );
        self.func.block_mut(self.cur).term = term;
    }

    /// Ends the current block with a jump and switches to `to`... no — the
    /// caller decides where to emit next via [`switch_to`](Self::switch_to).
    pub fn jump(&mut self, to: BlockId) {
        self.terminate(Terminator::Jump(to));
    }

    /// Ends the current block with a conditional branch.
    pub fn branch(&mut self, cond: Reg, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Returns from the function and switches emission to a fresh
    /// (unreachable) block so structured builders can continue.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.terminate(Terminator::Return(value));
        let dead = self.create_block();
        self.switch_to(dead);
    }

    /// `if (cond != 0) { then }`.
    pub fn if_(&mut self, cond: Reg, then: impl FnOnce(&mut Self)) {
        let then_bb = self.create_block();
        let join = self.create_block();
        self.branch(cond, then_bb, join);
        self.switch_to(then_bb);
        then(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// `if (cond != 0) { then } else { els }`.
    pub fn if_else(
        &mut self,
        cond: Reg,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let then_bb = self.create_block();
        let else_bb = self.create_block();
        let join = self.create_block();
        self.branch(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then(self);
        self.jump(join);
        self.switch_to(else_bb);
        els(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// `while (cond()) { body }`. The condition closure is re-evaluated on
    /// every iteration (so e.g. a `getfield` limit is reloaded each time,
    /// like Java source semantics). `continue_` targets the condition.
    pub fn while_(&mut self, cond: impl FnOnce(&mut Self) -> Reg, body: impl FnOnce(&mut Self)) {
        let head = self.create_block();
        let body_bb = self.create_block();
        let exit = self.create_block();
        self.jump(head);
        self.switch_to(head);
        let c = cond(self);
        self.branch(c, body_bb, exit);
        self.switch_to(body_bb);
        self.loops.push(LoopCtx {
            continue_target: head,
            break_target: exit,
        });
        body(self);
        self.loops.pop();
        self.jump(head);
        self.switch_to(exit);
    }

    /// `for (i = init; i cmp limit(); i += step) { body(i) }`.
    ///
    /// Returns the counter register. `continue_` targets the increment.
    pub fn for_i32(
        &mut self,
        init: i32,
        step: i32,
        cmp: CmpOp,
        limit: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self, Reg),
    ) -> Reg {
        let i = self.new_reg(Ty::I32);
        let init_c = self.const_i32(init);
        self.move_(i, init_c);
        let head = self.create_block();
        let body_bb = self.create_block();
        let incr = self.create_block();
        let exit = self.create_block();
        self.jump(head);
        self.switch_to(head);
        let l = limit(self);
        let c = self.cmp(cmp, i, l);
        self.branch(c, body_bb, exit);
        self.switch_to(body_bb);
        self.loops.push(LoopCtx {
            continue_target: incr,
            break_target: exit,
        });
        body(self, i);
        self.loops.pop();
        self.jump(incr);
        self.switch_to(incr);
        self.inc(i, step);
        self.jump(head);
        self.switch_to(exit);
        i
    }

    /// A general `for`-style loop: `while (cond()) { body(); update(); }`
    /// where `continue_` targets the `update` code (unlike
    /// [`while_`](Self::while_), where it targets the condition).
    pub fn loop_with_update(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
        update: impl FnOnce(&mut Self),
    ) {
        let head = self.create_block();
        let body_bb = self.create_block();
        let update_bb = self.create_block();
        let exit = self.create_block();
        self.jump(head);
        self.switch_to(head);
        let c = cond(self);
        self.branch(c, body_bb, exit);
        self.switch_to(body_bb);
        self.loops.push(LoopCtx {
            continue_target: update_bb,
            break_target: exit,
        });
        body(self);
        self.loops.pop();
        self.jump(update_bb);
        self.switch_to(update_bb);
        update(self);
        self.jump(head);
        self.switch_to(exit);
    }

    /// Pushes a loop context so that `break_`/`continue_` emitted by an
    /// external lowering (e.g. the `spf-lang` front end, which manages its
    /// own blocks) target the given blocks. Must be balanced with
    /// [`pop_loop_ctx`](Self::pop_loop_ctx).
    pub fn push_loop_ctx(&mut self, continue_target: BlockId, break_target: BlockId) {
        self.loops.push(LoopCtx {
            continue_target,
            break_target,
        });
    }

    /// Pops a loop context pushed with [`push_loop_ctx`](Self::push_loop_ctx).
    ///
    /// # Panics
    ///
    /// Panics if no context is active.
    pub fn pop_loop_ctx(&mut self) {
        self.loops.pop().expect("unbalanced pop_loop_ctx");
    }

    /// `continue` targeting the loop `depth` levels out (0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics if there is no enclosing loop at that depth.
    pub fn continue_(&mut self, depth: usize) {
        let ctx = self.loops[self.loops.len() - 1 - depth];
        self.jump(ctx.continue_target);
        let dead = self.create_block();
        self.switch_to(dead);
    }

    /// `break` targeting the loop `depth` levels out (0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics if there is no enclosing loop at that depth.
    pub fn break_(&mut self, depth: usize) {
        let ctx = self.loops[self.loops.len() - 1 - depth];
        self.jump(ctx.break_target);
        let dead = self.create_block();
        self.switch_to(dead);
    }

    /// Finishes the function: terminates a trailing open block (with
    /// `Return(None)` for void functions), verifies the body, installs it
    /// in the program, and returns the method id.
    ///
    /// # Panics
    ///
    /// Panics if verification fails.
    pub fn finish(mut self) -> MethodId {
        if matches!(self.func.block(self.cur).term, Terminator::Unreachable)
            && self.func.ret_ty().is_none()
        {
            self.func.block_mut(self.cur).term = Terminator::Return(None);
        }
        self.done = true;
        let mid = self.mid;
        let func = std::mem::replace(&mut self.func, Function::with_signature("", &[], None));
        if let Err(e) = crate::verify::verify(self.pb.program(), &func) {
            panic!("IR verification failed for `{}`: {e}", func.name());
        }
        self.pb.program.replace_method_body(mid, func);
        mid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("f", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let one = b.const_i32(1);
        let y = b.add(x, one);
        b.ret(Some(y));
        let mid = b.finish();
        let p = pb.finish();
        assert_eq!(p.method(mid).name(), "f");
        assert!(p.method(mid).func().instr_count() >= 2);
    }

    #[test]
    fn while_loop_shape() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("count", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let i = b.new_reg(Ty::I32);
        let zero = b.const_i32(0);
        b.move_(i, zero);
        b.while_(|b| b.lt(i, n), |b| b.inc(i, 1));
        b.ret(Some(i));
        let mid = b.finish();
        let p = pb.finish();
        // entry + head + body + exit + dead-after-ret
        assert!(p.method(mid).func().block_count() >= 4);
    }

    #[test]
    fn nested_loop_with_labelled_continue() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("nest", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        let total = b.new_reg(Ty::I32);
        let zero = b.const_i32(0);
        b.move_(total, zero);
        b.for_i32(
            0,
            1,
            CmpOp::Lt,
            |_| n,
            |b, _i| {
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| n,
                    |b, j| {
                        let two = b.const_i32(2);
                        let c = b.ge(j, two);
                        b.if_(c, |b| b.continue_(1)); // continue the *outer* loop
                        b.inc(total, 1);
                    },
                );
            },
        );
        b.ret(Some(total));
        b.finish();
    }

    #[test]
    fn if_else_returns() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("abs", &[Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.const_i32(0);
        let c = b.lt(x, zero);
        let out = b.new_reg(Ty::I32);
        b.if_else(
            c,
            |b| {
                let n = b.un(UnOp::Neg, x);
                b.move_(out, n);
            },
            |b| b.move_(out, x),
        );
        b.ret(Some(out));
        b.finish();
    }

    #[test]
    fn declare_then_define_recursion() {
        let mut pb = ProgramBuilder::new();
        let fib = pb.declare("fib", &[Ty::I32], Some(Ty::I32));
        let mut b = pb.define(fib);
        let n = b.param(0);
        let two = b.const_i32(2);
        let c = b.lt(n, two);
        b.if_(c, |b| b.ret(Some(n)));
        let one = b.const_i32(1);
        let n1 = b.sub(n, one);
        let a = b.call(fib, &[n1]);
        let n2 = b.sub(n, two);
        let bb = b.call(fib, &[n2]);
        let s = b.add(a, bb);
        b.ret(Some(s));
        b.finish();
        assert!(pb.finish().method_by_name("fib").is_some());
    }
}
