//! IR instructions and terminators.

use crate::entities::{BlockId, FieldId, MethodId, Reg, StaticId};
use crate::types::{Const, ElemTy};

/// Binary arithmetic/logic operations.
///
/// Integer-only operations (`Rem`, bit ops, shifts) are rejected by the
/// verifier on float operands; `Add`..`Div` work on all numeric types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division truncates; division by zero traps).
    Div,
    /// Remainder (integer only).
    Rem,
    /// Bitwise and (integer only).
    And,
    /// Bitwise or (integer only).
    Or,
    /// Bitwise xor (integer only).
    Xor,
    /// Left shift (integer only).
    Shl,
    /// Arithmetic right shift (integer only).
    Shr,
    /// Logical right shift (integer only).
    UShr,
}

impl BinOp {
    /// Whether the operation is defined only on integers.
    pub fn int_only(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Comparison operations; the result is an `I32` that is 0 or 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not (integer only).
    Not,
}

/// Numeric conversions between register types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Conv {
    /// Sign-extend `I32` to `I64`.
    I32ToI64,
    /// Truncate `I64` to `I32`.
    I64ToI32,
    /// Convert `I32` to `F64`.
    I32ToF64,
    /// Convert `F64` to `I32` (saturating, like Java `d2i`).
    F64ToI32,
    /// Convert `I64` to `F64`.
    I64ToF64,
    /// Convert `F64` to `I64` (saturating).
    F64ToI64,
}

impl Conv {
    /// Source and destination register types of the conversion.
    pub fn signature(self) -> (crate::Ty, crate::Ty) {
        use crate::Ty::*;
        match self {
            Conv::I32ToI64 => (I32, I64),
            Conv::I64ToI32 => (I64, I32),
            Conv::I32ToF64 => (I32, F64),
            Conv::F64ToI32 => (F64, I32),
            Conv::I64ToF64 => (I64, F64),
            Conv::F64ToI64 => (F64, I64),
        }
    }
}

/// How a `Prefetch` pseudo-instruction maps to hardware (paper §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrefetchKind {
    /// The processor's prefetch instruction. Cheap, but on the Pentium 4 it
    /// is cancelled when the address misses the DTLB.
    Hardware,
    /// A load guarded by a software exception check. Costs a real access but
    /// fills a missing DTLB entry in advance ("TLB priming").
    GuardedLoad,
}

impl std::fmt::Display for PrefetchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchKind::Hardware => f.write_str("hw"),
            PrefetchKind::GuardedLoad => f.write_str("guarded"),
        }
    }
}

/// Address expression of a `Prefetch` or `SpecLoad` pseudo-instruction.
///
/// These mirror the address forms the paper's code generator emits: the
/// address a load would use, displaced by a constant (`d*c` for
/// inter-iteration prefetching, field offsets and intra-iteration strides
/// for the dereference-based forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrefetchAddr {
    /// `addr(obj) + delta` — a field (or header) of an object whose
    /// reference is in `base`, displaced by `delta` bytes.
    FieldOf {
        /// Register holding the object reference.
        base: Reg,
        /// Byte displacement relative to the object's address.
        delta: i64,
    },
    /// `addr(arr) + header + idx * scale + delta` — an array element
    /// address displaced by `delta` bytes.
    ArrayElem {
        /// Register holding the array reference.
        arr: Reg,
        /// Register holding the element index (`I32`).
        idx: Reg,
        /// Element size in bytes.
        scale: u8,
        /// Extra byte displacement (e.g. `d*c` for stride prefetching).
        delta: i64,
    },
}

impl PrefetchAddr {
    /// Registers read by the address expression.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        match *self {
            PrefetchAddr::FieldOf { base, .. } => out.push(base),
            PrefetchAddr::ArrayElem { arr, idx, .. } => {
                out.push(arr);
                out.push(idx);
            }
        }
    }

    /// Returns a copy with `extra` added to the displacement.
    pub fn with_extra_delta(self, extra: i64) -> Self {
        match self {
            PrefetchAddr::FieldOf { base, delta } => PrefetchAddr::FieldOf {
                base,
                delta: delta + extra,
            },
            PrefetchAddr::ArrayElem {
                arr,
                idx,
                scale,
                delta,
            } => PrefetchAddr::ArrayElem {
                arr,
                idx,
                scale,
                delta: delta + extra,
            },
        }
    }
}

/// A non-terminator IR instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Instr {
    /// Load a constant into `dst`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        value: Const,
    },
    /// Copy `src` into `dst`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op a b`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: BinOp,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = op src`.
    Un {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: UnOp,
        /// Operand.
        src: Reg,
    },
    /// `dst = (a op b) ? 1 : 0`.
    Cmp {
        /// Destination register (`I32`).
        dst: Reg,
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Numeric conversion.
    Convert {
        /// Destination register.
        dst: Reg,
        /// The conversion.
        conv: Conv,
        /// Source register.
        src: Reg,
    },
    /// `dst = obj.field` — a `getfield`. Traps on null.
    GetField {
        /// Destination register.
        dst: Reg,
        /// Object reference.
        obj: Reg,
        /// The field.
        field: FieldId,
    },
    /// `obj.field = src` — a `putfield`. Traps on null.
    PutField {
        /// Object reference.
        obj: Reg,
        /// The field.
        field: FieldId,
        /// Value to store.
        src: Reg,
    },
    /// `dst = statics[sid]` — a `getstatic`.
    GetStatic {
        /// Destination register.
        dst: Reg,
        /// The static slot.
        sid: StaticId,
    },
    /// `statics[sid] = src` — a `putstatic`.
    PutStatic {
        /// The static slot.
        sid: StaticId,
        /// Value to store.
        src: Reg,
    },
    /// `dst = arr[idx]` — an array load (`aaload`/`iaload`/…).
    /// Traps on null or out-of-bounds index.
    ALoad {
        /// Destination register.
        dst: Reg,
        /// Array reference.
        arr: Reg,
        /// Element index (`I32`).
        idx: Reg,
        /// Element type.
        elem: ElemTy,
    },
    /// `arr[idx] = src` — an array store.
    AStore {
        /// Array reference.
        arr: Reg,
        /// Element index (`I32`).
        idx: Reg,
        /// Value to store.
        src: Reg,
        /// Element type.
        elem: ElemTy,
    },
    /// `dst = arr.length` — an `arraylength` (also emitted implicitly for
    /// bounds checks by a real JIT; here workloads emit it explicitly).
    ArrayLen {
        /// Destination register (`I32`).
        dst: Reg,
        /// Array reference.
        arr: Reg,
    },
    /// Allocate a new object of `class`.
    New {
        /// Destination register (`Ref`).
        dst: Reg,
        /// The class to instantiate.
        class: crate::entities::ClassId,
    },
    /// Allocate a new array of `elem` with length `len`.
    NewArray {
        /// Destination register (`Ref`).
        dst: Reg,
        /// Element type.
        elem: ElemTy,
        /// Length register (`I32`).
        len: Reg,
    },
    /// Direct call.
    Call {
        /// Register receiving the return value, if the callee returns one.
        dst: Option<Reg>,
        /// The callee.
        callee: MethodId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// Software prefetch of a predicted address (inserted by the optimizer).
    ///
    /// Never traps: invalid addresses are silently ignored, matching the
    /// semantics of hardware prefetch / guarded loads.
    Prefetch {
        /// Address expression.
        addr: PrefetchAddr,
        /// Hardware mapping.
        kind: PrefetchKind,
    },
    /// Speculative load of a reference from a predicted address (inserted by
    /// the optimizer). Yields null instead of trapping when the address is
    /// invalid.
    SpecLoad {
        /// Destination register (`Ref`).
        dst: Reg,
        /// Address expression.
        addr: PrefetchAddr,
    },
}

impl Instr {
    /// The register defined by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instr::Const { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Convert { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::GetStatic { dst, .. }
            | Instr::ALoad { dst, .. }
            | Instr::ArrayLen { dst, .. }
            | Instr::New { dst, .. }
            | Instr::NewArray { dst, .. }
            | Instr::SpecLoad { dst, .. } => Some(dst),
            Instr::Call { dst, .. } => dst,
            Instr::PutField { .. }
            | Instr::PutStatic { .. }
            | Instr::AStore { .. }
            | Instr::Prefetch { .. } => None,
        }
    }

    /// Appends the registers read by this instruction to `out`.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        match self {
            Instr::Const { .. } | Instr::GetStatic { .. } | Instr::New { .. } => {}
            Instr::Move { src, .. } | Instr::Un { src, .. } | Instr::Convert { src, .. } => {
                out.push(*src)
            }
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Instr::GetField { obj, .. } => out.push(*obj),
            Instr::PutField { obj, src, .. } => {
                out.push(*obj);
                out.push(*src);
            }
            Instr::PutStatic { src, .. } => out.push(*src),
            Instr::ALoad { arr, idx, .. } => {
                out.push(*arr);
                out.push(*idx);
            }
            Instr::AStore { arr, idx, src, .. } => {
                out.push(*arr);
                out.push(*idx);
                out.push(*src);
            }
            Instr::ArrayLen { arr, .. } => out.push(*arr),
            Instr::NewArray { len, .. } => out.push(*len),
            Instr::Call { args, .. } => out.extend_from_slice(args),
            Instr::Prefetch { addr, .. } => addr.uses(out),
            Instr::SpecLoad { addr, .. } => addr.uses(out),
        }
    }

    /// Whether this is one of the load instructions that can be a node of a
    /// load dependence graph (paper §3.1): `getfield`, `getstatic`, array
    /// loads, and `arraylength`.
    pub fn is_ldg_load(&self) -> bool {
        matches!(
            self,
            Instr::GetField { .. }
                | Instr::GetStatic { .. }
                | Instr::ALoad { .. }
                | Instr::ArrayLen { .. }
        )
    }

    /// Whether this load can be a *non-leaf* LDG node, i.e. loads a
    /// reference another load can chase (paper §3.1: `getfield`,
    /// `getstatic` yielding references, and `aaload`).
    pub fn is_ldg_interior(
        &self,
        field_ty: impl Fn(FieldId) -> ElemTy,
        static_ty: impl Fn(StaticId) -> ElemTy,
    ) -> bool {
        match self {
            Instr::GetField { field, .. } => field_ty(*field) == ElemTy::Ref,
            Instr::GetStatic { sid, .. } => static_ty(*sid) == ElemTy::Ref,
            Instr::ALoad { elem, .. } => *elem == ElemTy::Ref,
            _ => false,
        }
    }
}

/// Block terminators.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on `cond != 0`.
    Branch {
        /// Condition register (`I32`).
        cond: Reg,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Return from the function.
    Return(Option<Reg>),
    /// Dynamically unreachable (used for dead continuation blocks created by
    /// structured `break`/`continue`). Executing it is a VM trap.
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> SuccIter {
        match self {
            Terminator::Jump(t) => SuccIter::One(*t, false),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => SuccIter::Two(*then_bb, *else_bb, 0),
            Terminator::Return(_) | Terminator::Unreachable => SuccIter::None,
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        match self {
            Terminator::Branch { cond, .. } => out.push(*cond),
            Terminator::Return(Some(r)) => out.push(*r),
            _ => {}
        }
    }
}

/// Iterator over a terminator's successors.
#[derive(Debug)]
pub enum SuccIter {
    /// No successors.
    None,
    /// One successor; the bool records whether it was yielded.
    One(BlockId, bool),
    /// Two successors; the u8 counts how many were yielded.
    Two(BlockId, BlockId, u8),
}

impl Iterator for SuccIter {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        match self {
            SuccIter::None => None,
            SuccIter::One(b, done) => {
                if *done {
                    None
                } else {
                    *done = true;
                    Some(*b)
                }
            }
            SuccIter::Two(a, b, n) => match *n {
                0 => {
                    *n = 1;
                    Some(*a)
                }
                1 => {
                    *n = 2;
                    Some(*b)
                }
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{BlockId, FieldId, Reg};

    #[test]
    fn dst_and_uses() {
        let i = Instr::Bin {
            dst: Reg::new(2),
            op: BinOp::Add,
            a: Reg::new(0),
            b: Reg::new(1),
        };
        assert_eq!(i.dst(), Some(Reg::new(2)));
        let mut u = Vec::new();
        i.uses(&mut u);
        assert_eq!(u, vec![Reg::new(0), Reg::new(1)]);
    }

    #[test]
    fn ldg_load_classification() {
        let gf = Instr::GetField {
            dst: Reg::new(0),
            obj: Reg::new(1),
            field: FieldId::new(0),
        };
        assert!(gf.is_ldg_load());
        let c = Instr::Const {
            dst: Reg::new(0),
            value: crate::Const::I32(0),
        };
        assert!(!c.is_ldg_load());
    }

    #[test]
    fn successors() {
        let t = Terminator::Branch {
            cond: Reg::new(0),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        let s: Vec<_> = t.successors().collect();
        assert_eq!(s, vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Terminator::Return(None).successors().count(), 0);
        assert_eq!(
            Terminator::Jump(BlockId::new(3))
                .successors()
                .collect::<Vec<_>>(),
            vec![BlockId::new(3)]
        );
    }

    #[test]
    fn prefetch_addr_delta() {
        let a = PrefetchAddr::FieldOf {
            base: Reg::new(1),
            delta: 16,
        };
        let b = a.with_extra_delta(64);
        assert_eq!(
            b,
            PrefetchAddr::FieldOf {
                base: Reg::new(1),
                delta: 80
            }
        );
    }

    #[test]
    fn int_only_ops() {
        assert!(BinOp::Rem.int_only());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Add.int_only());
    }
}
