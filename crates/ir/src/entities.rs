//! Newtype identifiers for IR entities.
//!
//! All identifiers are dense `u32` indices into the owning table
//! ([`crate::Program`] or [`crate::Function`]), wrapped in newtypes so they
//! cannot be confused with one another.

/// Declares a `u32`-backed entity id with `new`/`index` and `Display`.
macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity index overflow"))
            }

            /// Returns the dense index this id wraps.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

entity_id!(
    /// A virtual register local to a [`crate::Function`].
    Reg,
    "r"
);
entity_id!(
    /// A basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
entity_id!(
    /// A class in a [`crate::Program`].
    ClassId,
    "class"
);
entity_id!(
    /// An instance field; global across the program (fields know their owner).
    FieldId,
    "field"
);
entity_id!(
    /// A static (global) variable slot.
    StaticId,
    "static"
);
entity_id!(
    /// A method in a [`crate::Program`].
    MethodId,
    "method"
);

/// Identifies one instruction *site* inside a function: a block plus the
/// instruction's position within that block.
///
/// Instruction sites are the nodes of the paper's load dependence graph and
/// the keys under which object inspection records address traces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstrRef {
    /// The block containing the instruction.
    pub block: BlockId,
    /// Index of the instruction within [`crate::Block::instrs`].
    pub index: u32,
}

impl InstrRef {
    /// Creates an instruction reference.
    pub fn new(block: BlockId, index: usize) -> Self {
        Self {
            block,
            index: u32::try_from(index).expect("instruction index overflow"),
        }
    }
}

impl std::fmt::Display for InstrRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_round_trip() {
        let r = Reg::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "r7");
        let b = BlockId::new(0);
        assert_eq!(b.to_string(), "bb0");
        assert_ne!(Reg::new(1), Reg::new(2));
    }

    #[test]
    fn instr_ref_display_and_order() {
        let a = InstrRef::new(BlockId::new(1), 3);
        let b = InstrRef::new(BlockId::new(1), 4);
        assert!(a < b);
        assert_eq!(a.to_string(), "bb1:3");
    }
}
