//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::entities::BlockId;
use crate::func::Function;

/// Immediate-dominator tree over the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b] = immediate dominator`; entry's idom is itself; `None` for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators for `func` given its `cfg`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let n = func.block_count();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = func.entry();
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up by RPO index until the fingers meet.
            while a != b {
                while cfg.rpo_index(a).unwrap() > cfg.rpo_index(b).unwrap() {
                    a = idom[a.index()].unwrap();
                }
                while cfg.rpo_index(b).unwrap() > cfg.rpo_index(a).unwrap() {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable chain");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Ty;
    use crate::CmpOp;

    #[test]
    fn loop_dominators() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("l", &[Ty::I32], Some(Ty::I32));
        let n = b.param(0);
        b.for_i32(0, 1, CmpOp::Lt, |_| n, |_b, _i| {});
        let zero = b.const_i32(0);
        b.ret(Some(zero));
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);

        let entry = f.entry();
        assert_eq!(dom.idom(entry), None);
        // Every reachable block is dominated by the entry.
        for bb in f.block_ids().filter(|&bb| cfg.is_reachable(bb)) {
            assert!(dom.dominates(entry, bb), "{bb} not dominated by entry");
        }
        // The loop header (two predecessors: entry path and latch)
        // dominates the latch.
        let header = f
            .block_ids()
            .find(|&bb| cfg.is_reachable(bb) && cfg.preds(bb).len() == 2)
            .expect("loop header");
        let latch = cfg.preds(header)[1];
        assert!(dom.dominates(header, latch) || dom.dominates(header, cfg.preds(header)[0]));
    }

    #[test]
    fn diamond_idom_is_branch_block() {
        let mut pb = ProgramBuilder::new();
        let mut b = pb.function("d", &[Ty::I32], None);
        let x = b.param(0);
        let zero = b.const_i32(0);
        let c = b.gt(x, zero);
        b.if_else(c, |_| {}, |_| {});
        let m = b.finish();
        let p = pb.finish();
        let f = p.method(m).func();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let join = f
            .block_ids()
            .find(|&bb| cfg.is_reachable(bb) && cfg.preds(bb).len() == 2)
            .expect("join");
        assert_eq!(dom.idom(join), Some(f.entry()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::loops::LoopForest;
    use crate::{CmpOp, Ty};
    use spf_testkit::Rng;

    /// A random structured statement tree, realized through the builder.
    #[derive(Clone, Debug)]
    enum S {
        Work,
        If(Vec<S>),
        IfElse(Vec<S>, Vec<S>),
        While(Vec<S>),
        For(Vec<S>),
        Break,
        Continue,
        Return,
    }

    /// Draws a statement tree of depth at most `fuel` (mirrors the old
    /// proptest `prop_recursive(3, ..)` shape: leaves weighted toward
    /// plain work, compounds only while fuel remains).
    fn arb_stmt(rng: &mut Rng, fuel: u32) -> S {
        let leaf = |rng: &mut Rng| match rng.index(7) {
            0..=3 => S::Work,
            4 => S::Break,
            5 => S::Continue,
            _ => S::Return,
        };
        if fuel == 0 || rng.chance(1, 3) {
            return leaf(rng);
        }
        let body = |rng: &mut Rng| {
            let n = rng.index(3);
            (0..n).map(|_| arb_stmt(rng, fuel - 1)).collect::<Vec<_>>()
        };
        match rng.index(4) {
            0 => S::If(body(rng)),
            1 => {
                let t = body(rng);
                let e = body(rng);
                S::IfElse(t, e)
            }
            2 => S::While(body(rng)),
            _ => S::For(body(rng)),
        }
    }

    fn emit(b: &mut crate::FunctionBuilder<'_>, s: &S, depth: usize) {
        match s {
            S::Work => {
                let x = b.const_i32(1);
                let _ = b.add(x, x);
            }
            S::If(t) => {
                let c = b.const_i32(1);
                let cc = b.gt(c, c);
                b.if_(cc, |b| t.iter().for_each(|s| emit(b, s, depth)));
            }
            S::IfElse(t, e) => {
                let c = b.const_i32(0);
                let cc = b.gt(c, c);
                b.if_else(
                    cc,
                    |b| t.iter().for_each(|s| emit(b, s, depth)),
                    |b| e.iter().for_each(|s| emit(b, s, depth)),
                );
            }
            S::While(body) => {
                let lim = b.const_i32(3);
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| lim,
                    |b, _| {
                        body.iter().for_each(|s| emit(b, s, depth + 1));
                    },
                );
            }
            S::For(body) => {
                let lim = b.const_i32(2);
                b.for_i32(
                    0,
                    1,
                    CmpOp::Lt,
                    |_| lim,
                    |b, _| {
                        body.iter().for_each(|s| emit(b, s, depth + 1));
                    },
                );
            }
            S::Break => {
                if depth > 0 {
                    b.break_(0);
                }
            }
            S::Continue => {
                if depth > 0 {
                    b.continue_(0);
                }
            }
            S::Return => b.ret(None),
        }
    }

    /// For random structured CFGs: the entry dominates every reachable
    /// block, immediate dominators are themselves dominated by every
    /// dominator, and loop headers dominate all blocks of their loop.
    #[test]
    fn dominator_and_loop_invariants() {
        spf_testkit::cases(96, "dominator/loop invariants", |rng| {
            let stmts = {
                let n = rng.index(5);
                (0..n).map(|_| arb_stmt(rng, 3)).collect::<Vec<_>>()
            };
            let mut pb = ProgramBuilder::new();
            let mut b = pb.function("f", &[Ty::I32], None);
            for s in &stmts {
                emit(&mut b, s, 0);
            }
            let m = b.finish();
            let p = pb.finish();
            let f = p.method(m).func();
            assert!(crate::verify::verify(&p, f).is_ok());
            let cfg = Cfg::compute(f);
            let dom = DomTree::compute(f, &cfg);
            for bb in f.block_ids() {
                if !cfg.is_reachable(bb) {
                    continue;
                }
                assert!(dom.dominates(f.entry(), bb));
                if let Some(idom) = dom.idom(bb) {
                    assert!(dom.dominates(idom, bb));
                    assert!(cfg.is_reachable(idom));
                }
                // Every CFG predecessor of a reachable non-entry block is
                // dominated by that block's idom... not in general (join
                // points) — instead check: bb does not dominate its idom.
                if let Some(idom) = dom.idom(bb) {
                    if idom != bb {
                        assert!(!dom.dominates(bb, idom) || bb == f.entry());
                    }
                }
            }
            let forest = LoopForest::compute(f, &cfg, &dom);
            for lid in forest.postorder() {
                let info = forest.info(lid);
                assert!(info.contains(info.header));
                for blk in info.blocks.iter() {
                    let blk = crate::BlockId::new(blk);
                    assert!(
                        dom.dominates(info.header, blk),
                        "header must dominate loop body"
                    );
                }
                if let Some(parent) = info.parent {
                    let pinfo = forest.info(parent);
                    for blk in info.blocks.iter() {
                        assert!(pinfo.blocks.contains(blk), "nesting is containment");
                    }
                }
            }
        });
    }
}
